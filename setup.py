"""Legacy-toolchain shim: all metadata lives in pyproject.toml.

Kept so `pip install -e . --no-use-pep517` (and other setup.py-era flows)
work on environments whose setuptools predates PEP 660 editable wheels or
that lack the `wheel` package; modern pip uses pyproject.toml directly.
"""

from setuptools import setup

setup()
