"""Reproduce the paper's analytic results: Theorem 1/2 constants and tables.

Run with::

    python examples/paper_constants.py

Prints the constants of Theorems 1 and 2 (re-derived from the constraint
systems), the Appendix B verification, the warm-up algorithm constants, and
the omega ablation showing where the improvement disappears (omega >= 2.5).
"""

from __future__ import annotations

from repro.analysis import (
    experiment_e1_theorem_constants,
    experiment_e2_warmup_constants,
    experiment_e3_constraint_verification,
    experiment_e8_omega_ablation,
    text_table,
)
from repro.theory import predicted_speedup


def main() -> None:
    print("== E1: Theorem 1/2 constants (eps, delta, update-time exponent) ==")
    print(text_table(experiment_e1_theorem_constants(), float_digits=7))
    print()

    print("== E2: warm-up algorithm constants (Section 3.4) ==")
    print(text_table(experiment_e2_warmup_constants(), float_digits=8))
    print()

    print("== E3: Appendix B constraint verification at the published values ==")
    print(text_table(experiment_e3_constraint_verification(), float_digits=6))
    print()

    ablation = experiment_e8_omega_ablation(step=0.1)
    print("== E8: update-time exponent as a function of omega ==")
    print(text_table(ablation.rows, float_digits=6))
    print()
    print("== Headline comparison ==")
    print(text_table(ablation.headline, float_digits=6))
    print()

    for m in (10 ** 6, 10 ** 9):
        print(
            f"predicted speedup over the m^(2/3) baseline at m = {m:.0e}: "
            f"{predicted_speedup(m):.3f}x"
        )


if __name__ == "__main__":
    main()
