"""Incremental view maintenance of a cyclic join count (the paper's Figure 1).

Run with::

    python examples/database_join_view.py

The scenario: four binary relations ``Orders(customer, item)``,
``Parts(item, supplier)``, ``Offers(supplier, region)``,
``Coverage(region, customer)`` form a cyclic join whose size must stay
available after every tuple insert or delete — exactly the IVM problem the
paper casts as layered 4-cycle counting.  The example first replays the
paper's Figure 1 relations, then maintains the count view under a skewed
random workload and verifies it against a from-scratch join.
"""

from __future__ import annotations

import time

from repro.db import CyclicJoinCountView, Relation, RelationSchema, count_two_hop_join
from repro.workloads import figure_one_workload, skewed_join_workload


def figure_one() -> None:
    print("== Figure 1: binary relations and their join ==")
    a = Relation(RelationSchema("A", "L1", "L2"), tuples=[(1, 1), (1, 2), (1, 3), (2, 2), (3, 2)])
    b = Relation(RelationSchema("B", "L2", "L3"), tuples=[(1, 1), (2, 1), (3, 1), (3, 3)])
    print(f"A has {len(a)} tuples, B has {len(b)} tuples")
    print(f"|A ⋈ B| = {count_two_hop_join(a, b)} (the six tuples listed in the paper's Figure 1)")
    view = CyclicJoinCountView()
    view.apply_all(figure_one_workload())
    print(f"cyclic join count with C and D still empty: {view.count}")
    print()


def business_schema_view() -> None:
    print("== A business-flavoured cyclic join, maintained incrementally ==")
    schemas = (
        RelationSchema("Orders", "customer", "item"),
        RelationSchema("Parts", "item", "supplier"),
        RelationSchema("Offers", "supplier", "region"),
        RelationSchema("Coverage", "region", "customer"),
    )
    view = CyclicJoinCountView(schemas=schemas)
    view.insert("Orders", "alice", "widget")
    view.insert("Parts", "widget", "acme")
    view.insert("Offers", "acme", "emea")
    print(f"after three tuples the join is still empty: count = {view.count}")
    view.insert("Coverage", "emea", "alice")
    print(f"closing the cycle: count = {view.count}")
    view.insert("Orders", "bob", "widget")
    view.insert("Coverage", "emea", "bob")
    print(f"two more tuples create another result: count = {view.count}")
    view.delete("Offers", "acme", "emea")
    print(f"deleting the shared supplier offer drops both: count = {view.count}")
    print()


def random_workload_view() -> None:
    print("== Maintaining the count under a skewed tuple-update workload ==")
    view = CyclicJoinCountView()
    workload = skewed_join_workload(domain_size=24, num_updates=2000, seed=3)
    started = time.perf_counter()
    for update in workload:
        view.apply(update)
    elapsed = time.perf_counter() - started
    print(f"processed {len(workload)} tuple updates in {elapsed:.3f}s "
          f"({elapsed / len(workload) * 1e6:.1f} us/update)")
    print(f"maintained join count: {view.count}")
    print(f"from-scratch recomputation: {view.recompute()}")
    print(f"consistent: {view.is_consistent()}")


def tuple_feed_through_engine() -> None:
    print()
    print("== The same tuple feed, through the FourCycleEngine facade ==")
    from repro import EngineConfig, FourCycleEngine, TupleFeedSource

    workload = skewed_join_workload(domain_size=24, num_updates=2000, seed=3)
    engine = FourCycleEngine(EngineConfig(counter="hhh22", batch_size=128))
    engine.run(TupleFeedSource(workload))
    print(
        f"general 4-cycle motifs over the layer-tagged encoding: {engine.count} "
        f"(cyclic-join results plus same-relation rectangles)"
    )
    print(f"engine consistent with a from-scratch recount: {engine.is_consistent()}")


if __name__ == "__main__":
    figure_one()
    business_schema_view()
    random_workload_view()
    tuple_feed_through_engine()
