"""Monitoring 4-cycle motifs in an evolving social/interaction network.

Run with::

    python examples/social_network_motifs.py

4-cycles ("rectangles") are a standard motif in social-network and
recommendation analysis: two users interacting with the same two items, or two
accounts sharing two common contacts, are a basic signal of similarity (and of
coordinated behaviour).  This example simulates an evolving skewed network
with a sliding activity window — old interactions expire — and keeps the exact
4-cycle count available after every event, comparing the paper's main
algorithm against the O(n) baseline along the way.  Counters are driven
through the :class:`repro.FourCycleEngine` facade; the engine's event hook
surfaces the phase rebuilds the paper's algorithm performs under the hood.
"""

from __future__ import annotations

import time

from repro import EngineConfig, FourCycleEngine, GeneratorSource
from repro.instrumentation import fit_power_law


def motif_timeline() -> None:
    print("== 4-cycle motif count over a sliding activity window ==")
    source = GeneratorSource(
        "sliding-window", num_vertices=60, num_insertions=600, window_size=150, seed=11
    )
    stream = source.to_stream()
    engine = FourCycleEngine(EngineConfig(counter="assadi-shah"))
    rebuilds = []
    engine.subscribe(rebuilds.append, kinds=["phase-rebuild"])
    checkpoints = max(1, len(stream) // 10)
    for index, update in enumerate(stream):
        engine.apply(update)
        if index % checkpoints == 0 or index == len(stream) - 1:
            kind = "insert" if update.is_insert else "expire"
            print(
                f"event {index:4d} ({kind:>6}): live interactions = {engine.num_edges:4d}, "
                f"4-cycle motifs = {engine.count}"
            )
    print(f"phase rebuilds observed through the event hook: {len(rebuilds)}")
    print()


def skewed_growth_comparison() -> None:
    print("== Skewed growth: main algorithm vs the O(n) wedge baseline ==")
    source = GeneratorSource(
        "power-law", num_vertices=120, num_updates=1500, exponent=2.0, seed=12
    )
    for name in ("assadi-shah", "wedge"):
        engine = FourCycleEngine(EngineConfig(counter=name))
        started = time.perf_counter()
        engine.run(source)
        elapsed = time.perf_counter() - started
        print(
            f"{engine.name:<12} final motifs = {engine.count:6d}   "
            f"total ops = {engine.cost.total():9d}   wall clock = {elapsed:.3f}s"
        )
    print()


def growth_exponent_estimate() -> None:
    print("== Empirical growth of per-update cost with network size ==")
    sizes = (40, 80, 160)
    edge_counts = []
    costs = []
    for size in sizes:
        source = GeneratorSource(
            "mixed-churn",
            num_vertices=size,
            num_updates=8 * size,
            target_live_edges=3 * size,
            seed=13,
        )
        engine = FourCycleEngine(EngineConfig(counter="assadi-shah"))
        engine.run(source)
        edge_counts.append(max(engine.num_edges, 1))
        costs.append(engine.cost.total() / max(len(source), 1))
        print(
            f"n = {size:4d}: m = {engine.num_edges:5d}, "
            f"mean ops/update = {costs[-1]:9.1f}"
        )
    exponent = fit_power_law(edge_counts, costs)
    print(
        "fitted cost exponent in m: "
        f"{exponent:.3f} (the paper's worst-case bound is m^{2 / 3 - 0.0098109:.5f}; "
        "operation counts of a Python implementation only indicate the shape)"
    )


if __name__ == "__main__":
    motif_timeline()
    skewed_growth_comparison()
    growth_exponent_estimate()
