"""Quickstart: maintain the number of 4-cycles of a fully dynamic graph.

Run with::

    python examples/quickstart.py

The example builds a small graph edge by edge with the paper's main algorithm
(:class:`repro.AssadiShahCounter`), deletes an edge again, and then replays a
random insert/delete stream through every registered counter to show that they
all maintain exactly the same count.
"""

from __future__ import annotations

from repro import AssadiShahCounter, available_counters, create_counter
from repro.instrumentation import compare_counters, format_table, summary_table
from repro.workloads import erdos_renyi_stream


def single_counter_walkthrough() -> None:
    print("== Maintaining 4-cycles with the main algorithm ==")
    counter = AssadiShahCounter()
    edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "c")]
    for u, v in edges:
        count = counter.insert_edge(u, v)
        print(f"insert ({u}, {v}) -> 4-cycles = {count}")
    count = counter.delete_edge("d", "a")
    print(f"delete (d, a)  -> 4-cycles = {count}")
    print(f"final graph: n = {counter.num_vertices}, m = {counter.num_edges}")
    print(f"consistency check against a from-scratch recount: {counter.is_consistent()}")
    print()


def all_counters_agree() -> None:
    print("== Every registered counter maintains the same count ==")
    stream = erdos_renyi_stream(num_vertices=30, num_updates=400, delete_fraction=0.3, seed=7)
    results = compare_counters(sorted(available_counters()), stream)
    print(format_table(summary_table(results)))
    print()
    final_counts = {result.final_count for result in results.values()}
    assert len(final_counts) == 1, "counters disagree!"
    print(f"all {len(results)} counters agree: {final_counts.pop()} 4-cycles after {len(stream)} updates")


def per_counter_costs() -> None:
    print()
    print("== Per-update operation counts (hub-heavy stream) ==")
    from repro.workloads import hub_adversarial_stream
    from repro.instrumentation import run_counter

    stream = hub_adversarial_stream(num_vertices=40, num_updates=300, num_hubs=3, seed=1)
    for name in sorted(available_counters()):
        counter = create_counter(name)
        summary = run_counter(counter, stream).summary()
        print(
            f"{name:<12} mean ops/update = {summary.mean_operations:8.1f}   "
            f"worst case = {summary.max_operations:6d}"
        )


if __name__ == "__main__":
    single_counter_walkthrough()
    all_counters_agree()
    per_counter_costs()
