"""Quickstart: maintain the number of 4-cycles of a fully dynamic graph.

Run with::

    python examples/quickstart.py

Everything goes through the :class:`repro.FourCycleEngine` facade: a typed
:class:`repro.EngineConfig` names the counter and the batch size, the engine
owns the counter and the update pipeline, and checkpoints make the state
portable.  The example builds a small graph edge by edge with the paper's main
algorithm, replays a random insert/delete stream through every registered
counter to show they maintain exactly the same count, and round-trips a
checkpoint.
"""

from __future__ import annotations

from repro import EngineConfig, FourCycleEngine, GeneratorSource, available_specs
from repro.instrumentation import compare_counters, format_table, run_config, summary_table


def single_engine_walkthrough() -> None:
    print("== Maintaining 4-cycles with the main algorithm ==")
    engine = FourCycleEngine(EngineConfig(counter="assadi-shah"))
    edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "c")]
    for u, v in edges:
        count = engine.insert(u, v)
        print(f"insert ({u}, {v}) -> 4-cycles = {count}")
    count = engine.delete("d", "a")
    print(f"delete (d, a)  -> 4-cycles = {count}")
    print(f"final graph: n = {engine.num_vertices}, m = {engine.num_edges}")
    print(f"consistency check against a from-scratch recount: {engine.is_consistent()}")
    print()


def all_counters_agree() -> None:
    print("== Every registered counter maintains the same count ==")
    source = GeneratorSource(
        "erdos-renyi", num_vertices=30, num_updates=400, delete_fraction=0.3, seed=7
    )
    names = [spec.name for spec in available_specs()]
    results = compare_counters(names, source.to_stream())
    print(format_table(summary_table(results)))
    print()
    final_counts = {result.final_count for result in results.values()}
    assert len(final_counts) == 1, "counters disagree!"
    print(
        f"all {len(results)} counters agree: {final_counts.pop()} 4-cycles "
        f"after {len(source)} updates"
    )


def checkpoint_round_trip() -> None:
    print()
    print("== Checkpoint / restore ==")
    engine = FourCycleEngine(EngineConfig(counter="hhh22", batch_size=64))
    source = GeneratorSource("power-law", num_vertices=40, num_updates=600, seed=2)
    engine.run(source)
    snapshot = engine.checkpoint()  # pass a path to persist it as JSON
    restored = FourCycleEngine.restore(snapshot)
    print(f"checkpointed at m = {engine.num_edges}, count = {engine.count}")
    print(f"restored engine:    m = {restored.num_edges}, count = {restored.count}")
    assert restored.count == engine.count
    restored.insert("new-a", "new-b")
    engine.insert("new-a", "new-b")
    assert restored.count == engine.count, "trajectories diverged after restore!"
    print("restored engine tracks the original under further updates")


def per_counter_costs() -> None:
    print()
    print("== Per-update operation counts (hub-heavy stream) ==")
    source = GeneratorSource("hubs", num_vertices=40, num_updates=300, num_hubs=3, seed=1)
    for spec in available_specs():
        summary = run_config(EngineConfig(counter=spec.name), source.to_stream()).summary()
        print(
            f"{spec.name:<12} mean ops/update = {summary.mean_operations:8.1f}   "
            f"worst case = {summary.max_operations:6d}"
        )


if __name__ == "__main__":
    single_engine_walkthrough()
    all_counters_agree()
    checkpoint_round_trip()
    per_counter_costs()
