"""Rendering experiment results as text and Markdown tables.

The benchmark modules print these tables so that running
``pytest benchmarks/ --benchmark-only`` regenerates, in one place, the same
rows reported in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import Iterable, List, Mapping, Sequence


def rows_to_dicts(rows: Iterable[object]) -> List[Mapping[str, object]]:
    """Convert dataclass instances (or mappings) into plain dictionaries."""
    converted: List[Mapping[str, object]] = []
    for row in rows:
        if is_dataclass(row) and not isinstance(row, type):
            converted.append(asdict(row))
        elif isinstance(row, Mapping):
            converted.append(dict(row))
        else:
            raise TypeError(f"cannot render row of type {type(row).__name__}")
    return converted


def _format_value(value: object, float_digits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def text_table(rows: Sequence[object], float_digits: int = 4, columns: Sequence[str] | None = None) -> str:
    """Render rows as a fixed-width plain-text table."""
    dict_rows = rows_to_dicts(rows)
    if not dict_rows:
        return "(no rows)"
    chosen = list(columns) if columns is not None else list(dict_rows[0].keys())
    formatted = [
        {column: _format_value(row.get(column, ""), float_digits) for column in chosen}
        for row in dict_rows
    ]
    widths = {
        column: max(len(column), max(len(row[column]) for row in formatted)) for column in chosen
    }
    header = "  ".join(column.ljust(widths[column]) for column in chosen)
    separator = "  ".join("-" * widths[column] for column in chosen)
    lines = [header, separator]
    for row in formatted:
        lines.append("  ".join(row[column].ljust(widths[column]) for column in chosen))
    return "\n".join(lines)


def markdown_table(rows: Sequence[object], float_digits: int = 4, columns: Sequence[str] | None = None) -> str:
    """Render rows as a GitHub-flavored Markdown table."""
    dict_rows = rows_to_dicts(rows)
    if not dict_rows:
        return "(no rows)"
    chosen = list(columns) if columns is not None else list(dict_rows[0].keys())
    lines = ["| " + " | ".join(chosen) + " |", "|" + "|".join("---" for _ in chosen) + "|"]
    for row in dict_rows:
        lines.append(
            "| " + " | ".join(_format_value(row.get(column, ""), float_digits) for column in chosen) + " |"
        )
    return "\n".join(lines)


def banner(title: str) -> str:
    """A section banner used by the benchmark output."""
    line = "=" * max(len(title), 8)
    return f"\n{line}\n{title}\n{line}"
