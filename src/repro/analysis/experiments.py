"""Experiment implementations (E1–E10 of DESIGN.md).

Each function runs one of the reproduction's experiments and returns a
structured result object.  The benchmark modules under ``benchmarks/`` are thin
wrappers that call these functions (so ``pytest-benchmark`` can time them),
and ``EXPERIMENTS.md`` is generated from the same results, which keeps the
three views — library, benchmarks, and documentation — consistent.

The experiments:

* **E1** — Theorem 1/2 constants (``eps``, ``delta``) for the current and best
  omega.
* **E2** — warm-up constants (``eps1``, ``eps2``) for both omega regimes.
* **E3** — Appendix B constraint verification at the published values.
* **E4** — correctness cross-validation of every counter against brute force.
* **E5** — update-cost scaling versus ``m`` (operation counts), with fitted
  exponents.
* **E6** — worst-case versus amortized per-update cost on an adversarial
  stream.
* **E7** — IVM cyclic-join view maintenance under tuple updates.
* **E8** — omega ablation: the update-time exponent as a function of omega.
* **E9** — phase-length ablation for the phase/FMM counter.
* **E10** — batched-pipeline throughput: updates/sec versus batch size for
  every registered counter, with batch/unbatch exactness checked at the end.
* **E11** — kernel throughput: the integer-interned vectorized fast paths
  (counter batch hooks, cached-CSR dense ``multiply_chain``, interned graph
  microkernels) against the label-keyed scalar paths, with bit-identical
  counts asserted across every variant.
* **E12** — sparse-versus-dense product backends: the CSR SpGEMM backend
  against the dict sparse backend and dense BLAS on sparse, uniform, and
  dense instances, plus the wedge counter's incremental batch hook against
  its full rebuild — bit-identical results enforced on every row.
* **E14** — shard-parallel scaling: the whole-product ``csr_spgemm`` and the
  hhh22 masked rebuild on the E12 community instance at ``workers`` in
  {1, 2, 4}, bit-identity against the serial path enforced on every row.
* **E15** — always-on service load: thousands of concurrent HTTP clients
  ingesting disjoint update streams into one durable served engine (readers
  polling concurrently), latency percentiles recorded, the final count pinned
  to a single-engine reference replay and a server-side consistency recount.
"""

from __future__ import annotations

import random

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api import EngineConfig, FourCycleEngine, available_counter_names
from repro.db.ivm import CyclicJoinCountView
from repro.exceptions import ConfigurationError, CounterStateError
from repro.graph.dynamic_graph import DynamicGraph
from repro.instrumentation.harness import run_config, run_engine, run_validated, time_replay
from repro.matmul.engine import CountMatrix, CsrBackend, DenseBackend, MatmulEngine, SparseBackend
from repro.instrumentation.metrics import fit_power_law
from repro.theory.exponents import comparison_table, omega_sweep, update_time_exponent
from repro.theory.parameters import (
    published_parameters,
    solve_main_parameters,
    solve_warmup_parameters,
    verify_published_parameters,
)
from repro.matmul.omega import best_omega_model, current_omega_model
from repro.workloads.generators import (
    erdos_renyi_stream,
    hub_adversarial_stream,
    power_law_stream,
    stream_catalogue,
)
from repro.workloads.join_workloads import random_join_workload


# ---------------------------------------------------------------------------
# E1 / E2 / E3 — analytic reproductions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ConstantsRow:
    """One row of the Theorem 1/2 constants table."""

    regime: str
    omega: float
    eps_published: float
    eps_solved: float
    delta_published: float
    delta_solved: float
    exponent_published: float
    exponent_solved: float

    @property
    def matches(self) -> bool:
        return abs(self.eps_published - self.eps_solved) < 1e-5


def experiment_e1_theorem_constants() -> List[ConstantsRow]:
    """E1: re-derive eps and delta for omega = 2.371339 and omega = 2."""
    rows: List[ConstantsRow] = []
    for regime in ("current", "best"):
        published = published_parameters(regime)
        solved = solve_main_parameters(published.omega)
        rows.append(
            ConstantsRow(
                regime=regime,
                omega=published.omega,
                eps_published=published.main.eps,
                eps_solved=solved.eps,
                delta_published=published.main.delta,
                delta_solved=solved.delta,
                exponent_published=published.main.update_time_exponent,
                exponent_solved=solved.update_time_exponent,
            )
        )
    return rows


@dataclass(frozen=True)
class WarmupConstantsRow:
    """One row of the warm-up (Section 3.4) constants table."""

    regime: str
    eps: float
    eps1_published: float
    eps1_solved: float
    eps2_published: float
    eps2_solved: float
    solver_model: str

    @property
    def matches(self) -> bool:
        return abs(self.eps1_published - self.eps1_solved) < 1e-5


def experiment_e2_warmup_constants() -> List[WarmupConstantsRow]:
    """E2: re-derive the warm-up constants.

    The ``omega = 2`` regime is re-derived exactly (the best-possible
    rectangular exponent is known in closed form).  The current-omega regime
    depends on the [ADW+25] rectangular tables which are not reproducible
    offline, so the solver is run with the block-partition bound and the
    published values are reported alongside (the verification that they satisfy
    every constraint is experiment E3).
    """
    rows: List[WarmupConstantsRow] = []
    for regime, model in (("current", current_omega_model()), ("best", best_omega_model())):
        published = published_parameters(regime)
        solved = solve_warmup_parameters(eps=published.main.eps, model=model)
        rows.append(
            WarmupConstantsRow(
                regime=regime,
                eps=published.main.eps,
                eps1_published=published.warmup.eps1,
                eps1_solved=solved.eps1,
                eps2_published=published.warmup.eps2,
                eps2_solved=solved.eps2,
                solver_model=model.name,
            )
        )
    return rows


@dataclass(frozen=True)
class ConstraintRow:
    """One evaluated constraint of the Appendix B verification."""

    regime: str
    system: str
    name: str
    lhs: float
    rhs: float
    satisfied: bool


def experiment_e3_constraint_verification() -> List[ConstraintRow]:
    """E3: evaluate every constraint at the published parameter values."""
    rows: List[ConstraintRow] = []
    for regime in ("current", "best"):
        report = verify_published_parameters(regime)
        for evaluation in report.main_evaluations:
            rows.append(
                ConstraintRow(
                    regime=regime,
                    system="main",
                    name=evaluation.name,
                    lhs=evaluation.lhs,
                    rhs=evaluation.rhs,
                    satisfied=evaluation.satisfied,
                )
            )
        for evaluation in report.warmup_evaluations:
            rows.append(
                ConstraintRow(
                    regime=regime,
                    system="warm-up",
                    name=evaluation.name,
                    lhs=evaluation.lhs,
                    rhs=evaluation.rhs,
                    satisfied=evaluation.satisfied,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# E4 — correctness cross-validation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CrossValidationRow:
    """Cross-validation outcome for one (counter, workload) pair."""

    counter: str
    workload: str
    updates: int
    final_count: int
    validated: bool
    mean_operations: float
    max_operations: int


def experiment_e4_cross_validation(
    scale: int = 1,
    updates_per_workload: int = 150,
    seed: int = 0,
    counters: Optional[Sequence[str]] = None,
) -> List[CrossValidationRow]:
    """E4: every counter agrees with brute force after every update, on every
    workload of the catalogue."""
    names = sorted(counters if counters is not None else available_counter_names())
    rows: List[CrossValidationRow] = []
    for workload_name, stream in stream_catalogue(scale=scale, seed=seed).items():
        stream = stream.prefix(updates_per_workload)
        for name in names:
            engine = FourCycleEngine(EngineConfig(counter=name))
            if name == "brute-force":
                result = run_engine(engine, stream)
                validated = True
            else:
                result = run_validated(engine, stream)
                validated = result.validated
            summary = result.summary()
            rows.append(
                CrossValidationRow(
                    counter=name,
                    workload=workload_name,
                    updates=len(stream),
                    final_count=result.final_count,
                    validated=validated,
                    mean_operations=summary.mean_operations if summary else 0.0,
                    max_operations=summary.max_operations if summary else 0,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# E5 — update-cost scaling versus m
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScalingPoint:
    counter: str
    num_vertices: int
    final_edges: int
    mean_operations: float
    p99_operations: float
    max_operations: int
    mean_seconds: float


@dataclass
class ScalingResult:
    """Scaling series per counter plus the fitted cost exponent."""

    points: List[ScalingPoint] = field(default_factory=list)
    fitted_exponents: Dict[str, Optional[float]] = field(default_factory=dict)
    theoretical_exponents: Dict[str, float] = field(default_factory=dict)


def experiment_e5_update_scaling(
    sizes: Sequence[int] = (16, 32, 64, 96),
    updates_per_vertex: int = 8,
    counters: Sequence[str] = ("brute-force", "wedge", "hhh22", "phase-fmm", "assadi-shah"),
    seed: int = 0,
) -> ScalingResult:
    """E5: per-update operation count as the graph grows.

    The stream is a skewed (power-law) workload whose length scales with the
    vertex count, so the live edge count ``m`` grows across the series and
    heavy vertices appear — the regime the degree-class machinery targets.
    The *shape* claim being checked: the stored-structure algorithms (HHH22,
    phase-FMM, main) pay less per update than the neighborhood-scanning
    baselines (brute force, and the O(n) wedge counter) as ``m`` grows.
    Absolute constants are meaningless in Python; the fitted exponents and the
    ordering are the result.
    """
    result = ScalingResult()
    per_counter_m: Dict[str, List[int]] = {name: [] for name in counters}
    per_counter_cost: Dict[str, List[float]] = {name: [] for name in counters}
    for size in sizes:
        stream = power_law_stream(
            size,
            updates_per_vertex * size,
            exponent=1.8,
            delete_fraction=0.15,
            seed=seed,
        )
        for name in counters:
            run = run_config(EngineConfig(counter=name), stream)
            summary = run.summary()
            assert summary is not None
            point = ScalingPoint(
                counter=name,
                num_vertices=size,
                final_edges=run.final_edge_count,
                mean_operations=summary.mean_operations,
                p99_operations=summary.p99_operations,
                max_operations=summary.max_operations,
                mean_seconds=summary.mean_seconds,
            )
            result.points.append(point)
            per_counter_m[name].append(max(run.final_edge_count, 1))
            per_counter_cost[name].append(max(summary.mean_operations, 1e-9))
    for name in counters:
        result.fitted_exponents[name] = fit_power_law(per_counter_m[name], per_counter_cost[name])
    result.theoretical_exponents = {
        "brute-force": 2.0,  # deg(u) * deg(v) against hub degrees ~ m
        "wedge": 1.0,  # O(n) worst case; on hub streams the scans track hub degrees
        "hhh22": 2.0 / 3.0,
        "phase-fmm": update_time_exponent(),
        "assadi-shah": update_time_exponent(),
    }
    return result


# ---------------------------------------------------------------------------
# E6 — worst-case versus amortized cost
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorstCaseRow:
    counter: str
    mean_operations: float
    p99_operations: float
    max_operations: int
    worst_to_mean_ratio: float


def experiment_e6_worst_case(
    num_vertices: int = 48,
    num_updates: int = 400,
    counters: Sequence[str] = ("wedge", "hhh22", "phase-fmm", "assadi-shah"),
    seed: int = 1,
) -> List[WorstCaseRow]:
    """E6: per-update cost distribution on a hub-adversarial stream.

    The paper's contribution is a *worst-case* bound; the interesting numbers
    are therefore the maximum and p99 per-update costs relative to the mean.
    """
    stream = hub_adversarial_stream(num_vertices, num_updates, num_hubs=3, seed=seed)
    rows: List[WorstCaseRow] = []
    for name in counters:
        summary = run_config(EngineConfig(counter=name), stream).summary()
        assert summary is not None
        mean = max(summary.mean_operations, 1e-9)
        rows.append(
            WorstCaseRow(
                counter=name,
                mean_operations=summary.mean_operations,
                p99_operations=summary.p99_operations,
                max_operations=summary.max_operations,
                worst_to_mean_ratio=summary.max_operations / mean,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# E7 — IVM join view
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class IvmRow:
    domain_size: int
    updates: int
    final_join_count: int
    consistent: bool
    mean_seconds_per_update: float


def experiment_e7_ivm_join(
    domain_sizes: Sequence[int] = (8, 16, 32),
    updates_per_domain: int = 400,
    seed: int = 2,
) -> List[IvmRow]:
    """E7: maintain the cyclic-join count under tuple updates and verify it
    against a from-scratch join at the end (and implicitly throughout via the
    counter's exactness)."""
    import time

    rows: List[IvmRow] = []
    for domain_size in domain_sizes:
        view = CyclicJoinCountView()
        workload = random_join_workload(domain_size, updates_per_domain, seed=seed)
        started = time.perf_counter()
        for update in workload:
            view.apply(update)
        elapsed = time.perf_counter() - started
        rows.append(
            IvmRow(
                domain_size=domain_size,
                updates=len(workload),
                final_join_count=view.count,
                consistent=view.is_consistent(),
                mean_seconds_per_update=elapsed / max(len(workload), 1),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# E8 — omega ablation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OmegaAblationResult:
    rows: list
    headline: list


def experiment_e8_omega_ablation(step: float = 0.05) -> OmegaAblationResult:
    """E8: the update-time exponent as a function of omega, plus the headline
    comparison table from the introduction."""
    omegas = []
    omega = 2.0
    while omega <= 3.0 + 1e-9:
        omegas.append(round(omega, 6))
        omega += step
    return OmegaAblationResult(rows=omega_sweep(omegas), headline=comparison_table())


# ---------------------------------------------------------------------------
# E9 — phase-length ablation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseAblationRow:
    phase_length: int
    mean_operations: float
    p99_operations: float
    max_operations: int
    phases_completed: int


def experiment_e9_phase_ablation(
    phase_lengths: Sequence[int] = (4, 16, 64, 256),
    num_vertices: int = 40,
    num_updates: int = 400,
    seed: int = 3,
) -> List[PhaseAblationRow]:
    """E9: how the phase length trades off query-time delta scanning against
    matrix-product amortization in the phase/FMM counter."""
    stream = power_law_stream(num_vertices, num_updates, seed=seed)
    rows: List[PhaseAblationRow] = []
    for phase_length in phase_lengths:
        engine = FourCycleEngine(
            EngineConfig(counter="phase-fmm", options={"phase_length": phase_length})
        )
        summary = run_engine(engine, stream).summary()
        assert summary is not None
        rows.append(
            PhaseAblationRow(
                phase_length=phase_length,
                mean_operations=summary.mean_operations,
                p99_operations=summary.p99_operations,
                max_operations=summary.max_operations,
                phases_completed=engine.counter.phases_completed,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# E10 — batched-pipeline throughput
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BatchThroughputRow:
    """Throughput of one (counter, batch size) combination."""

    counter: str
    batch_size: int
    updates: int
    seconds: float
    updates_per_second: float
    speedup_vs_unbatched: float
    final_count: int
    consistent: bool


def experiment_e10_batch_throughput(
    num_vertices: int = 24,
    num_updates: int = 1280,
    batch_sizes: Sequence[int] = (1, 8, 64, 256),
    counters: Optional[Sequence[str]] = None,
    seed: int = 0,
    backend: str = "auto",
) -> List[BatchThroughputRow]:
    """E10: end-to-end updates/sec of the batch pipeline versus batch size.

    Replays the standard workload — a dense Erdős–Rényi churn stream whose
    live edge count hovers near the complete graph, the regime where
    per-update work is degree-bound — through every counter once per batch
    size: size 1 uses the per-update ``apply`` path, larger sizes the
    ``apply_batch`` pipeline.  Wall-clock time covers the whole replay
    (normalization included), so the rows measure exactly what a caller of the
    batch API experiences.  Every run's final count is verified against a
    from-scratch recount, and all runs of a counter must agree — the
    batch/unbatch exactness contract, measured rather than assumed.
    """
    stream = erdos_renyi_stream(num_vertices, num_updates, seed=seed)
    names = sorted(counters if counters is not None else available_counter_names())
    rows: List[BatchThroughputRow] = []
    for name in names:
        unbatched_seconds: Optional[float] = None
        final_counts = set()
        for batch_size in batch_sizes:
            engine = FourCycleEngine(
                EngineConfig(counter=name, batch_size=batch_size, backend=backend)
            )
            elapsed = max(time_replay(engine, stream), 1e-9)
            if batch_size <= 1:
                unbatched_seconds = elapsed
            # NaN when the sweep has no batch-size-1 baseline to compare with.
            speedup = unbatched_seconds / elapsed if unbatched_seconds is not None else float("nan")
            final_counts.add(engine.count)
            rows.append(
                BatchThroughputRow(
                    counter=name,
                    batch_size=batch_size,
                    updates=len(stream),
                    seconds=elapsed,
                    updates_per_second=len(stream) / elapsed,
                    speedup_vs_unbatched=speedup,
                    final_count=engine.count,
                    consistent=engine.is_consistent(),
                )
            )
        if len(final_counts) > 1:
            raise AssertionError(
                f"counter {name!r} final counts diverged across batch sizes: {final_counts}"
            )
    return rows


# ---------------------------------------------------------------------------
# E11 — interned/vectorized kernel throughput
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class KernelThroughputRow:
    """Throughput of one kernel variant.

    ``variant`` is ``scalar`` (label-keyed code, interning disabled — the seed
    implementation), ``scalar-batch`` (the batch pipeline without interning)
    or ``vectorized`` (the interned numpy fast path).  ``per_second`` counts
    updates for the counter kernels and matrix products for the multiply
    kernel; ``speedup_vs_scalar`` is relative to the ``scalar`` variant of the
    same kernel.  ``exact`` records the count/result identity check — it must
    be true on every row, timing never excuses a wrong answer.
    """

    kernel: str
    variant: str
    parameters: str
    operations: int
    seconds: float
    per_second: float
    speedup_vs_scalar: float
    exact: bool


def _random_count_matrix(
    num_rows: int, num_columns: int, density: float, rng: random.Random
) -> CountMatrix:
    """A random integer matrix with string labels (realistic repr-sort cost)."""
    matrix = CountMatrix()
    for i in range(num_rows):
        row = f"r{i:04d}"
        for j in range(num_columns):
            if rng.random() < density:
                matrix.add(row, f"c{j:04d}", rng.randint(1, 5))
    return matrix


def experiment_e11_kernel_throughput(
    num_vertices: int = 32,
    num_updates: int = 2560,
    batch_size: int = 256,
    counters: Sequence[str] = ("wedge", "hhh22", "assadi-shah"),
    chain_dimension: int = 160,
    chain_length: int = 3,
    chain_density: float = 0.25,
    chain_repeats: int = 5,
    seed: int = 0,
    backend: str = "auto",
) -> List[KernelThroughputRow]:
    """E11: vectorized kernels versus the label-keyed scalar paths.

    Two families of kernels are measured:

    * **End-to-end counter batch paths** — the standard dense churn stream is
      replayed through each counter three ways: per-update with interning
      disabled (the seed scalar path), batched with interning disabled (the
      seed batch path, where one existed), and batched with the interned
      vectorized hooks.  All three must end with **bit-identical 4-cycle
      counts**, each verified against a from-scratch recount; a mismatch
      raises :class:`~repro.exceptions.CounterStateError` — the CI perf-smoke
      job gates on that, not on timing.
    * **Dense ``multiply_chain``** — a chain of random label-keyed matrices
      multiplied on the dense backend with and without the cached interned
      CSR export; the products must be identical matrices.

    Returns one row per (kernel, variant); speedups are computed against the
    scalar variant of the same kernel.
    """
    stream = erdos_renyi_stream(num_vertices, num_updates, seed=seed)
    rows: List[KernelThroughputRow] = []
    for name in counters:
        variants = (
            ("scalar", False, 1),
            ("scalar-batch", False, batch_size),
            ("vectorized", True, batch_size),
        )
        scalar_seconds: Optional[float] = None
        final_counts: Dict[str, int] = {}
        for variant, interned, size in variants:
            engine = FourCycleEngine(
                EngineConfig(counter=name, interned=interned, batch_size=size, backend=backend)
            )
            seconds = max(time_replay(engine, stream), 1e-9)
            if variant == "scalar":
                scalar_seconds = seconds
            if not engine.is_consistent():
                raise CounterStateError(
                    f"E11: counter {name!r} variant {variant!r} is inconsistent "
                    f"with a from-scratch recount (count={engine.count})"
                )
            final_counts[variant] = engine.count
            assert scalar_seconds is not None
            rows.append(
                KernelThroughputRow(
                    kernel=f"{name}-updates",
                    variant=variant,
                    parameters=f"n={num_vertices} updates={num_updates} batch={size}",
                    operations=len(stream),
                    seconds=seconds,
                    per_second=len(stream) / seconds,
                    speedup_vs_scalar=scalar_seconds / seconds,
                    exact=True,
                )
            )
        if len(set(final_counts.values())) > 1:
            raise CounterStateError(
                f"E11: counter {name!r} counts diverged across paths: {final_counts}"
            )
    rows.extend(
        _e11_multiply_chain_rows(
            chain_dimension, chain_length, chain_density, chain_repeats, seed
        )
    )
    rows.extend(_e11_graph_microkernel_rows(stream, seed))
    return rows


def _e11_multiply_chain_rows(
    dimension: int, length: int, density: float, repeats: int, seed: int
) -> List[KernelThroughputRow]:
    """Dense ``multiply_chain`` with and without the cached CSR export."""
    import time

    rng = random.Random(seed + 1)
    matrices = [
        _random_count_matrix(dimension, dimension, density, rng) for _ in range(length)
    ]
    parameters = f"chain={length}x{dimension} density={density}"
    results: Dict[str, CountMatrix] = {}
    timings: Dict[str, float] = {}
    for variant, use_cache in (("scalar", False), ("vectorized", True)):
        engine = MatmulEngine(_dense=DenseBackend(use_csr_cache=use_cache))
        started = time.perf_counter()
        for _ in range(repeats):
            # Fresh copies for the uncached variant would change the measured
            # work; both variants multiply the same persistent operands, which
            # is exactly the reuse pattern the CSR cache targets.
            results[variant] = engine.multiply_chain(matrices, backend="dense")
        timings[variant] = max(time.perf_counter() - started, 1e-9)
    if results["scalar"] != results["vectorized"]:
        raise CounterStateError("E11: dense multiply_chain results diverged across paths")
    products = (length - 1) * repeats
    return [
        KernelThroughputRow(
            kernel="multiply-chain-dense",
            variant=variant,
            parameters=parameters,
            operations=products,
            seconds=timings[variant],
            per_second=products / timings[variant],
            speedup_vs_scalar=timings["scalar"] / timings[variant],
            exact=True,
        )
        for variant in ("scalar", "vectorized")
    ]


def _e11_graph_microkernel_rows(stream, seed: int) -> List[KernelThroughputRow]:
    """Interned graph microkernels: common-neighbor scans and histograms.

    Measured on composite (tuple) vertex labels — the case the interner
    targets: tuples do not cache their hash, so every label-keyed set probe
    re-hashes, while the interned path intersects integer-id sets and only
    translates the (small) result.  The CSR view is warmed first, matching
    the batched pipelines these kernels run inside (their hooks have just
    exported it).
    """
    import time

    num_pairs = 2000
    histogram_repeats = 200
    edges = sorted(
        (("shard", u, u * u), ("shard", v, v * v)) for u, v in stream.final_edges()
    )
    rng = random.Random(seed + 2)
    graphs = {
        "scalar": DynamicGraph(edges=edges, interned=False),
        "vectorized": DynamicGraph(edges=edges, interned=True),
    }
    graphs["vectorized"].csr_view()
    vertices = sorted(graphs["vectorized"].vertices())
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(num_pairs)
    ]
    rows: List[KernelThroughputRow] = []
    checks: Dict[str, int] = {}
    timings: Dict[str, float] = {}
    for variant, graph in graphs.items():
        started = time.perf_counter()
        total = 0
        for u, v in pairs:
            total += len(graph.common_neighbors(u, v))
        for _ in range(histogram_repeats):
            histogram = graph.degree_histogram()
        timings[variant] = max(time.perf_counter() - started, 1e-9)
        checks[variant] = total + sum(d * c for d, c in histogram.items())
    if len(set(checks.values())) > 1:
        raise CounterStateError(f"E11: graph microkernels diverged: {checks}")
    operations = len(pairs) + histogram_repeats
    for variant in ("scalar", "vectorized"):
        rows.append(
            KernelThroughputRow(
                kernel="graph-microkernels",
                variant=variant,
                parameters=(
                    f"pairs={len(pairs)} histograms={histogram_repeats} labels=tuple"
                ),
                operations=operations,
                seconds=timings[variant],
                per_second=operations / timings[variant],
                speedup_vs_scalar=timings["scalar"] / timings[variant],
                exact=True,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# E12 — sparse-vs-dense SpGEMM backends and the incremental wedge hook
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SpgemmBackendRow:
    """Throughput of one backend (or batch-hook mode) on one instance.

    For the product family ``operations`` is the expansion work (the
    backend-independent multiplication count) and ``speedup_vs_baseline`` is
    relative to the dict :class:`~repro.matmul.engine.SparseBackend` on the
    same instance; for the wedge family ``operations`` counts stream updates
    and the baseline is the forced full rebuild.  ``consistent`` records the
    bit-identity check — it must be true on every row (the CI perf-smoke job
    gates on it); timing is reported, never gated.
    """

    kernel: str
    variant: str
    parameters: str
    operations: int
    seconds: float
    per_second: float
    speedup_vs_baseline: float
    consistent: bool


#: Backends the E12 product family can sweep.
E12_PRODUCT_BACKENDS = ("sparse", "csr", "dense")


def _community_count_matrix(num_communities: int, size: int) -> CountMatrix:
    """A clique-community adjacency: sparse overall, locally dense.

    The self-product of this matrix is the wedge rebuild shape: expansion
    work ``~ size`` times larger than the output (every pair inside a
    community collides once per common neighbor), which is where SpGEMM's
    per-operation advantage over dict probing shows fully.  Labels are
    composite tuples — the case the interned kernels target (tuples do not
    cache their hash, so every dict probe of the scalar backend re-hashes;
    see the E11 microkernel rationale).
    """
    matrix = CountMatrix()
    for community in range(num_communities):
        base = community * size
        for a in range(base, base + size):
            for b in range(base, base + size):
                if a != b:
                    matrix.add(("shard", a, a * a), ("shard", b, b * b), 1)
    return matrix


def _uniform_count_matrix(
    dimension: int, density: float, rng: random.Random, row_prefix: str, column_prefix: str
) -> CountMatrix:
    """A uniformly random integer matrix with string labels."""
    matrix = CountMatrix()
    for i in range(dimension):
        for j in range(dimension):
            if rng.random() < density:
                matrix.add(
                    f"{row_prefix}{i:05d}", f"{column_prefix}{j:05d}", rng.randint(1, 4)
                )
    return matrix


def _e12_product_instances(
    community_count: int, community_size: int, uniform_dimension: int, dense_dimension: int,
    seed: int,
):
    """The three product instances: sparse-structured, sparse-uniform, dense."""
    rng = random.Random(seed)
    communities = _community_count_matrix(community_count, community_size)
    dimension = community_count * community_size
    yield (
        f"communities(n={dimension},density={communities.nnz / dimension ** 2:.3%})",
        communities,
        communities,
    )
    uniform_left = _uniform_count_matrix(uniform_dimension, 0.01, rng, "r", "m")
    uniform_right = _uniform_count_matrix(uniform_dimension, 0.01, rng, "m", "c")
    yield (f"uniform(n={uniform_dimension},density=1%)", uniform_left, uniform_right)
    dense_left = _uniform_count_matrix(dense_dimension, 0.3, rng, "r", "m")
    dense_right = _uniform_count_matrix(dense_dimension, 0.3, rng, "m", "c")
    yield (f"dense(n={dense_dimension},density=30%)", dense_left, dense_right)


def experiment_e12_spgemm_backends(
    community_count: int = 128,
    community_size: int = 48,
    uniform_dimension: int = 512,
    dense_dimension: int = 192,
    wedge_vertices: int = 2048,
    wedge_base_edges: int = 12288,
    wedge_churn_updates: int = 2560,
    wedge_batch_size: int = 128,
    backends: Sequence[str] = E12_PRODUCT_BACKENDS,
    product_repeats: int = 1,
    seed: int = 0,
) -> List[SpgemmBackendRow]:
    """E12: CSR SpGEMM versus the dict and dense backends, plus the
    incremental wedge batch hook versus its full rebuild.

    Two families:

    * **Product backends** — each instance of
      :func:`_e12_product_instances` is multiplied on every selected backend;
      the products must be identical matrices and must report the identical
      multiplication count (the expansion work is backend-independent), or
      :class:`~repro.exceptions.CounterStateError` is raised.  The interned
      CSR snapshots are warmed before timing: they are shared mutation-keyed
      state (built at most once per matrix, amortized across any product
      chain) and the dict baseline never uses them.  ``product_repeats`` runs
      every backend that many times and reports the minimum (applied to all
      backends equally — min-of-N removes scheduler noise from the recorded
      artifact without favouring any kernel).
    * **Wedge batch hook** — a large random graph is built in bulk and then
      churned with small delete/insert windows
      (:func:`_e12_wedge_churn_stream`: a standing graph with
      ``wedge_base_edges`` edges, batches touching a small fraction of it —
      the regime the incremental ``ΔW`` merge targets), replayed with the
      hook forced to full rebuilds, forced incremental, and in automatic
      mode; every run's final count must match the full-rebuild trajectory
      and a from-scratch recount.

    ``consistent`` is true on every returned row by construction — a mismatch
    raises instead of being reported.
    """
    unknown = sorted(set(backends) - set(E12_PRODUCT_BACKENDS))
    if unknown:
        raise ConfigurationError(
            f"unknown E12 backend{'s' if len(unknown) > 1 else ''}: {', '.join(unknown)}; "
            f"expected a subset of {', '.join(E12_PRODUCT_BACKENDS)}"
        )
    import time

    rows: List[SpgemmBackendRow] = []
    factories = {
        "sparse": SparseBackend,
        "csr": CsrBackend,
        "dense": DenseBackend,
    }
    ordered = [name for name in E12_PRODUCT_BACKENDS if name in backends]
    if "sparse" not in ordered:
        ordered.insert(0, "sparse")  # the baseline always runs
    for instance, left, right in _e12_product_instances(
        community_count, community_size, uniform_dimension, dense_dimension, seed
    ):
        left.csr()
        right.csr()
        timings: Dict[str, float] = {}
        results: Dict[str, CountMatrix] = {}
        work: Dict[str, int] = {}
        for name in ordered:
            backend = factories[name]()
            best = None
            for _ in range(max(product_repeats, 1)):
                started = time.perf_counter()
                product, stats = backend.multiply(left, right)
                elapsed = max(time.perf_counter() - started, 1e-9)
                best = elapsed if best is None else min(best, elapsed)
            timings[name] = best
            results[name] = product
            # The dense backend reports dense flops; the combinatorial work
            # column uses the sparse expansion size shared by dict and CSR.
            work[name] = stats.multiplications
        for name in ordered:
            if results[name] != results["sparse"]:
                raise CounterStateError(
                    f"E12: backend {name!r} product diverged on {instance}"
                )
        if "csr" in work and work["csr"] != work["sparse"]:
            raise CounterStateError(
                f"E12: CSR expansion work {work['csr']} does not match the dict "
                f"backend's {work['sparse']} on {instance}"
            )
        operations = work["sparse"]
        for name in ordered:
            if name not in backends and name == "sparse":
                continue  # baseline ran for verification only
            rows.append(
                SpgemmBackendRow(
                    kernel=f"product:{instance}",
                    variant=name,
                    parameters=f"nnz={left.nnz}+{right.nnz} out={results[name].nnz}",
                    operations=operations,
                    seconds=timings[name],
                    per_second=operations / timings[name],
                    speedup_vs_baseline=timings["sparse"] / timings[name],
                    consistent=True,
                )
            )
    rows.extend(
        _e12_wedge_hook_rows(
            wedge_vertices, wedge_base_edges, wedge_churn_updates, wedge_batch_size, seed
        )
    )
    return rows


def _e12_wedge_churn_stream(
    num_vertices: int, base_edges: int, churn_updates: int, seed: int
):
    """A bulk-built random graph followed by small delete/insert churn.

    The build prefix inserts ``base_edges`` random edges; the churn suffix
    alternates deleting a random live edge and inserting a random absent one,
    keeping the standing graph size constant — so each churn batch touches a
    small fraction of the graph, which is the regime that separates the
    incremental wedge hook from a full rebuild.
    """
    from repro.graph.updates import EdgeUpdate, UpdateStream

    rng = random.Random(seed)
    live: Dict[tuple, int] = {}
    while len(live) < base_edges:
        u, v = rng.randrange(num_vertices), rng.randrange(num_vertices)
        if u != v:
            live.setdefault((min(u, v), max(u, v)), len(live))
    edge_list = list(live)
    updates = [EdgeUpdate.insert(u, v) for u, v in edge_list]
    live_set = set(edge_list)
    for step in range(churn_updates):
        if step % 2 == 0:
            index = rng.randrange(len(edge_list))
            edge = edge_list[index]
            last = edge_list[-1]
            edge_list[index] = last
            edge_list.pop()
            live_set.discard(edge)
            updates.append(EdgeUpdate.delete(*edge))
        else:
            while True:
                u, v = rng.randrange(num_vertices), rng.randrange(num_vertices)
                if u != v and (min(u, v), max(u, v)) not in live_set:
                    break
            edge = (min(u, v), max(u, v))
            edge_list.append(edge)
            live_set.add(edge)
            updates.append(EdgeUpdate.insert(*edge))
    return UpdateStream(updates)


def _e12_wedge_hook_rows(
    num_vertices: int, base_edges: int, churn_updates: int, batch_size: int, seed: int
) -> List[SpgemmBackendRow]:
    """Incremental versus full-rebuild wedge batch hook on a churn stream."""
    stream = _e12_wedge_churn_stream(num_vertices, base_edges, churn_updates, seed)
    modes = (("full-rebuild", False), ("incremental", True), ("auto", None))
    timings: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    rows: List[SpgemmBackendRow] = []
    for variant, incremental in modes:
        engine = FourCycleEngine(
            EngineConfig(
                counter="wedge",
                options={"incremental": incremental},
                batch_size=batch_size,
                track_costs=False,
            )
        )
        timings[variant] = max(time_replay(engine, stream), 1e-9)
        counts[variant] = engine.count
        if not engine.is_consistent():
            raise CounterStateError(
                f"E12: wedge hook mode {variant!r} is inconsistent with a "
                f"from-scratch recount (count={engine.count})"
            )
    if len(set(counts.values())) > 1:
        raise CounterStateError(
            f"E12: wedge hook counts diverged across modes: {counts}"
        )
    for variant, _ in modes:
        rows.append(
            SpgemmBackendRow(
                kernel="wedge-batch-hook",
                variant=variant,
                parameters=(
                    f"n={num_vertices} base_m={base_edges} "
                    f"churn={churn_updates} batch={batch_size}"
                ),
                operations=len(stream),
                seconds=timings[variant],
                per_second=len(stream) / timings[variant],
                speedup_vs_baseline=timings["full-rebuild"] / timings[variant],
                consistent=True,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# E14 — shard-parallel SpGEMM and rebuild scaling
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardScalingRow:
    """Throughput of one kernel at one worker count on the community instance.

    ``speedup_vs_serial`` is relative to the ``workers=1`` row of the same
    kernel (the plain serial path, no shard plan).  ``consistent`` records
    bit-identity against that serial reference — the full CSR arrays for the
    product family, the exact 4-cycle count (also checked against the closed
    form for disjoint cliques) for the rebuild family.  It must be true on
    every row; the CI perf-smoke job gates on it and never on timing.
    """

    kernel: str
    variant: str
    parameters: str
    operations: int
    seconds: float
    per_second: float
    speedup_vs_serial: float
    consistent: bool


#: Worker counts the E14 sweep covers by default.
E14_WORKER_SWEEP = (1, 2, 4)


def _community_csr_adjacency(num_communities: int, size: int) -> "CsrMatrix":
    """The E12 community instance as an interned 0/1 CSR adjacency.

    Same structure as :func:`_community_count_matrix` (disjoint ``size``-cliques,
    both orientations, no diagonal) with rows already in interned id order —
    the representation the counters' batch hooks hand to the SpGEMM kernel.
    """
    import numpy as np

    from repro.matmul.engine import CsrMatrix

    n = num_communities * size
    rows, cols = [], []
    for community in range(num_communities):
        base = community * size
        members = np.arange(base, base + size, dtype=np.int64)
        grid_rows = np.repeat(members, size)
        grid_cols = np.tile(members, size)
        keep = grid_rows != grid_cols
        rows.append(grid_rows[keep])
        cols.append(grid_cols[keep])
    all_rows = np.concatenate(rows)
    return CsrMatrix.from_coo(
        all_rows, np.concatenate(cols), np.ones(len(all_rows), dtype=np.int64), n, n
    )


def _community_clique_cycles(num_communities: int, size: int) -> int:
    """Closed-form 4-cycle count of disjoint ``size``-cliques: ``3 C(s, 4)``
    per clique (choose the 4 vertices; 3 distinct cyclic orderings)."""
    import math

    return num_communities * 3 * math.comb(size, 4)


def _e14_spgemm_rows(
    num_communities: int, size: int, workers: Sequence[int], repeats: int
) -> List[ShardScalingRow]:
    """Whole-product ``A @ A`` through the shard executor at each width."""
    import time

    import numpy as np

    from repro.matmul.engine import csr_spgemm
    from repro.matmul.sharding import ShardExecutor

    adjacency = _community_csr_adjacency(num_communities, size)
    reference, reference_work = csr_spgemm(adjacency, adjacency)
    instance = (
        f"communities(n={adjacency.num_rows},"
        f"density={adjacency.nnz / adjacency.num_rows ** 2:.3%})"
    )
    rows: List[ShardScalingRow] = []
    timings: Dict[int, float] = {}
    for count in workers:
        with ShardExecutor(workers=count) as executor:
            best = None
            for _ in range(max(repeats, 1)):
                started = time.perf_counter()
                product, work = executor.spgemm(adjacency, adjacency)
                elapsed = max(time.perf_counter() - started, 1e-9)
                best = elapsed if best is None else min(best, elapsed)
            if count == 1:
                # workers=1 short-circuits to the plain kernel: no shard
                # plan, no column compression — the honest serial baseline.
                shards, policy = 1, "serial"
            else:
                shards = executor.target_shards(reference_work, adjacency.num_rows)
                policy = executor.resolve_policy(reference_work, shards)
        consistent = (
            work == reference_work
            and np.array_equal(product.indptr, reference.indptr)
            and np.array_equal(product.cols, reference.cols)
            and np.array_equal(product.data, reference.data)
        )
        if not consistent:
            raise CounterStateError(
                f"E14: sharded product (workers={count}) diverged from the "
                f"serial kernel on {instance}"
            )
        timings[count] = best
        baseline = timings.get(1, best)
        rows.append(
            ShardScalingRow(
                kernel=f"spgemm:{instance}",
                variant=f"workers={count}",
                parameters=f"policy={policy} shards={shards} nnz={adjacency.nnz}",
                operations=reference_work,
                seconds=best,
                per_second=reference_work / best,
                speedup_vs_serial=baseline / best,
                consistent=True,
            )
        )
    return rows


def _e14_rebuild_rows(
    num_communities: int,
    size: int,
    workers: Sequence[int],
    churn_edges: int,
    repeats: int,
    seed: int,
) -> List[ShardScalingRow]:
    """The hhh22 masked CSR rebuild driven end-to-end through the engine.

    Each engine is built from an :class:`EngineConfig` carrying the
    ``workers`` option (exercising the spec/config forwarding path), loaded
    with the full community graph, then timed on churn batches: a seeded set
    of intra-community edges is deleted in one (untimed) batch and re-inserted
    in the next (timed) one.  Both batches clear the hook threshold, so every
    timed window is one full masked rebuild at standing graph size, and after
    each timed batch the graph is back to the complete community instance —
    where the count must equal the clique closed form.
    """
    import time

    from repro.graph.updates import EdgeUpdate

    rng = random.Random(seed)
    edges = []
    for community in range(num_communities):
        base = community * size
        edges.extend(
            (base + a, base + b) for a in range(size) for b in range(a + 1, size)
        )
    churn = rng.sample(edges, min(churn_edges, len(edges)))
    expected = _community_clique_cycles(num_communities, size)
    instance = f"communities(n={num_communities * size},m={len(edges)})"
    rows: List[ShardScalingRow] = []
    timings: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for count in workers:
        engine = FourCycleEngine(
            EngineConfig(
                counter="hhh22",
                backend="csr",
                workers=count,
                batch_size=len(edges),
                track_costs=False,
            )
        )
        engine.apply_batch([EdgeUpdate.insert(u, v) for u, v in edges])
        best = None
        for _ in range(max(repeats, 1)):
            engine.apply_batch([EdgeUpdate.delete(u, v) for u, v in churn])
            started = time.perf_counter()
            engine.apply_batch([EdgeUpdate.insert(u, v) for u, v in churn])
            elapsed = max(time.perf_counter() - started, 1e-9)
            best = elapsed if best is None else min(best, elapsed)
        counts[count] = engine.count
        timings[count] = best
        engine.counter.shard_executor.close()
        if engine.count != expected:
            raise CounterStateError(
                f"E14: hhh22 rebuild count {engine.count} (workers={count}) does "
                f"not match the clique closed form {expected} on {instance}"
            )
    if len(set(counts.values())) > 1:
        raise CounterStateError(f"E14: hhh22 counts diverged across workers: {counts}")
    operations = len(churn)
    for count in workers:
        rows.append(
            ShardScalingRow(
                kernel="hhh22-masked-rebuild",
                variant=f"workers={count}",
                parameters=f"{instance} churn={len(churn)} count={counts[count]}",
                operations=operations,
                seconds=timings[count],
                per_second=operations / timings[count],
                speedup_vs_serial=timings[workers[0]] / timings[count],
                consistent=True,
            )
        )
    return rows


def experiment_e14_shard_scaling(
    community_count: int = 128,
    community_size: int = 48,
    workers: Sequence[int] = E14_WORKER_SWEEP,
    churn_edges: int = 64,
    repeats: int = 3,
    seed: int = 0,
) -> List[ShardScalingRow]:
    """E14: shard-parallel SpGEMM and rebuild scaling on the community instance.

    Two kernel families, each swept over ``workers``:

    * **whole-product SpGEMM** — ``A @ A`` of the E12 community adjacency
      through :class:`~repro.matmul.sharding.ShardExecutor`; the ``workers=1``
      row is the plain serial kernel and every wider row must reproduce its
      CSR arrays bit for bit (a mismatch raises, it is never reported);
    * **hhh22 masked rebuild** — the full high/low-masked structure rebuild
      at standing graph size, driven through
      :class:`~repro.api.engine.FourCycleEngine` with the ``workers`` config
      option, counts pinned to the disjoint-clique closed form.

    Timing is min-of-``repeats`` applied to every width equally.  The
    ``workers=1`` baseline is honest serial execution — no shard plan, no
    column compression — so ``speedup_vs_serial`` measures everything the
    sharded path adds: per-shard column compression (smaller dense-scratch
    merges) plus whatever true parallelism the host's cores give the pool.
    """
    if not workers or list(workers)[0] != 1:
        raise ConfigurationError(
            f"E14 workers sweep must start at the serial baseline 1, got {workers!r}"
        )
    rows = _e14_spgemm_rows(community_count, community_size, workers, repeats)
    rows.extend(
        _e14_rebuild_rows(
            community_count, community_size, workers, churn_edges, repeats, seed
        )
    )
    return rows


# ---------------------------------------------------------------------------
# E15 — always-on service load
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceLoadRow:
    """One traffic class of the service load run.

    ``p50_ms``/``p95_ms``/``p99_ms`` are per-request latency percentiles over
    every request of the class (connection-per-request, so a request's latency
    includes its TCP connect).  ``consistent`` records the end-of-run gates:
    zero failed requests, the served count bit-identical to a single-engine
    reference replay of the same updates, and a server-side from-scratch
    recount agreeing — a violation raises, it is never reported as a row.
    Timing percentiles are informational; CI gates on exactness only.
    """

    scenario: str
    clients: int
    requests: int
    operations: int
    seconds: float
    per_second: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    errors: int
    consistent: bool


def _latency_percentile(sorted_ms: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted latency sample."""
    if not sorted_ms:
        return 0.0
    import math

    rank = min(len(sorted_ms) - 1, max(0, math.ceil(fraction * len(sorted_ms)) - 1))
    return sorted_ms[rank]


def _e15_client_edges(client: int, block: int, updates: int) -> List:
    """The deterministic insert stream owned by one load client.

    Client ``i`` owns the vertex block ``[i * block, (i + 1) * block)`` and
    inserts the first ``updates`` pairs of its block's complete-graph
    enumeration.  Blocks are disjoint, so every interleaving of the per-client
    streams is a valid global stream and the final graph — hence the final
    4-cycle count — is independent of arrival order.  That is what makes the
    load run *exactness-checkable*: concurrency can reorder requests freely
    without changing the answer the gates pin.
    """
    from repro.graph.updates import EdgeUpdate

    base = client * block
    edges = []
    for a in range(block):
        for b in range(a + 1, block):
            edges.append(EdgeUpdate.insert(base + a, base + b))
            if len(edges) == updates:
                return edges
    raise ConfigurationError(
        f"E15: a block of {block} vertices holds {len(edges)} edges, fewer "
        f"than the {updates} updates each client must send; raise block"
    )


async def _e15_drive(
    clients: int,
    batches_per_client: int,
    batch_size: int,
    block: int,
    readers: int,
    reader_polls: int,
    counter: str,
    wal_path: str,
) -> Dict[str, object]:
    """Serve, flood, verify: the async body of E15 (one event loop, one core).

    The service and every client coroutine share the loop, so "concurrent
    clients" means concurrently open sockets with in-flight requests — the
    scheduling regime an always-on single-host deployment actually runs in.
    """
    import time

    from repro.io.serialization import edge_update_to_dict
    from repro.service.app import ReproService
    from repro.service.http import http_json_request

    service = ReproService(host="127.0.0.1", port=0)
    host, port = await service.start()
    tenant = "e15-load"
    ingest_ms: List[float] = []
    read_ms: List[float] = []
    errors: List[str] = []
    try:
        status, body = await http_json_request(
            host, port, "POST", "/engines",
            {
                "name": tenant,
                "config": {
                    "counter": counter,
                    "track_costs": False,
                    "wal_path": wal_path,
                },
            },
        )
        if status != 201:
            raise CounterStateError(f"E15: tenant creation failed: {status} {body}")

        async def ingest_client(index: int) -> None:
            edges = _e15_client_edges(index, block, batches_per_client * batch_size)
            payloads = [
                [edge_update_to_dict(update) for update in edges[i : i + batch_size]]
                for i in range(0, len(edges), batch_size)
            ]
            for window in payloads:
                started = time.perf_counter()
                status, body = await http_json_request(
                    host, port, "POST", f"/engines/{tenant}/updates",
                    {"updates": window},
                )
                ingest_ms.append((time.perf_counter() - started) * 1e3)
                if status != 200:
                    errors.append(f"ingest[{index}]: {status} {body}")

        async def reader_client(index: int) -> None:
            for _ in range(reader_polls):
                started = time.perf_counter()
                status, body = await http_json_request(
                    host, port, "GET", f"/engines/{tenant}/counts"
                )
                read_ms.append((time.perf_counter() - started) * 1e3)
                if status != 200:
                    errors.append(f"read[{index}]: {status} {body}")

        started = time.perf_counter()
        await _e15_gather_all(
            [ingest_client(index) for index in range(clients)]
            + [reader_client(index) for index in range(readers)]
        )
        elapsed = max(time.perf_counter() - started, 1e-9)

        status, counts = await http_json_request(
            host, port, "GET", f"/engines/{tenant}/counts"
        )
        if status != 200:
            raise CounterStateError(f"E15: final counts read failed: {status} {counts}")
        status, verdict = await http_json_request(
            host, port, "GET", f"/engines/{tenant}/consistency"
        )
        if status != 200:
            raise CounterStateError(f"E15: consistency check failed: {status} {verdict}")
    finally:
        await service.stop()
    return {
        "elapsed": elapsed,
        "ingest_ms": sorted(ingest_ms),
        "read_ms": sorted(read_ms),
        "errors": errors,
        "counts": counts,
        "consistent": bool(verdict.get("consistent")),
    }


async def _e15_gather_all(coroutines: List) -> None:
    """``gather`` that surfaces the first failure after letting all finish."""
    import asyncio

    results = await asyncio.gather(*coroutines, return_exceptions=True)
    for result in results:
        if isinstance(result, BaseException):
            raise result


def experiment_e15_service_load(
    clients: int = 1200,
    batches_per_client: int = 2,
    batch_size: int = 8,
    block: int = 8,
    readers: int = 64,
    reader_polls: int = 4,
    counter: str = "wedge",
    wal_dir: Optional[str] = None,
) -> List[ServiceLoadRow]:
    """E15: concurrent HTTP load against one durable served engine.

    ``clients`` ingestion clients each send ``batches_per_client`` windows of
    ``batch_size`` inserts over their own disjoint vertex block (connection
    per request), while ``readers`` polling clients read the published counts
    view concurrently.  The engine is durable (WAL-attached) throughout, so
    every accepted window was logged and fsynced before its response.

    End-of-run gates (all raise, none are reported as data):

    * every request succeeded;
    * the served final count is bit-identical to the reference: a fresh
      engine replaying one client's block, times the number of clients
      (blocks are disjoint and identical, and 4-cycles never cross blocks);
    * ``updates_processed`` equals the number of updates sent, and the WAL
      cursor (``last_durable_seq``) covers every logged record;
    * a server-side from-scratch recount agrees (``consistent: true``).
    """
    import asyncio
    import tempfile

    if clients < 1:
        raise ConfigurationError(f"E15 needs at least one client, got {clients}")
    updates_per_client = batches_per_client * batch_size
    total_updates = clients * updates_per_client

    with tempfile.TemporaryDirectory(prefix="repro-e15-") as scratch:
        wal_path = f"{wal_dir or scratch}/e15-load.wal"
        outcome = asyncio.run(
            _e15_drive(
                clients,
                batches_per_client,
                batch_size,
                block,
                readers,
                reader_polls,
                counter,
                wal_path,
            )
        )

    if outcome["errors"]:
        sample = "; ".join(outcome["errors"][:3])
        raise CounterStateError(
            f"E15: {len(outcome['errors'])} of the load requests failed "
            f"(first: {sample})"
        )
    counts = outcome["counts"]
    # Every client inserts the same pattern into its own disjoint block, and
    # 4-cycles never cross blocks, so the global reference count is one
    # block's replayed count times the number of clients (the per-block
    # analogue of E14's clique closed form).
    reference = FourCycleEngine(
        EngineConfig(counter=counter, batch_size=updates_per_client, track_costs=False)
    )
    reference.apply_batch(_e15_client_edges(0, block, updates_per_client))
    expected = clients * reference.count
    if counts["count"] != expected:
        raise CounterStateError(
            f"E15: served count {counts['count']} does not match the reference "
            f"replay ({clients} blocks x {reference.count} = {expected})"
        )
    if counts["updates_processed"] != total_updates:
        raise CounterStateError(
            f"E15: served engine processed {counts['updates_processed']} updates, "
            f"expected {total_updates}"
        )
    if counts["last_durable_seq"] < 0:
        raise CounterStateError(
            "E15: the served engine was not durable (no WAL cursor); the load "
            "run must exercise the logged ingestion path"
        )
    if not outcome["consistent"]:
        raise CounterStateError(
            "E15: server-side from-scratch recount disagreed with the "
            "maintained count"
        )

    elapsed = outcome["elapsed"]
    rows = [
        ServiceLoadRow(
            scenario="ingest",
            clients=clients,
            requests=len(outcome["ingest_ms"]),
            operations=total_updates,
            seconds=elapsed,
            per_second=total_updates / elapsed,
            p50_ms=_latency_percentile(outcome["ingest_ms"], 0.50),
            p95_ms=_latency_percentile(outcome["ingest_ms"], 0.95),
            p99_ms=_latency_percentile(outcome["ingest_ms"], 0.99),
            errors=0,
            consistent=True,
        )
    ]
    if readers > 0:
        rows.append(
            ServiceLoadRow(
                scenario="read-while-ingest",
                clients=readers,
                requests=len(outcome["read_ms"]),
                operations=len(outcome["read_ms"]),
                seconds=elapsed,
                per_second=len(outcome["read_ms"]) / elapsed,
                p50_ms=_latency_percentile(outcome["read_ms"], 0.50),
                p95_ms=_latency_percentile(outcome["read_ms"], 0.95),
                p99_ms=_latency_percentile(outcome["read_ms"], 0.99),
                errors=0,
                consistent=True,
            )
        )
    return rows
