"""Generate the EXPERIMENTS.md report from the experiment implementations.

``EXPERIMENTS.md`` in the repository root is the output of
:func:`build_experiments_markdown` — regenerate it at any time with::

    python -m repro.analysis.document > EXPERIMENTS.md

so the documented numbers always come from the same code paths the benchmarks
exercise.
"""

from __future__ import annotations

from typing import List

from repro.analysis.experiments import (
    experiment_e1_theorem_constants,
    experiment_e2_warmup_constants,
    experiment_e3_constraint_verification,
    experiment_e4_cross_validation,
    experiment_e5_update_scaling,
    experiment_e6_worst_case,
    experiment_e7_ivm_join,
    experiment_e8_omega_ablation,
    experiment_e9_phase_ablation,
)
from repro.analysis.reporting import markdown_table


def build_experiments_markdown(quick: bool = False) -> str:
    """Run every experiment and render the Markdown report.

    ``quick=True`` shrinks the synthetic workloads (used by tests); the
    committed ``EXPERIMENTS.md`` is generated with the default sizes.
    """
    scale_updates = 60 if quick else 150
    sizes = (16, 32) if quick else (16, 32, 64, 96)
    sections: List[str] = []
    sections.append(_header())

    sections.append("## E1 — Theorem 1/2 constants\n")
    sections.append(
        "Paper: `eps = 0.009811`, `delta = 3 eps = 0.0294327` for `omega = 2.371339`; "
        "`eps = 1/24`, `delta = 1/8` for `omega = 2`; update-time exponent `2/3 - eps` "
        "(`m^0.65686` and `m^0.625`).  Measured: the solver's closed form reproduces the "
        "published constants to the reported precision.\n"
    )
    sections.append(markdown_table(experiment_e1_theorem_constants(), float_digits=7))

    sections.append("\n## E2 — Warm-up algorithm constants (Section 3.4)\n")
    sections.append(
        "Paper: `eps1 = 0.04201965`, `eps2 = 0.14568075` (current omega, via the [ADW+25] "
        "rectangular tables) and `eps1 = 1/24`, `eps2 = 5/24` (best possible omega).  Measured: "
        "the best-possible regime is re-derived exactly; for the current regime the solver uses "
        "the block-partition rectangular bound (the [ADW+25] tables are not reproducible "
        "offline), so its value differs from the published one, and E3 instead verifies the "
        "published value against every constraint.\n"
    )
    sections.append(markdown_table(experiment_e2_warmup_constants(), float_digits=8))

    sections.append("\n## E3 — Appendix B constraint verification\n")
    sections.append(
        "Paper: all constraints of Eqs. (2), (5)-(11) hold at the published parameter values.  "
        "Measured: every row satisfied.\n"
    )
    sections.append(markdown_table(experiment_e3_constraint_verification(), float_digits=6))

    sections.append("\n## E4 — Correctness cross-validation\n")
    sections.append(
        "All counters must agree with the brute-force reference after every update on every "
        "workload (the paper's algorithm is exact).  Measured: every (counter, workload) pair "
        "validated.\n"
    )
    sections.append(
        markdown_table(
            experiment_e4_cross_validation(scale=1, updates_per_workload=scale_updates),
            float_digits=1,
        )
    )

    sections.append("\n## E5 — Update-cost scaling versus m\n")
    sections.append(
        "Operation counts per update as the (skewed) graph grows.  The paper's claim is about "
        "asymptotic worst-case exponents (2/3 for [HHH22], 2/3 - eps here) that cannot be "
        "observed at laptop scale; the reproduced *shape* is that the stored-structure "
        "algorithms' costs grow sublinearly in m and do not blow up with the hubs' degrees, "
        "unlike the neighborhood-scanning baselines.\n"
    )
    scaling = experiment_e5_update_scaling(sizes=sizes, updates_per_vertex=7)
    sections.append(markdown_table(scaling.points, float_digits=1))
    exponent_rows = [
        {
            "counter": name,
            "fitted_cost_exponent": scaling.fitted_exponents.get(name),
            "theoretical_worst_case_exponent": scaling.theoretical_exponents.get(name),
        }
        for name in sorted(scaling.fitted_exponents)
    ]
    sections.append("\n")
    sections.append(markdown_table(exponent_rows, float_digits=3))

    sections.append("\n## E6 — Worst-case versus amortized per-update cost\n")
    sections.append(
        "Hub-adversarial stream; the figure of merit for a worst-case bound is the max/p99 "
        "per-update cost relative to the mean.\n"
    )
    sections.append(
        markdown_table(
            experiment_e6_worst_case(num_vertices=40, num_updates=200 if quick else 400),
            float_digits=1,
        )
    )

    sections.append("\n## E7 — IVM cyclic-join count view\n")
    sections.append(
        "Four relations under random tuple updates; the maintained COUNT view must equal a "
        "from-scratch join at every checkpoint (Figure 1 framing).\n"
    )
    sections.append(
        markdown_table(
            experiment_e7_ivm_join(updates_per_domain=150 if quick else 400), float_digits=6
        )
    )

    sections.append("\n## E8 — Omega ablation\n")
    sections.append(
        "Paper: the improvement exists exactly when `omega < 2.5` (so Strassen's 2.807 is not "
        "enough), and the exponent falls from 2/3 to 0.65686 (current omega) and 0.625 "
        "(omega = 2).  Measured: reproduced by the constraint solver.\n"
    )
    ablation = experiment_e8_omega_ablation(step=0.1)
    sections.append(markdown_table(ablation.rows, float_digits=6))
    sections.append("\n")
    sections.append(markdown_table(ablation.headline, float_digits=6))

    sections.append("\n## E9 — Phase-length ablation\n")
    sections.append(
        "Sweeping the phase length of the phase/FMM counter: short phases re-multiply often, "
        "long phases make the lazily scanned new-phase delta large; the paper's choice "
        "`m^{1-delta}` balances the two.\n"
    )
    sections.append(
        markdown_table(
            experiment_e9_phase_ablation(num_updates=200 if quick else 400), float_digits=1
        )
    )
    sections.append("")
    return "\n".join(sections)


def _header() -> str:
    return (
        "# EXPERIMENTS — paper versus reproduction\n"
        "\n"
        "This file is generated by `python -m repro.analysis.document > EXPERIMENTS.md`.\n"
        "Each section corresponds to one experiment id of DESIGN.md; the benchmark suite\n"
        "(`pytest benchmarks/ --benchmark-only`) regenerates the same rows and asserts the\n"
        "reproduced claims.  The paper (PODS 2025, arXiv:2504.10748) has no empirical\n"
        "evaluation of its own: E1-E3 and E8 reproduce its analytic results exactly, while\n"
        "E4-E7 and E9 are the synthetic-system experiments implied by its claims (exactness,\n"
        "worst-case behaviour, IVM framing, phase design).\n"
    )


def main() -> None:
    print(build_experiments_markdown())


if __name__ == "__main__":
    main()
