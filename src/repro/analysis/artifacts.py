"""Machine-readable benchmark artifacts (``BENCH_E*.json``).

Every performance experiment can dump its result rows as a small JSON file so
the perf trajectory is tracked across PRs: CI archives the artifacts, and a
later session can diff ``updates_per_second``/``speedup`` columns against the
previous run instead of re-reading prose tables.

The artifact schema is deliberately flat::

    {
      "benchmark": "E11",
      "params": {...},          # the experiment's input parameters
      "rows": [{...}, ...],     # the experiment's dataclass rows, as dicts
      "python": "3.12.3",
      "platform": "Linux-...",
    }

The output directory defaults to the current working directory and can be
redirected with the ``REPRO_BENCH_DIR`` environment variable (used by CI to
collect artifacts from one place).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.analysis.reporting import rows_to_dicts


def artifact_directory(directory: Optional[str] = None) -> Path:
    """Resolve the artifact output directory (created if missing)."""
    chosen = directory or os.environ.get("REPRO_BENCH_DIR") or "."
    path = Path(chosen)
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_bench_artifact(
    name: str,
    params: Mapping[str, object],
    rows: Sequence[object],
    directory: Optional[str] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``rows`` may be dataclass instances or mappings (anything
    :func:`repro.analysis.reporting.rows_to_dicts` accepts).
    """
    payload = {
        "benchmark": name,
        "params": dict(params),
        "rows": rows_to_dicts(rows),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    path = artifact_directory(directory) / f"BENCH_{name}.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False, default=str)
        handle.write("\n")
    return path


def read_bench_artifact(name: str, directory: Optional[str] = None) -> dict:
    """Read a previously written artifact (for tests and trend tooling)."""
    path = artifact_directory(directory) / f"BENCH_{name}.json"
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)
