"""Synthetic workload generators for graphs and joins."""

from repro.workloads.generators import (
    batched_stream_catalogue,
    complete_bipartite_stream,
    erdos_renyi_stream,
    hub_adversarial_stream,
    mixed_churn_stream,
    power_law_stream,
    sliding_window_stream,
    stream_catalogue,
)
from repro.workloads.join_workloads import (
    JOIN_RELATIONS,
    batched_join_workload,
    figure_one_workload,
    random_join_workload,
    skewed_join_workload,
)

__all__ = [
    "erdos_renyi_stream",
    "power_law_stream",
    "hub_adversarial_stream",
    "sliding_window_stream",
    "mixed_churn_stream",
    "complete_bipartite_stream",
    "stream_catalogue",
    "batched_stream_catalogue",
    "random_join_workload",
    "skewed_join_workload",
    "figure_one_workload",
    "batched_join_workload",
    "JOIN_RELATIONS",
]
