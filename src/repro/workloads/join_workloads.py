"""Database-flavored workloads: tuple-update streams for the cyclic join view.

These generate :class:`~repro.db.ivm.TupleUpdate` sequences against the
canonical 4-cycle join schema, mirroring the paper's IVM motivation: four
relations continuously updated, with the join count maintained after every
update (experiment E7).
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.db.ivm import TupleUpdate
from repro.exceptions import ConfigurationError

#: Relation names of the canonical 4-cycle join.
JOIN_RELATIONS = ("A", "B", "C", "D")


def random_join_workload(
    domain_size: int,
    num_updates: int,
    delete_fraction: float = 0.25,
    seed: int = 0,
) -> List[TupleUpdate]:
    """Uniformly random tuple inserts/deletes across the four relations.

    Every attribute shares one value domain ``0 .. domain_size - 1`` (as in the
    Section 8 reduction).  The stream is consistent: no duplicate insertions,
    no deletions of absent tuples.
    """
    if domain_size <= 0:
        raise ConfigurationError(f"domain_size must be positive, got {domain_size}")
    if num_updates <= 0:
        raise ConfigurationError(f"num_updates must be positive, got {num_updates}")
    if not 0.0 <= delete_fraction < 1.0:
        raise ConfigurationError(f"delete_fraction must be in [0, 1), got {delete_fraction}")
    rng = random.Random(seed)
    live: Dict[str, Set[Tuple[int, int]]] = {name: set() for name in JOIN_RELATIONS}
    live_lists: Dict[str, List[Tuple[int, int]]] = {name: [] for name in JOIN_RELATIONS}
    updates: List[TupleUpdate] = []
    attempts = 0
    attempts_limit = 100 * num_updates
    while len(updates) < num_updates and attempts < attempts_limit:
        attempts += 1
        relation = rng.choice(JOIN_RELATIONS)
        if live_lists[relation] and rng.random() < delete_fraction:
            index = rng.randrange(len(live_lists[relation]))
            pair = live_lists[relation][index]
            live_lists[relation][index] = live_lists[relation][-1]
            live_lists[relation].pop()
            live[relation].discard(pair)
            updates.append(TupleUpdate.delete(relation, pair[0], pair[1]))
            continue
        pair = (rng.randrange(domain_size), rng.randrange(domain_size))
        if pair in live[relation]:
            continue
        live[relation].add(pair)
        live_lists[relation].append(pair)
        updates.append(TupleUpdate.insert(relation, pair[0], pair[1]))
    return updates


def skewed_join_workload(
    domain_size: int,
    num_updates: int,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.7,
    delete_fraction: float = 0.2,
    seed: int = 0,
) -> List[TupleUpdate]:
    """A join workload with hot attribute values (skewed data).

    A ``hot_fraction`` of the domain receives ``hot_probability`` of the
    references, creating heavy values — the database analogue of the high /
    dense vertices the paper's class machinery targets.
    """
    if domain_size <= 1:
        raise ConfigurationError(f"domain_size must be at least 2, got {domain_size}")
    if not 0.0 < hot_fraction < 1.0:
        raise ConfigurationError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
    if not 0.0 <= hot_probability <= 1.0:
        raise ConfigurationError(f"hot_probability must be in [0, 1], got {hot_probability}")
    rng = random.Random(seed)
    hot_count = max(1, int(domain_size * hot_fraction))
    hot_values = list(range(hot_count))
    cold_values = list(range(hot_count, domain_size))

    def draw_value() -> int:
        if cold_values and rng.random() >= hot_probability:
            return rng.choice(cold_values)
        return rng.choice(hot_values)

    live: Dict[str, Set[Tuple[int, int]]] = {name: set() for name in JOIN_RELATIONS}
    live_lists: Dict[str, List[Tuple[int, int]]] = {name: [] for name in JOIN_RELATIONS}
    updates: List[TupleUpdate] = []
    attempts = 0
    attempts_limit = 100 * num_updates
    while len(updates) < num_updates and attempts < attempts_limit:
        attempts += 1
        relation = rng.choice(JOIN_RELATIONS)
        if live_lists[relation] and rng.random() < delete_fraction:
            index = rng.randrange(len(live_lists[relation]))
            pair = live_lists[relation][index]
            live_lists[relation][index] = live_lists[relation][-1]
            live_lists[relation].pop()
            live[relation].discard(pair)
            updates.append(TupleUpdate.delete(relation, pair[0], pair[1]))
            continue
        pair = (draw_value(), draw_value())
        if pair in live[relation]:
            continue
        live[relation].add(pair)
        live_lists[relation].append(pair)
        updates.append(TupleUpdate.insert(relation, pair[0], pair[1]))
    return updates


def batched_join_workload(
    updates: List[TupleUpdate], batch_size: int
) -> List[List[TupleUpdate]]:
    """Split a tuple-update workload into consecutive windows of ``batch_size``.

    The windows feed :meth:`repro.db.ivm.CyclicJoinCountView.apply_batch`; the
    last window may be shorter.
    """
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
    return [updates[start:start + batch_size] for start in range(0, len(updates), batch_size)]


def figure_one_workload() -> List[TupleUpdate]:
    """The worked example of the paper's Figure 1 as an insertion stream.

    Relations ``A(L1, L2) = {(1,1), (1,2), (1,3), (2,2), (3,2)}`` and
    ``B(L2, L3) = {(1,1), (2,1), (3,1), (3,3)}``; ``C`` and ``D`` are left
    empty, so the cyclic-join count stays zero while the binary join
    ``A ⋈ B`` has the six result tuples listed in the figure (checked by the
    example scripts and tests through :func:`repro.db.join.count_two_hop_join`).
    """
    a_tuples = [(1, 1), (1, 2), (1, 3), (2, 2), (3, 2)]
    b_tuples = [(1, 1), (2, 1), (3, 1), (3, 3)]
    updates = [TupleUpdate.insert("A", left, right) for left, right in a_tuples]
    updates.extend(TupleUpdate.insert("B", left, right) for left, right in b_tuples)
    return updates
