"""Synthetic fully dynamic update-stream generators.

The paper evaluates nothing empirically, so these workloads are the synthetic
stand-ins the benchmark harness uses to exercise the algorithms on the regimes
the paper's analysis cares about:

* :func:`erdos_renyi_stream` — uniformly random edges, the neutral baseline.
* :func:`power_law_stream` — skewed degrees, which creates the high/dense
  vertices whose treatment is the whole point of the degree-class machinery.
* :func:`hub_adversarial_stream` — a small set of hubs incident to most edges,
  approximating the worst case for neighborhood-scanning algorithms.
* :func:`sliding_window_stream` — every edge expires after a fixed number of
  updates, the classic fully dynamic IVM pattern (inserts and deletes
  interleaved forever).
* :func:`mixed_churn_stream` — random interleaving of insertions and deletions
  with a target live-edge count.

All generators are deterministic given their ``seed`` and return
:class:`~repro.graph.updates.UpdateStream` objects that are guaranteed
consistent (no duplicate inserts, no deletes of absent edges).
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.graph.updates import EdgeUpdate, UpdateStream

Vertex = Hashable


def _require_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def erdos_renyi_stream(
    num_vertices: int,
    num_updates: int,
    delete_fraction: float = 0.3,
    seed: int = 0,
) -> UpdateStream:
    """A uniformly random insert/delete stream on ``num_vertices`` vertices.

    Each step inserts a uniformly random absent edge with probability
    ``1 - delete_fraction`` (or when nothing can be deleted) and deletes a
    uniformly random present edge otherwise.
    """
    _require_positive("num_vertices", num_vertices)
    _require_positive("num_updates", num_updates)
    if not 0.0 <= delete_fraction < 1.0:
        raise ConfigurationError(f"delete_fraction must be in [0, 1), got {delete_fraction}")
    rng = random.Random(seed)
    live: List[tuple[Vertex, Vertex]] = []
    live_set: set[tuple[Vertex, Vertex]] = set()
    updates: List[EdgeUpdate] = []
    max_edges = num_vertices * (num_vertices - 1) // 2
    while len(updates) < num_updates:
        want_delete = live and (rng.random() < delete_fraction or len(live_set) >= max_edges)
        if want_delete:
            index = rng.randrange(len(live))
            edge = live[index]
            live[index] = live[-1]
            live.pop()
            live_set.discard(edge)
            updates.append(EdgeUpdate.delete(*edge))
        else:
            edge = _random_absent_edge(rng, num_vertices, live_set)
            if edge is None:
                continue
            live.append(edge)
            live_set.add(edge)
            updates.append(EdgeUpdate.insert(*edge))
    return UpdateStream(updates)


def power_law_stream(
    num_vertices: int,
    num_updates: int,
    exponent: float = 2.2,
    delete_fraction: float = 0.25,
    seed: int = 0,
) -> UpdateStream:
    """A skewed-degree stream: endpoints drawn from a Zipf-like distribution.

    Vertex ``i`` is chosen with probability proportional to
    ``(i + 1) ** -exponent``, so a handful of vertices become high degree —
    exactly the regime where the paper's high/dense classes are populated.
    """
    _require_positive("num_vertices", num_vertices)
    _require_positive("num_updates", num_updates)
    if exponent <= 0:
        raise ConfigurationError(f"exponent must be positive, got {exponent}")
    rng = random.Random(seed)
    weights = [(index + 1) ** (-exponent) for index in range(num_vertices)]
    vertices = list(range(num_vertices))
    live: List[tuple[Vertex, Vertex]] = []
    live_set: set[tuple[Vertex, Vertex]] = set()
    updates: List[EdgeUpdate] = []
    attempts_limit = 50 * num_updates
    attempts = 0
    while len(updates) < num_updates and attempts < attempts_limit:
        attempts += 1
        if live and rng.random() < delete_fraction:
            index = rng.randrange(len(live))
            edge = live[index]
            live[index] = live[-1]
            live.pop()
            live_set.discard(edge)
            updates.append(EdgeUpdate.delete(*edge))
            continue
        u, v = rng.choices(vertices, weights=weights, k=2)
        if u == v:
            continue
        key = (u, v) if u <= v else (v, u)
        if key in live_set:
            continue
        live.append(key)
        live_set.add(key)
        updates.append(EdgeUpdate.insert(*key))
    return UpdateStream(updates)


def hub_adversarial_stream(
    num_vertices: int,
    num_updates: int,
    num_hubs: int = 2,
    hub_probability: float = 0.8,
    delete_fraction: float = 0.2,
    seed: int = 0,
) -> UpdateStream:
    """A stream where most edges touch a small set of hub vertices.

    Hubs quickly reach the high/dense degree classes and their neighborhoods
    become too large to scan, which is the situation the paper's stored wedge
    structures (and [HHH22]'s before it) exist to handle.
    """
    _require_positive("num_vertices", num_vertices)
    _require_positive("num_updates", num_updates)
    if not 1 <= num_hubs < num_vertices:
        raise ConfigurationError(
            f"num_hubs must be in [1, num_vertices), got {num_hubs} for {num_vertices} vertices"
        )
    rng = random.Random(seed)
    hubs = list(range(num_hubs))
    others = list(range(num_hubs, num_vertices))
    live: List[tuple[Vertex, Vertex]] = []
    live_set: set[tuple[Vertex, Vertex]] = set()
    updates: List[EdgeUpdate] = []
    attempts_limit = 50 * num_updates
    attempts = 0
    while len(updates) < num_updates and attempts < attempts_limit:
        attempts += 1
        if live and rng.random() < delete_fraction:
            index = rng.randrange(len(live))
            edge = live[index]
            live[index] = live[-1]
            live.pop()
            live_set.discard(edge)
            updates.append(EdgeUpdate.delete(*edge))
            continue
        if rng.random() < hub_probability:
            u = rng.choice(hubs)
            v = rng.choice(others)
        else:
            u, v = rng.sample(others, 2) if len(others) >= 2 else rng.sample(range(num_vertices), 2)
        if u == v:
            continue
        key = (u, v) if u <= v else (v, u)
        if key in live_set:
            continue
        live.append(key)
        live_set.add(key)
        updates.append(EdgeUpdate.insert(*key))
    return UpdateStream(updates)


def sliding_window_stream(
    num_vertices: int,
    num_insertions: int,
    window_size: int,
    seed: int = 0,
) -> UpdateStream:
    """Insert random edges; every edge is deleted ``window_size`` insertions later.

    Models the streaming / expiring-tuples IVM workload: the live graph size
    stays near ``window_size`` while insertions and deletions alternate.
    """
    _require_positive("num_vertices", num_vertices)
    _require_positive("num_insertions", num_insertions)
    _require_positive("window_size", window_size)
    rng = random.Random(seed)
    live_set: set[tuple[Vertex, Vertex]] = set()
    window: List[tuple[Vertex, Vertex]] = []
    updates: List[EdgeUpdate] = []
    inserted = 0
    attempts = 0
    attempts_limit = 100 * num_insertions
    while inserted < num_insertions and attempts < attempts_limit:
        attempts += 1
        edge = _random_absent_edge(rng, num_vertices, live_set)
        if edge is None:
            break
        live_set.add(edge)
        window.append(edge)
        updates.append(EdgeUpdate.insert(*edge))
        inserted += 1
        if len(window) > window_size:
            expired = window.pop(0)
            live_set.discard(expired)
            updates.append(EdgeUpdate.delete(*expired))
    return UpdateStream(updates)


def mixed_churn_stream(
    num_vertices: int,
    num_updates: int,
    target_live_edges: int,
    seed: int = 0,
) -> UpdateStream:
    """Random churn that hovers around ``target_live_edges`` live edges.

    Below the target, insertions are more likely; above it, deletions are.
    Useful for measuring steady-state update cost at a controlled ``m``.
    """
    _require_positive("num_vertices", num_vertices)
    _require_positive("num_updates", num_updates)
    _require_positive("target_live_edges", target_live_edges)
    rng = random.Random(seed)
    live: List[tuple[Vertex, Vertex]] = []
    live_set: set[tuple[Vertex, Vertex]] = set()
    updates: List[EdgeUpdate] = []
    while len(updates) < num_updates:
        pressure = len(live_set) / float(target_live_edges)
        delete_probability = min(0.9, 0.5 * pressure)
        if live and rng.random() < delete_probability:
            index = rng.randrange(len(live))
            edge = live[index]
            live[index] = live[-1]
            live.pop()
            live_set.discard(edge)
            updates.append(EdgeUpdate.delete(*edge))
        else:
            edge = _random_absent_edge(rng, num_vertices, live_set)
            if edge is None:
                continue
            live.append(edge)
            live_set.add(edge)
            updates.append(EdgeUpdate.insert(*edge))
    return UpdateStream(updates)


def complete_bipartite_stream(left_size: int, right_size: int) -> UpdateStream:
    """Insert every edge of ``K_{left,right}`` (a dense, 4-cycle-rich graph).

    The number of 4-cycles of the final graph is
    ``C(left_size, 2) * C(right_size, 2)``, a handy closed form for tests.
    """
    _require_positive("left_size", left_size)
    _require_positive("right_size", right_size)
    edges = [
        (f"l{i}", f"r{j}")
        for i in range(left_size)
        for j in range(right_size)
    ]
    return UpdateStream.from_edges(edges)


def _random_absent_edge(
    rng: random.Random,
    num_vertices: int,
    live_set: set[tuple[Vertex, Vertex]],
    max_attempts: int = 200,
) -> Optional[tuple[Vertex, Vertex]]:
    """A uniformly random edge not currently live, or ``None`` if sampling fails."""
    for _ in range(max_attempts):
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        key = (u, v) if u <= v else (v, u)
        if key not in live_set:
            return key
    return None


def batched_stream_catalogue(
    batch_size: int, scale: int = 1, seed: int = 0
) -> dict[str, list[UpdateStream]]:
    """The :func:`stream_catalogue` workloads pre-split into batch windows.

    Each stream is materialized as the list of its ``batch_size`` windows (via
    :meth:`~repro.graph.updates.UpdateStream.batched`), the shape a counter's
    ``apply_batch`` pipeline consumes — a convenience for callers that want
    the whole catalogue batched without threading window sizes through their
    own code.
    """
    return {
        name: list(stream.batched(batch_size))
        for name, stream in stream_catalogue(scale=scale, seed=seed).items()
    }


def stream_catalogue(scale: int = 1, seed: int = 0) -> dict[str, UpdateStream]:
    """A small named collection of streams at a given scale, used by tests and
    the cross-validation experiment (E4)."""
    base_vertices = 24 * scale
    base_updates = 160 * scale
    return {
        "erdos-renyi": erdos_renyi_stream(base_vertices, base_updates, seed=seed),
        "power-law": power_law_stream(base_vertices, base_updates, seed=seed + 1),
        "hubs": hub_adversarial_stream(base_vertices, base_updates, seed=seed + 2),
        "sliding-window": sliding_window_stream(
            base_vertices, base_updates, window_size=max(8, base_updates // 4), seed=seed + 3
        ),
        "churn": mixed_churn_stream(
            base_vertices, base_updates, target_live_edges=max(10, base_updates // 3), seed=seed + 4
        ),
    }
