"""Database layer: relations, cyclic joins, and incremental view maintenance."""

from repro.db.ivm import CyclicJoinCountView, TupleBatch, TupleUpdate, normalize_tuple_updates
from repro.db.join import count_cyclic_join, count_two_hop_join, relations_to_layered_graph
from repro.db.relation import Relation
from repro.db.schema import RelationSchema, four_cycle_schemas, validate_cyclic_chain

__all__ = [
    "Relation",
    "RelationSchema",
    "four_cycle_schemas",
    "validate_cyclic_chain",
    "count_cyclic_join",
    "count_two_hop_join",
    "relations_to_layered_graph",
    "CyclicJoinCountView",
    "TupleBatch",
    "TupleUpdate",
    "normalize_tuple_updates",
]
