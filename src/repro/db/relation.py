"""Dynamic binary relations (sets of attribute-value pairs).

A :class:`Relation` is the database-side twin of one layer-to-layer edge set of
the layered graph: tuples are inserted and deleted one at a time, duplicates
are rejected (the paper's graphs are simple), and both directions of access are
indexed so joins and the IVM engine can probe either attribute in O(1).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set

from repro.db.schema import RelationSchema
from repro.exceptions import DuplicateTupleError, MissingTupleError

Value = Hashable


class Relation:
    """A dynamic binary relation with per-attribute indexes."""

    def __init__(self, schema: RelationSchema, tuples: Iterable[tuple[Value, Value]] = ()) -> None:
        self.schema = schema
        self._by_left: Dict[Value, Set[Value]] = {}
        self._by_right: Dict[Value, Set[Value]] = {}
        self._size = 0
        for left, right in tuples:
            self.insert(left, right)

    # -- structure -----------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def size(self) -> int:
        """Number of tuples currently in the relation."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def __contains__(self, pair: tuple[Value, Value]) -> bool:
        left, right = pair
        return self.contains(left, right)

    def contains(self, left: Value, right: Value) -> bool:
        matches = self._by_left.get(left)
        return matches is not None and right in matches

    def tuples(self) -> Iterator[tuple[Value, Value]]:
        """Iterate over all tuples as ``(left, right)`` pairs."""
        for left, rights in self._by_left.items():
            for right in rights:
                yield (left, right)

    def matching_left(self, left: Value) -> Set[Value]:
        """All right-attribute values paired with ``left`` (live view)."""
        return self._by_left.get(left, _EMPTY_SET)

    def matching_right(self, right: Value) -> Set[Value]:
        """All left-attribute values paired with ``right`` (live view)."""
        return self._by_right.get(right, _EMPTY_SET)

    def left_values(self) -> Set[Value]:
        return {value for value, rights in self._by_left.items() if rights}

    def right_values(self) -> Set[Value]:
        return {value for value, lefts in self._by_right.items() if lefts}

    def degree_left(self, left: Value) -> int:
        """Number of tuples whose left attribute is ``left``."""
        return len(self._by_left.get(left, _EMPTY_SET))

    def degree_right(self, right: Value) -> int:
        """Number of tuples whose right attribute is ``right``."""
        return len(self._by_right.get(right, _EMPTY_SET))

    # -- updates -------------------------------------------------------------------
    def insert(self, left: Value, right: Value) -> None:
        """Insert the tuple ``(left, right)``."""
        if self.contains(left, right):
            raise DuplicateTupleError(
                f"tuple ({left!r}, {right!r}) is already in relation {self.name}"
            )
        self._by_left.setdefault(left, set()).add(right)
        self._by_right.setdefault(right, set()).add(left)
        self._size += 1

    def delete(self, left: Value, right: Value) -> None:
        """Delete the tuple ``(left, right)``."""
        if not self.contains(left, right):
            raise MissingTupleError(
                f"tuple ({left!r}, {right!r}) is not in relation {self.name}"
            )
        self._by_left[left].discard(right)
        self._by_right[right].discard(left)
        self._size -= 1

    # -- derived -------------------------------------------------------------------
    def copy(self) -> "Relation":
        clone = Relation(self.schema)
        clone._by_left = {value: set(rights) for value, rights in self._by_left.items()}
        clone._by_right = {value: set(lefts) for value, lefts in self._by_right.items()}
        clone._size = self._size
        return clone

    def __repr__(self) -> str:
        return f"Relation({self.schema}, size={self._size})"


#: Shared immutable empty set.
_EMPTY_SET: frozenset = frozenset()
