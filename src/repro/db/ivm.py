"""Incremental view maintenance (IVM) of the cyclic join count.

This is the database-facing API of the reproduction: a
:class:`CyclicJoinCountView` holds four binary relations forming the cyclic
join ``A ⋈ B ⋈ C ⋈ D`` and keeps the join *count* up to date under tuple
insertions and deletions — without ever materializing the join — by delegating
to a :class:`~repro.core.layered.LayeredFourCycleCounter` (Section 1: the join
size equals the number of layered 4-cycles, and the per-update delta is the
number of cycles through the updated tuple).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence

from repro.core.layered import LayeredFourCycleCounter
from repro.core.oracles import ThreePathOracle
from repro.db.join import count_cyclic_join
from repro.db.relation import Relation
from repro.db.schema import RelationSchema, four_cycle_schemas, validate_cyclic_chain
from repro.exceptions import SchemaError

Value = Hashable


@dataclass(frozen=True)
class TupleUpdate:
    """One tuple insertion or deletion against a named relation."""

    relation: str
    left: Value
    right: Value
    is_insert: bool = True

    @classmethod
    def insert(cls, relation: str, left: Value, right: Value) -> "TupleUpdate":
        return cls(relation, left, right, True)

    @classmethod
    def delete(cls, relation: str, left: Value, right: Value) -> "TupleUpdate":
        return cls(relation, left, right, False)


class CyclicJoinCountView:
    """A continuously maintained ``COUNT(*)`` view over a cyclic 4-join."""

    def __init__(
        self,
        schemas: Optional[Sequence[RelationSchema]] = None,
        oracle_factory: Optional[Callable[[], ThreePathOracle]] = None,
    ) -> None:
        if schemas is None:
            schemas = four_cycle_schemas()
        if len(schemas) != 4:
            raise SchemaError(f"the cyclic 4-join view needs four relations, got {len(schemas)}")
        validate_cyclic_chain(list(schemas))
        self._schemas = list(schemas)
        self._relations: Dict[str, Relation] = {
            schema.name: Relation(schema) for schema in self._schemas
        }
        # The counter works on the canonical relation names A..D in chain order.
        self._canonical_names = ("A", "B", "C", "D")
        self._name_map = {
            schema.name: canonical
            for schema, canonical in zip(self._schemas, self._canonical_names)
        }
        self._counter = LayeredFourCycleCounter(oracle_factory=oracle_factory, mirror_graph=False)
        self._updates_processed = 0

    # -- public API --------------------------------------------------------------------
    @property
    def count(self) -> int:
        """The current size of the cyclic join."""
        return self._counter.count

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    def relation(self, name: str) -> Relation:
        """The named base relation (read-only use only)."""
        relation = self._relations.get(name)
        if relation is None:
            raise SchemaError(
                f"unknown relation {name!r}; expected one of {sorted(self._relations)}"
            )
        return relation

    def relation_names(self) -> List[str]:
        return [schema.name for schema in self._schemas]

    def insert(self, relation: str, left: Value, right: Value) -> int:
        """Insert a tuple and return the updated join count."""
        return self.apply(TupleUpdate.insert(relation, left, right))

    def delete(self, relation: str, left: Value, right: Value) -> int:
        """Delete a tuple and return the updated join count."""
        return self.apply(TupleUpdate.delete(relation, left, right))

    def apply(self, update: TupleUpdate) -> int:
        """Apply one tuple update and return the updated join count."""
        relation = self.relation(update.relation)
        canonical = self._name_map[update.relation]
        if update.is_insert:
            relation.insert(update.left, update.right)
            self._counter.insert(canonical, update.left, update.right)
        else:
            relation.delete(update.left, update.right)
            self._counter.delete(canonical, update.left, update.right)
        self._updates_processed += 1
        return self._counter.count

    def apply_all(self, updates: Iterable[TupleUpdate]) -> int:
        for update in updates:
            self.apply(update)
        return self._counter.count

    # -- validation -----------------------------------------------------------------------
    def recompute(self) -> int:
        """Recompute the join size from scratch (for validation / tests)."""
        ordered = [self._relations[schema.name] for schema in self._schemas]
        return count_cyclic_join(ordered)

    def is_consistent(self) -> bool:
        """Whether the maintained count matches a from-scratch recomputation."""
        return self.count == self.recompute()

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}={len(rel)}" for name, rel in self._relations.items())
        return f"CyclicJoinCountView(count={self.count}, {sizes})"
