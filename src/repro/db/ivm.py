"""Incremental view maintenance (IVM) of the cyclic join count.

This is the database-facing API of the reproduction: a
:class:`CyclicJoinCountView` holds four binary relations forming the cyclic
join ``A ⋈ B ⋈ C ⋈ D`` and keeps the join *count* up to date under tuple
insertions and deletions — without ever materializing the join — by delegating
to a :class:`~repro.core.layered.LayeredFourCycleCounter` (Section 1: the join
size equals the number of layered 4-cycles, and the per-update delta is the
number of cycles through the updated tuple).

Batched updates.  :meth:`CyclicJoinCountView.apply_batch` consumes a window of
:class:`TupleUpdate` objects at once: the window is normalized
(:func:`normalize_tuple_updates` — insert/delete pairs on the same tuple
cancel, consistency is validated once per distinct tuple against the stored
relations) and the surviving net updates are applied grouped per relation,
deletions before insertions within each group.  Batch-boundary semantics match
the graph counters: the maintained count is **exact at every batch boundary**
(the net updates reach the same final database state, and each applied
update's delta is computed exactly at its application time — the Claim A.3
ordering is preserved within the batch), while intermediate counts inside a
window are not reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.layered import LayeredFourCycleCounter
from repro.core.oracles import ThreePathOracle
from repro.db.join import count_cyclic_join
from repro.db.relation import Relation
from repro.db.schema import RelationSchema, four_cycle_schemas, validate_cyclic_chain
from repro.exceptions import SchemaError
from repro.graph.updates import LayeredEdgeUpdate, simulate_window_presence

Value = Hashable


@dataclass(frozen=True)
class TupleUpdate:
    """One tuple insertion or deletion against a named relation."""

    relation: str
    left: Value
    right: Value
    is_insert: bool = True

    @classmethod
    def insert(cls, relation: str, left: Value, right: Value) -> "TupleUpdate":
        return cls(relation, left, right, True)

    @classmethod
    def delete(cls, relation: str, left: Value, right: Value) -> "TupleUpdate":
        return cls(relation, left, right, False)


@dataclass(frozen=True)
class TupleBatch:
    """A canonicalized window of tuple updates, grouped per relation.

    Produced by :func:`normalize_tuple_updates`.  ``relations`` lists the
    relation names in first-touch order; ``deletions`` / ``insertions`` map
    each of those names to its net updates.  Iteration yields one relation
    group at a time, deletions before insertions, which is always a valid
    ordering against the snapshot the window was normalized for.
    """

    relations: Tuple[str, ...]
    deletions: Mapping[str, Tuple[TupleUpdate, ...]]
    insertions: Mapping[str, Tuple[TupleUpdate, ...]]
    raw_size: int
    cancelled: int = 0

    def __len__(self) -> int:
        """Number of surviving net updates."""
        return sum(len(self.deletions[name]) + len(self.insertions[name]) for name in self.relations)

    def __iter__(self) -> Iterator[TupleUpdate]:
        for name, deletions, insertions in self.groups():
            yield from deletions
            yield from insertions

    def groups(self) -> Iterator[Tuple[str, Tuple[TupleUpdate, ...], Tuple[TupleUpdate, ...]]]:
        """Iterate ``(relation, deletions, insertions)`` per touched relation."""
        for name in self.relations:
            yield name, self.deletions[name], self.insertions[name]

    @property
    def is_empty(self) -> bool:
        return all(
            not self.deletions[name] and not self.insertions[name] for name in self.relations
        )


def normalize_tuple_updates(
    updates: Iterable[TupleUpdate],
    is_tuple_live: Optional[Callable[[str, Value, Value], bool]] = None,
) -> TupleBatch:
    """Canonicalize a window of tuple updates against the stored relations.

    ``is_tuple_live(relation, left, right)`` answers membership against the
    state the window will be applied to; each distinct tuple is probed at most
    once.  Insert/delete pairs on the same tuple cancel; the survivors are
    grouped per relation with deletions ordered before insertions.  An
    inconsistent window (insert of a present tuple, delete of an absent one)
    raises :class:`~repro.exceptions.InvalidUpdateError`.

    The simulate/cancel/validate pass is shared with the graph-side
    :func:`repro.graph.updates.normalize_batch` via
    :func:`repro.graph.updates.simulate_window_presence`, so the two batch
    contracts cannot drift apart.
    """
    initially, present, order, raw_size = simulate_window_presence(
        updates,
        lambda update: (update.relation, update.left, update.right),
        (
            (lambda key: is_tuple_live(key[0], key[1], key[2]))
            if is_tuple_live is not None
            else lambda key: False
        ),
        lambda update: update.is_insert,
        "tuple",
    )
    relation_order: List[str] = []
    for key in order:
        if key[0] not in relation_order:
            relation_order.append(key[0])
    deletions: Dict[str, List[TupleUpdate]] = {name: [] for name in relation_order}
    insertions: Dict[str, List[TupleUpdate]] = {name: [] for name in relation_order}
    net = 0
    for key in order:
        if initially[key] == present[key]:
            continue
        relation, left, right = key
        net += 1
        if present[key]:
            insertions[relation].append(TupleUpdate.insert(relation, left, right))
        else:
            deletions[relation].append(TupleUpdate.delete(relation, left, right))
    return TupleBatch(
        relations=tuple(relation_order),
        deletions={name: tuple(values) for name, values in deletions.items()},
        insertions={name: tuple(values) for name, values in insertions.items()},
        raw_size=raw_size,
        cancelled=raw_size - net,
    )


class CyclicJoinCountView:
    """A continuously maintained ``COUNT(*)`` view over a cyclic 4-join."""

    def __init__(
        self,
        schemas: Optional[Sequence[RelationSchema]] = None,
        oracle_factory: Optional[Callable[[], ThreePathOracle]] = None,
    ) -> None:
        if schemas is None:
            schemas = four_cycle_schemas()
        if len(schemas) != 4:
            raise SchemaError(f"the cyclic 4-join view needs four relations, got {len(schemas)}")
        validate_cyclic_chain(list(schemas))
        self._schemas = list(schemas)
        self._relations: Dict[str, Relation] = {
            schema.name: Relation(schema) for schema in self._schemas
        }
        # The counter works on the canonical relation names A..D in chain order.
        self._canonical_names = ("A", "B", "C", "D")
        self._name_map = {
            schema.name: canonical
            for schema, canonical in zip(self._schemas, self._canonical_names)
        }
        self._counter = LayeredFourCycleCounter(oracle_factory=oracle_factory, mirror_graph=False)
        self._updates_processed = 0

    # -- public API --------------------------------------------------------------------
    @property
    def count(self) -> int:
        """The current size of the cyclic join."""
        return self._counter.count

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    def relation(self, name: str) -> Relation:
        """The named base relation (read-only use only)."""
        relation = self._relations.get(name)
        if relation is None:
            raise SchemaError(
                f"unknown relation {name!r}; expected one of {sorted(self._relations)}"
            )
        return relation

    def relation_names(self) -> List[str]:
        return [schema.name for schema in self._schemas]

    def insert(self, relation: str, left: Value, right: Value) -> int:
        """Insert a tuple and return the updated join count."""
        return self.apply(TupleUpdate.insert(relation, left, right))

    def delete(self, relation: str, left: Value, right: Value) -> int:
        """Delete a tuple and return the updated join count."""
        return self.apply(TupleUpdate.delete(relation, left, right))

    def apply(self, update: TupleUpdate) -> int:
        """Apply one tuple update and return the updated join count."""
        relation = self.relation(update.relation)
        canonical = self._name_map[update.relation]
        if update.is_insert:
            relation.insert(update.left, update.right)
            self._counter.insert(canonical, update.left, update.right)
        else:
            relation.delete(update.left, update.right)
            self._counter.delete(canonical, update.left, update.right)
        self._updates_processed += 1
        return self._counter.count

    def apply_all(self, updates: Iterable[TupleUpdate]) -> int:
        for update in updates:
            self.apply(update)
        return self._counter.count

    def apply_batch(self, updates: Union[TupleBatch, Iterable[TupleUpdate]]) -> int:
        """Apply a window of tuple updates as one batch; return the new count.

        Raw windows are normalized first (cancellation + one validation probe
        per distinct tuple); an already-normalized :class:`TupleBatch` is
        consumed as-is.  Net updates are applied grouped per relation —
        relation and name-map lookups happen once per group instead of once
        per update — and the layered counter processes the whole window
        through its own batch entry point.  The count is exact at the batch
        boundary.
        """
        if isinstance(updates, TupleBatch):
            batch = updates
        else:
            batch = normalize_tuple_updates(
                updates, lambda name, left, right: self.relation(name).contains(left, right)
            )
        layered: List[LayeredEdgeUpdate] = []
        for name, deletions, insertions in batch.groups():
            relation = self.relation(name)
            canonical = self._name_map[name]
            for update in deletions:
                relation.delete(update.left, update.right)
                layered.append(LayeredEdgeUpdate.delete(canonical, update.left, update.right))
            for update in insertions:
                relation.insert(update.left, update.right)
                layered.append(LayeredEdgeUpdate.insert(canonical, update.left, update.right))
        self._counter.apply_batch(layered)
        self._updates_processed += batch.raw_size
        return self._counter.count

    # -- validation -----------------------------------------------------------------------
    def recompute(self) -> int:
        """Recompute the join size from scratch (for validation / tests)."""
        ordered = [self._relations[schema.name] for schema in self._schemas]
        return count_cyclic_join(ordered)

    def is_consistent(self) -> bool:
        """Whether the maintained count matches a from-scratch recomputation."""
        return self.count == self.recompute()

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}={len(rel)}" for name, rel in self._relations.items())
        return f"CyclicJoinCountView(count={self.count}, {sizes})"
