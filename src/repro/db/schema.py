"""Relation schemas for the database framing of the paper.

The paper's motivating database problem (Section 1, Figure 1): four binary
relations ``A(L1, L2)``, ``B(L2, L3)``, ``C(L3, L4)``, ``D(L4, L1)`` over
attributes ``L1..L4``, maintained under tuple insertions and deletions, with
the size of the cyclic join reported after every update.  A schema here is
simply the ordered pair of attribute names of a binary relation, plus helpers
to check that a sequence of schemas chains into a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import SchemaError


@dataclass(frozen=True)
class RelationSchema:
    """The schema of a binary relation: a name and its two attributes."""

    name: str
    left_attribute: str
    right_attribute: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if self.left_attribute == self.right_attribute:
            raise SchemaError(
                f"relation {self.name!r} must join two distinct attributes, "
                f"got {self.left_attribute!r} twice"
            )

    @property
    def attributes(self) -> tuple[str, str]:
        return (self.left_attribute, self.right_attribute)

    def __str__(self) -> str:
        return f"{self.name}({self.left_attribute}, {self.right_attribute})"


def validate_cyclic_chain(schemas: Sequence[RelationSchema]) -> None:
    """Check that the schemas chain into a cycle: the right attribute of each
    relation equals the left attribute of the next (wrapping around).

    Raises :class:`SchemaError` otherwise.
    """
    if len(schemas) < 2:
        raise SchemaError("a cyclic join needs at least two relations")
    for index, schema in enumerate(schemas):
        following = schemas[(index + 1) % len(schemas)]
        if schema.right_attribute != following.left_attribute:
            raise SchemaError(
                f"relations do not chain: {schema} is followed by {following}, but "
                f"{schema.right_attribute!r} != {following.left_attribute!r}"
            )


def four_cycle_schemas() -> tuple[RelationSchema, RelationSchema, RelationSchema, RelationSchema]:
    """The canonical 4-cycle join schema of the paper."""
    schemas = (
        RelationSchema("A", "L1", "L2"),
        RelationSchema("B", "L2", "L3"),
        RelationSchema("C", "L3", "L4"),
        RelationSchema("D", "L4", "L1"),
    )
    validate_cyclic_chain(schemas)
    return schemas
