"""Static cyclic-join evaluation over binary relations.

These are the from-scratch join counters the IVM engine is validated against:
the size of ``A ⋈ B ⋈ C ⋈ D`` computed directly, and the bridge that turns
four relations into the equivalent 4-layered graph of the paper (Figure 1).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.db.relation import Relation
from repro.db.schema import validate_cyclic_chain
from repro.exceptions import SchemaError
from repro.graph.layered_graph import LayeredGraph

Value = Hashable


def count_two_hop_join(first: Relation, second: Relation) -> int:
    """The size of the binary join ``first ⋈ second`` on their shared attribute.

    Equal to the number of layered 2-paths in the corresponding layered graph
    (the Figure 1 example).
    """
    if first.schema.right_attribute != second.schema.left_attribute:
        raise SchemaError(
            f"cannot join {first.schema} with {second.schema}: attributes do not chain"
        )
    total = 0
    for shared in first.right_values():
        total += first.degree_right(shared) * second.degree_left(shared)
    return total


def count_cyclic_join(relations: Sequence[Relation]) -> int:
    """The exact size of the cyclic join of four binary relations.

    The relations must chain into a cycle (validated).  The count equals the
    number of layered 4-cycles of the corresponding 4-layered graph
    (Section 1: each join result tuple corresponds to a unique layered
    4-cycle).
    """
    if len(relations) != 4:
        raise SchemaError(f"the cyclic 4-join needs exactly four relations, got {len(relations)}")
    validate_cyclic_chain([relation.schema for relation in relations])
    a, b, c, d = relations
    total = 0
    # Enumerate the closing relation D and count 3-hop paths through A, B, C.
    for v4, v1 in d.tuples():
        c_partners = c.matching_right(v4)
        a_partners = a.matching_left(v1)
        for v2 in a_partners:
            b_partners = b.matching_left(v2)
            if len(b_partners) <= len(c_partners):
                total += sum(1 for v3 in b_partners if v3 in c_partners)
            else:
                total += sum(1 for v3 in c_partners if v3 in b_partners)
    return total


def relations_to_layered_graph(relations: Sequence[Relation]) -> LayeredGraph:
    """Build the 4-layered graph equivalent to four cyclically-joined relations.

    Attribute values become layer vertices and tuples become edges; the number
    of layered 4-cycles of the result equals :func:`count_cyclic_join`.
    """
    if len(relations) != 4:
        raise SchemaError(f"expected exactly four relations, got {len(relations)}")
    validate_cyclic_chain([relation.schema for relation in relations])
    graph = LayeredGraph()
    for relation_name, relation in zip(("A", "B", "C", "D"), relations):
        for left, right in relation.tuples():
            graph.insert(relation_name, left, right)
    return graph
