"""The repro-lint ruleset: REP101-REP105.

Each rule mechanizes one invariant this repository's correctness or
performance story depends on.  The rules are syntactic by design — an AST
pattern either matches or it does not — with an escape hatch
(``# repro-lint: <slug> <reason>``, see :mod:`repro.lint.engine`) for the
sites where the code is right for reasons the pattern cannot see.  The
point is not to prove the invariant; it is to make *silently* breaking it
impossible: every new float cast, upward import, hot-path dict, pool
closure, or blanket except must either satisfy the recognizer or carry a
written justification that a reviewer sees in the diff.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import ModuleContext, Rule
from repro.lint.hotpaths import HOT_FUNCTION_NAMES, HOT_PATHS

# ---------------------------------------------------------------------------
# REP101 — exactness
# ---------------------------------------------------------------------------

#: Names that identify an exactness bound in a guard expression.
_BOUND_NAME = re.compile(r"EXACT_BOUND", re.IGNORECASE)

#: Packages whose count/index arrays carry the exactness contract.
EXACTNESS_PACKAGES = frozenset({"core", "graph", "matmul", "kernels"})


def _is_exact_bound_expr(node: ast.AST) -> bool:
    """Whether an expression subtree references the ``2^53`` bound."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and _BOUND_NAME.search(child.id):
            return True
        if isinstance(child, ast.Attribute) and _BOUND_NAME.search(child.attr):
            return True
        # A literal ``2 ** 53`` spelled inline.
        if (
            isinstance(child, ast.BinOp)
            and isinstance(child.op, ast.Pow)
            and isinstance(child.left, ast.Constant)
            and child.left.value == 2
            and isinstance(child.right, ast.Constant)
            and child.right.value == 53
        ):
            return True
    return False


def _is_float_dtype(node: ast.AST) -> bool:
    """Whether an expression names a float dtype (``float``/``np.float64``/"float64")."""
    if isinstance(node, ast.Name):
        return node.id == "float"
    if isinstance(node, ast.Attribute):
        return node.attr in ("float64", "float32", "float16", "float_")
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str) and node.value.startswith("float")
    return False


class ExactnessRule(Rule):
    """REP101: float casts on array data must sit under a ``2^53`` guard.

    The counters' correctness claims are *exact integer* claims; the only
    float64 round-trips allowed in the kernel packages are the provably
    exact ones (every possible intermediate below ``2^53``).  Flags, inside
    ``repro/{core,graph,matmul,kernels}``:

    * ``.astype(<float dtype>)`` calls,
    * ``dtype=<float dtype>`` keyword arguments,
    * ``np.float64(...)`` style constructor calls,
    * ``np.bincount(..., weights=...)`` (accumulates its weights in float64).

    A site is clean when an enclosing ``if``/``while``/ternary test
    references an ``*_EXACT_BOUND`` name, a literal ``2 ** 53``, or a *guard
    variable* — any local assigned from an expression that compares against
    such a bound (so ``dense_merge_possible = ... < _BINCOUNT_EXACT_BOUND``
    followed by ``if dense_merge_possible:`` is recognized).  Everything
    else needs ``# repro-lint: exact-ok <reason>``.

    Scalar ``float(...)`` threshold arithmetic (phase lengths, cost models)
    is deliberately out of scope: it never flows back into count arrays.
    """

    code = "REP101"
    slug = "exact-ok"
    description = "float casts on count/index arrays need a 2^53 guard or exact-ok pragma"

    def applies_to(self, module: ModuleContext) -> bool:
        package = module.package()
        return package is None or package in EXACTNESS_PACKAGES

    def check(self, module: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        guard_variables = self._guard_variables(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            reason = self._float_use(node)
            if reason is None:
                continue
            if self._guarded(module, node, guard_variables):
                continue
            yield node, (
                f"{reason} without a recognized 2**53 exactness guard; "
                "prove the bound in an enclosing test or annotate with "
                "'# repro-lint: exact-ok <reason>'"
            )

    @staticmethod
    def _float_use(node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if any(_is_float_dtype(argument) for argument in node.args) or any(
                keyword.arg == "dtype" and _is_float_dtype(keyword.value)
                for keyword in node.keywords
            ):
                return "float-dtype astype() cast"
        if isinstance(func, ast.Attribute) and func.attr in ("float64", "float32"):
            return f"np.{func.attr}() cast"
        if isinstance(func, ast.Attribute) and func.attr == "bincount":
            for keyword in node.keywords:
                if keyword.arg == "weights" and not (
                    isinstance(keyword.value, ast.Constant) and keyword.value.value is None
                ):
                    return "np.bincount(weights=...) float64 accumulation"
        for keyword in node.keywords:
            if keyword.arg == "dtype" and _is_float_dtype(keyword.value):
                return "dtype=float array construction"
        return None

    @staticmethod
    def _guard_variables(module: ModuleContext) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and _is_exact_bound_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_exact_bound_expr(node.value) and isinstance(node.target, ast.Name):
                    names.add(node.target.id)
        return names

    def _guarded(self, module: ModuleContext, node: ast.AST, guards: Set[str]) -> bool:
        def test_mentions_guard(test: ast.AST) -> bool:
            if _is_exact_bound_expr(test):
                return True
            return any(
                isinstance(child, ast.Name) and child.id in guards
                for child in ast.walk(test)
            )

        previous = node
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.If, ast.While)) and previous in ancestor.body:
                if test_mentions_guard(ancestor.test):
                    return True
            if isinstance(ancestor, ast.IfExp) and previous is ancestor.body:
                if test_mentions_guard(ancestor.test):
                    return True
            previous = ancestor
        return False


# ---------------------------------------------------------------------------
# REP102 — layering
# ---------------------------------------------------------------------------

#: The package DAG, bottom (0) to top.  A module may import packages at its
#: own rank or below; importing a strictly higher rank is an upward import.
#: ``repro`` is the facade root (re-exports everything) and ranks above all.
LAYERS: Dict[str, int] = {
    "exceptions": 0,
    "kernels": 0,
    "theory": 0,
    "graph": 0,
    "instrumentation": 0,
    "lint": 0,
    "faults": 0,
    "io": 1,
    "matmul": 1,
    "core": 2,
    "durability": 2,
    "db": 3,
    "workloads": 3,
    "api": 4,
    "analysis": 5,
    "service": 5,
    "cli": 6,
    "repro": 7,
}


class LayeringRule(Rule):
    """REP102: enforce the module DAG; upward imports are errors.

    The DAG (see README for the diagram)::

        exceptions/kernels/theory/graph/instrumentation/lint
            -> io/matmul -> core -> db/workloads -> api
            -> analysis/service -> cli

    Checked at *module load* scope: top-level imports plus imports at class
    scope (both run at import time).  Imports inside ``if TYPE_CHECKING:``
    blocks are ignored (annotations only), as are imports inside function
    bodies — a deliberate late import is the repository's sanctioned
    cycle-breaking idiom and does not affect the import-time DAG; the
    harness's lazy facade imports rely on this.

    A repro package missing from the layer table is itself an error: new
    top-level packages must be placed in the DAG before they ship.
    """

    code = "REP102"
    slug = "layering-ok"
    description = "upward import against the package layering DAG"

    def applies_to(self, module: ModuleContext) -> bool:
        return module.package() is not None

    def check(self, module: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        package = module.package()
        rank = LAYERS.get(package)
        if rank is None:
            yield module.tree, (
                f"package {package!r} is not in the repro-lint layer table; "
                "add it to repro.lint.rules.LAYERS at its DAG position"
            )
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if self._runtime_module_scope(module, node) is False:
                continue
            for target in self._repro_targets(node):
                target_rank = LAYERS.get(target)
                if target_rank is None:
                    yield node, (
                        f"imported package {target!r} is not in the repro-lint "
                        "layer table; add it to repro.lint.rules.LAYERS"
                    )
                elif target_rank > rank:
                    yield node, (
                        f"upward import: {package!r} (layer {rank}) must not "
                        f"import {target!r} (layer {target_rank}); move the "
                        "shared code down or re-export from the upper layer"
                    )

    @staticmethod
    def _repro_targets(node: ast.Import | ast.ImportFrom) -> Iterator[str]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro":
                    yield parts[1] if len(parts) > 1 else "repro"
        else:
            if node.level:  # relative import: stays inside the same package
                return
            if node.module is None:
                return
            parts = node.module.split(".")
            if parts[0] != "repro":
                return
            if len(parts) > 1:
                yield parts[1]
            else:
                # ``from repro import X`` pulls the facade root.
                yield "repro"

    def _runtime_module_scope(self, module: ModuleContext, node: ast.AST) -> bool:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return False
            if isinstance(ancestor, ast.If) and self._is_type_checking_test(ancestor.test):
                return False
        return True

    @staticmethod
    def _is_type_checking_test(test: ast.AST) -> bool:
        if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
            return True
        if isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING":
            return True
        return False


# ---------------------------------------------------------------------------
# REP103 — hot-path label-dict ban
# ---------------------------------------------------------------------------


class HotPathRule(Rule):
    """REP103: manifest-registered hot paths may not build or walk label dicts.

    Mechanizes the ROADMAP "kill the label dictionary in the hot path" item:
    inside a hot function (named in :data:`HOT_FUNCTION_NAMES` or listed in
    :data:`HOT_PATHS`), flags

    * non-empty dict literals and dict comprehensions,
    * ``dict(...)`` / ``defaultdict(...)`` construction,
    * ``.items()`` / ``.keys()`` / ``.values()`` iteration.

    Pre-existing label-dict bookkeeping is carried in the committed baseline
    — the file *is* the measurable debt — so the rule's job is to stop new
    dict work from creeping into the per-update path while the int-indexing
    refactor burns the baseline down.  Sites that are provably not
    label-keyed (e.g. a metrics dict built once per batch) can be excused
    with ``# repro-lint: hot-ok <reason>``.
    """

    code = "REP103"
    slug = "hot-ok"
    description = "label-dict creation or iteration inside a registered hot path"

    _ITERATION_ATTRS = ("items", "keys", "values")

    def check(self, module: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        hot_functions = self._hot_functions(module)
        if not hot_functions:
            return
        for function in hot_functions:
            qualname = module.qualnames.get(function, function.name)
            for node in ast.walk(function):
                message = self._violation(node)
                if message is not None:
                    yield node, f"{message} in hot path {qualname!r}"

    def _hot_functions(self, module: ModuleContext) -> List[ast.FunctionDef]:
        path = module.display_path
        manifest: Set[str] = {
            qualname for suffix, qualname in HOT_PATHS if path.endswith(suffix)
        }
        functions: List[ast.FunctionDef] = []
        for node, qualname in module.qualnames.items():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name in HOT_FUNCTION_NAMES or qualname in manifest:
                functions.append(node)
        return functions

    def _violation(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Dict) and node.keys:
            return "dict literal"
        if isinstance(node, ast.DictComp):
            return "dict comprehension"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("dict", "defaultdict", "Counter"):
                return f"{func.id}() construction"
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._ITERATION_ATTRS
                and not node.args
                and not node.keywords
            ):
                return f".{func.attr}() dict iteration"
        return None


# ---------------------------------------------------------------------------
# REP104 — shard safety
# ---------------------------------------------------------------------------

_POOL_RECEIVER = re.compile(r"pool|executor", re.IGNORECASE)


class ShardSafetyRule(Rule):
    """REP104: callables handed to shard pools must be module-level functions.

    A :class:`~repro.matmul.sharding.ShardExecutor` process pool pickles the
    submitted callable by qualified name; lambdas, nested functions, and
    bound methods either fail to pickle or silently drag engine state across
    the process boundary.  Flags the callable argument of ``<pool>.submit``
    / ``<pool>.map`` calls (receiver name matching ``pool``/``executor``)
    when it is

    * a ``lambda``,
    * a function defined inside the enclosing function (a closure), or
    * a ``self.<method>`` / attribute reference (bound method capturing the
      instance).

    Names imported or defined at module level pass; a callable that is safe
    for a reason the pattern cannot see takes ``# repro-lint: shard-ok``.
    """

    code = "REP104"
    slug = "shard-ok"
    description = "non-module-level callable submitted to a shard pool"

    def check(self, module: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        module_level = self._module_level_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in ("submit", "map")):
                continue
            if not self._pool_receiver(func.value):
                continue
            if not node.args:
                continue
            callable_arg = node.args[0]
            problem = self._unsafe(module, node, callable_arg, module_level)
            if problem is not None:
                yield callable_arg, (
                    f"{problem} submitted to a shard pool via .{func.attr}(); "
                    "process pools pickle tasks by qualified name — use a "
                    "module-level function taking explicit arguments"
                )

    @staticmethod
    def _pool_receiver(value: ast.AST) -> bool:
        if isinstance(value, ast.Name):
            return bool(_POOL_RECEIVER.search(value.id))
        if isinstance(value, ast.Attribute):
            return bool(_POOL_RECEIVER.search(value.attr))
        if isinstance(value, ast.Call):
            # e.g. ``self._pool(kind).map(...)``
            func = value.func
            if isinstance(func, ast.Attribute):
                return bool(_POOL_RECEIVER.search(func.attr))
            if isinstance(func, ast.Name):
                return bool(_POOL_RECEIVER.search(func.id))
        return False

    @staticmethod
    def _module_level_names(module: ModuleContext) -> Set[str]:
        names: Set[str] = set()
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _unsafe(
        self,
        module: ModuleContext,
        call: ast.Call,
        argument: ast.AST,
        module_level: Set[str],
    ) -> Optional[str]:
        if isinstance(argument, ast.Lambda):
            return "lambda"
        if isinstance(argument, ast.Attribute):
            return "bound-method / attribute callable"
        if isinstance(argument, ast.Name):
            if argument.id in module_level:
                return None
            # Defined inside the enclosing function -> a closure.
            enclosing = module.enclosing_function(call)
            if enclosing is not None:
                for node in ast.walk(enclosing):
                    if (
                        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and node is not enclosing
                        and node.name == argument.id
                    ):
                        return "closure (function defined in enclosing scope)"
            return None
        return None


# ---------------------------------------------------------------------------
# REP105 — exception hygiene
# ---------------------------------------------------------------------------

_BROAD_EXCEPTION_NAMES = ("Exception", "BaseException")


class BroadExceptRule(Rule):
    """REP105: no blanket ``except Exception`` that swallows silently.

    A broad handler is allowed only when it re-raises (any ``raise`` in its
    body) — the narrowing-for-context idiom — or carries
    ``# repro-lint: broad-except-ok <reason>`` explaining why every failure
    mode really is safe to swallow (the canonical consumer is
    ``ShardExecutor.__del__``, where interpreter teardown can raise
    anything).  Bare ``except:`` and ``except BaseException`` are flagged the
    same way.
    """

    code = "REP105"
    slug = "broad-except-ok"
    description = "broad except without re-raise or pragma"

    def check(self, module: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = self._broad_label(node.type)
            if label is None:
                continue
            if any(isinstance(child, ast.Raise) for child in ast.walk(node)):
                continue
            yield node, (
                f"{label} swallows every failure; catch the concrete "
                "exception types, re-raise, or annotate with "
                "'# repro-lint: broad-except-ok <reason>'"
            )

    @staticmethod
    def _broad_label(annotation: Optional[ast.AST]) -> Optional[str]:
        if annotation is None:
            return "bare except:"

        def is_broad(expr: ast.AST) -> bool:
            if isinstance(expr, ast.Name):
                return expr.id in _BROAD_EXCEPTION_NAMES
            if isinstance(expr, ast.Attribute):
                return expr.attr in _BROAD_EXCEPTION_NAMES
            return False

        if is_broad(annotation):
            return f"except {getattr(annotation, 'id', getattr(annotation, 'attr', '?'))}"
        if isinstance(annotation, ast.Tuple) and any(is_broad(e) for e in annotation.elts):
            return "except tuple containing Exception"
        return None


#: The shipped ruleset, in code order.
DEFAULT_RULES: Sequence[Rule] = (
    ExactnessRule(),
    LayeringRule(),
    HotPathRule(),
    ShardSafetyRule(),
    BroadExceptRule(),
)
