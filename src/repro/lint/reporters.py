"""Text and JSON reporters for repro-lint runs."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.lint.baseline import BaselineSplit
from repro.lint.engine import LintResult


def render_text(
    result: LintResult,
    split: BaselineSplit,
    show_baselined: bool = False,
) -> str:
    """Human-readable report: one line per finding, then a summary block."""
    lines: List[str] = []
    for finding in split.new:
        lines.append(finding.render())
    if show_baselined:
        for finding in split.baselined:
            lines.append(f"{finding.render()} [baselined]")
    for error in result.errors:
        lines.append(f"error: {error}")
    for fingerprint in split.stale:
        lines.append(
            f"stale baseline entry {fingerprint}: finding no longer produced "
            "(run with --update-baseline to drop it)"
        )
    summary = (
        f"repro-lint: {result.files_checked} files, "
        f"{len(split.new)} new finding(s), "
        f"{len(split.baselined)} baselined, "
        f"{len(split.stale)} stale baseline entr(y/ies)"
    )
    if result.findings:
        by_rule = result.by_rule()
        breakdown = ", ".join(f"{rule}={by_rule[rule]}" for rule in sorted(by_rule))
        summary += f" [{breakdown}]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    result: LintResult,
    split: BaselineSplit,
    baseline_path: Optional[str] = None,
) -> str:
    """Machine-readable report consumed by the CI lint gate."""
    payload: Dict[str, object] = {
        "tool": "repro-lint",
        "files_checked": result.files_checked,
        "summary": {
            "new": len(split.new),
            "baselined": len(split.baselined),
            "stale_baseline": len(split.stale),
            "by_rule": result.by_rule(),
        },
        "baseline": baseline_path,
        "findings": [finding.to_dict() for finding in split.new],
        "baselined_findings": [finding.to_dict() for finding in split.baselined],
        "stale_baseline_entries": list(split.stale),
        "errors": list(result.errors),
    }
    return json.dumps(payload, indent=2)
