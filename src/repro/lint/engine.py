"""The repro-lint rule engine: AST walking, pragmas, fingerprints, baselines.

repro-lint is a purpose-built static analyzer for this repository's
*invariants* — the contracts the code states in comments but CI could not
previously enforce: integer exactness under the ``2^53`` float64 bound, the
package layering DAG, the hot-path label-dict ban, shard-pool pickling
safety, and exception hygiene.  The concrete rules live in
:mod:`repro.lint.rules`; this module owns everything rule-independent:

* :class:`ModuleContext` — one parsed source file with parent links, scope
  qualnames, and parsed pragmas;
* pragma suppression — ``# repro-lint: <slug> <reason>`` on the offending
  line, or on a comment line above it (the pragma then applies to the next
  non-comment line, so multi-line justification blocks work);
* :class:`Finding` with a *fingerprint* that is stable under unrelated edits
  (no line numbers: path + rule + enclosing scope + normalized source line +
  ordinal among identical findings);
* the committed baseline (:mod:`repro.lint.baseline`) that grandfathers
  pre-existing findings without letting new ones in.

The engine never imports the code it analyzes — everything is ``ast`` over
source text, so linting cannot execute side effects or require optional
dependencies.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Pragma syntax: ``# repro-lint: <slug> <reason>``.  The slug names the rule
#: being suppressed (its mnemonic like ``exact-ok``, or its code like
#: ``REP101``); the free-text reason is mandatory — a suppression without a
#: recorded justification is itself a finding (REP100).
PRAGMA_PATTERN = re.compile(r"#\s*repro-lint:\s*(?P<slug>[A-Za-z0-9_-]+)(?:\s+(?P<reason>\S.*))?")

#: Code used for engine-level findings about the pragmas themselves
#: (unknown slug, missing reason).  Not suppressible.
PRAGMA_RULE_CODE = "REP100"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro-lint:`` comment."""

    line: int          # line the comment sits on (1-based)
    anchor: int        # line the suppression applies to
    slug: str
    reason: str


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    scope: str
    snippet: str
    fingerprint: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "scope": self.scope,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"


class Rule:
    """Base class for repro-lint rules.

    Subclasses set ``code`` (``REP1xx``), ``slug`` (the pragma mnemonic),
    and ``description``, and implement :meth:`check` yielding
    ``(node_or_line, message)`` pairs; the engine attaches locations, scopes,
    pragma filtering, and fingerprints.
    """

    code: str = "REP000"
    slug: str = "ok"
    description: str = ""

    def applies_to(self, module: "ModuleContext") -> bool:
        """Whether this rule runs on ``module`` at all (path-based scoping)."""
        return True

    def check(self, module: "ModuleContext") -> Iterator[Tuple[ast.AST, str]]:
        raise NotImplementedError

    def matches_slug(self, slug: str) -> bool:
        lowered = slug.lower()
        return lowered == self.slug.lower() or lowered == self.code.lower()


class ModuleContext:
    """One source file, parsed once and shared by every rule."""

    def __init__(self, path: Path, display_path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.parents: Dict[ast.AST, ast.AST] = {}
        self.qualnames: Dict[ast.AST, str] = {}
        self._link(tree, qualname="")
        self.pragmas: List[Pragma] = list(self._parse_pragmas())

    # -- construction -------------------------------------------------------

    def _link(self, node: ast.AST, qualname: str) -> None:
        for child in ast.iter_child_nodes(node):
            self.parents[child] = node
            child_qualname = qualname
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                child_qualname = f"{qualname}.{child.name}" if qualname else child.name
                self.qualnames[child] = child_qualname
            self._link(child, child_qualname)

    def _parse_pragmas(self) -> Iterator[Pragma]:
        # Only real COMMENT tokens count — the pattern must not fire on pragma
        # syntax *described* inside docstrings or string literals (this very
        # engine's documentation would otherwise lint itself).
        for number, text in self._comment_tokens():
            match = PRAGMA_PATTERN.search(text)
            if match is None:
                continue
            anchor = number
            if self.lines[number - 1].lstrip().startswith("#"):
                # Comment-only pragma line: it governs the next line that
                # holds code, so a multi-line justification block between the
                # pragma and the code it excuses still counts.
                anchor = self._next_code_line(number)
            yield Pragma(
                line=number,
                anchor=anchor,
                slug=match.group("slug"),
                reason=(match.group("reason") or "").strip(),
            )

    def _comment_tokens(self) -> Iterator[Tuple[int, str]]:
        try:
            for token in tokenize.generate_tokens(io.StringIO(self.source).readline):
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.string
        except tokenize.TokenError:
            # ast.parse already succeeded, so this is unreachable in practice;
            # degrade to no pragmas rather than crash the whole run.
            return

    def _next_code_line(self, after: int) -> int:
        for number in range(after + 1, len(self.lines) + 1):
            stripped = self.lines[number - 1].strip()
            if stripped and not stripped.startswith("#"):
                return number
        return after

    # -- queries used by rules ----------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def scope_of(self, node: ast.AST) -> str:
        """Dotted qualname of the innermost enclosing def/class, or ``<module>``."""
        for ancestor in self.ancestors(node):
            name = self.qualnames.get(ancestor)
            if name is not None:
                return name
        return "<module>"

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return ancestor
        return None

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def package(self) -> Optional[str]:
        """The repro top-level package a file belongs to, inferred from its path.

        ``.../repro/core/base.py`` -> ``core``; ``.../repro/cli.py`` ->
        ``cli``; ``.../repro/__init__.py`` -> ``repro`` (the facade root).
        Returns ``None`` for files outside any ``repro`` tree (e.g. test
        fixtures) — path-scoped rules treat those as always in scope so the
        fixture corpus can exercise every rule.
        """
        parts = self.path.parts
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                remainder = parts[index + 1:]
                if not remainder or remainder == ("__init__.py",):
                    return "repro"
                first = remainder[0]
                return first[:-3] if first.endswith(".py") else first
        return None


def load_module(path: Path, display_path: str) -> ModuleContext:
    with tokenize.open(path) as handle:  # honors PEP 263 encoding declarations
        source = handle.read()
    tree = ast.parse(source, filename=str(path))
    return ModuleContext(path=path, display_path=display_path, source=source, tree=tree)


def _fingerprint(path: str, rule: str, scope: str, snippet: str, ordinal: int) -> str:
    normalized = " ".join(snippet.split())
    digest = hashlib.sha1(
        f"{path}::{rule}::{scope}::{normalized}::{ordinal}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


@dataclass
class LintResult:
    """Everything one lint run produced, before baseline filtering."""

    findings: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    files_checked: int = 0

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _display_path(path: Path, root: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return resolved.as_posix()


def run_rules(
    module: ModuleContext, rules: Sequence[Rule]
) -> Tuple[List[Finding], List[Finding]]:
    """All findings for one module: ``(active, suppressed)``.

    Pragma bookkeeping happens here: a finding whose anchor line carries a
    matching pragma *with a reason* moves to the suppressed list; a matching
    pragma without a reason, or a pragma naming no known rule, produces an
    engine finding (REP100) instead of a suppression.
    """
    raw: List[Tuple[Rule, int, int, str]] = []
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for node, message in rule.check(module):
            line = getattr(node, "lineno", 0) or 0
            column = (getattr(node, "col_offset", 0) or 0) + 1
            raw.append((rule, line, column, message))

    pragmas_by_anchor: Dict[int, List[Pragma]] = {}
    for pragma in module.pragmas:
        pragmas_by_anchor.setdefault(pragma.anchor, []).append(pragma)

    active: List[Finding] = []
    suppressed: List[Finding] = []
    ordinals: Dict[Tuple[str, str, str], int] = {}

    # Engine findings about the pragmas themselves.
    def known(slug: str) -> bool:
        return any(rule.matches_slug(slug) for rule in rules)

    for pragma in module.pragmas:
        if not known(pragma.slug):
            raw.append(
                (
                    _PragmaRule,
                    pragma.line,
                    1,
                    f"unknown repro-lint pragma slug {pragma.slug!r}",
                )
            )
        elif not pragma.reason:
            raw.append(
                (
                    _PragmaRule,
                    pragma.line,
                    1,
                    f"repro-lint pragma {pragma.slug!r} needs a reason "
                    "(# repro-lint: <slug> <why this is safe>)",
                )
            )

    for rule, line, column, message in sorted(raw, key=lambda item: (item[1], item[2])):
        code = rule.code
        # Scope lookup: find the innermost def/class whose span covers the line.
        scope = _scope_at_line(module, line)
        snippet = module.line_text(line).strip()
        key = (code, scope, " ".join(snippet.split()))
        ordinal = ordinals.get(key, 0)
        ordinals[key] = ordinal + 1
        finding = Finding(
            rule=code,
            path=module.display_path,
            line=line,
            column=column,
            message=message,
            scope=scope,
            snippet=snippet,
            fingerprint=_fingerprint(module.display_path, code, scope, snippet, ordinal),
        )
        suppression = None
        if rule is not _PragmaRule:
            for pragma in pragmas_by_anchor.get(line, ()):  # same line or block above
                if rule.matches_slug(pragma.slug) and pragma.reason:
                    suppression = pragma
                    break
        if suppression is not None:
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed


def _scope_at_line(module: ModuleContext, line: int) -> str:
    best = "<module>"
    best_span = None
    for node, qualname in module.qualnames.items():
        start = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if start is None or end is None or not (start <= line <= end):
            continue
        span = end - start
        if best_span is None or span < best_span:
            best, best_span = qualname, span
    return best


class _PragmaRuleType(Rule):
    code = PRAGMA_RULE_CODE
    slug = "pragma"
    description = "repro-lint pragma must name a known rule and carry a reason"

    def check(self, module: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        return iter(())


_PragmaRule = _PragmaRuleType()


def lint_paths(
    paths: Sequence[Path | str],
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> LintResult:
    """Run ``rules`` over every python file under ``paths``.

    ``root`` anchors the display paths (and therefore the baseline
    fingerprints); it defaults to the current working directory, so runs from
    the repository root produce repository-relative, baseline-stable paths.
    Unparsable files are reported in ``errors``, not raised — a syntax error
    in one file must not hide findings in the rest of the tree.
    """
    anchor = root if root is not None else Path.cwd()
    result = LintResult()
    for path in iter_python_files([Path(p) for p in paths]):
        display = _display_path(path, anchor)
        try:
            module = load_module(path, display)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            result.errors.append(f"{display}: {error}")
            continue
        result.files_checked += 1
        active, _ = run_rules(module, rules)
        result.findings.extend(active)
    result.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return result
