"""The ``repro-4cycles lint`` subcommand.

Exit codes:

* ``0`` — no new findings, baseline in sync (when checked), no parse errors;
* ``1`` — new (non-baselined) findings, or ``--check-baseline`` found the
  baseline out of sync with the tree;
* ``2`` — operational failure (unreadable baseline, parse errors in linted
  files).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    load_baseline,
    save_baseline,
)
from repro.lint.engine import lint_paths
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import DEFAULT_RULES


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint options on ``parser`` (shared with the main CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file; report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to exactly the current findings and exit 0",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="also fail (exit 1) when the baseline holds stale entries",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="include baselined findings in the text report",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this file as well as stdout",
    )


def run_lint(arguments: argparse.Namespace) -> int:
    baseline_path = Path(arguments.baseline)
    if arguments.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError) as error:
            print(f"repro-lint: cannot read baseline: {error}", file=sys.stderr)
            return 2

    result = lint_paths([Path(p) for p in arguments.paths], DEFAULT_RULES)

    if arguments.update_baseline:
        save_baseline(Baseline.from_findings(result.findings), baseline_path)
        print(
            f"repro-lint: baseline rewritten with {len(result.findings)} "
            f"finding(s) at {baseline_path}"
        )
        return 0 if not result.errors else 2

    split = baseline.split(result.findings)

    if arguments.format == "json":
        report = render_json(
            result,
            split,
            baseline_path=None if arguments.no_baseline else str(baseline_path),
        )
    else:
        report = render_text(result, split, show_baselined=arguments.show_baselined)
    print(report)
    if arguments.output:
        output_path = Path(arguments.output)
        output_path.parent.mkdir(parents=True, exist_ok=True)
        output_path.write_text(report + "\n", encoding="utf-8")

    if result.errors:
        return 2
    if split.new:
        return 1
    if arguments.check_baseline and split.stale:
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="static analyzer for this repository's exactness, "
        "layering, hot-path, and shard-safety invariants",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
