"""The committed findings baseline: grandfather old debt, reject new debt.

A baseline file maps finding *fingerprints* (line-number independent, see
:mod:`repro.lint.engine`) to a short record of what was accepted.  The lint
gate then fails only on findings whose fingerprint is not baselined —
pre-existing debt (today: the REP103 label-dict bookkeeping in the hot
counters) stays visible and counted without blocking CI, while any *new*
violation fails immediately.

The file is committed at ``src/repro/lint/baseline.json`` and is meant to
shrink: ``--check-baseline`` fails when the file lists fingerprints the tree
no longer produces, so fixing a baselined finding forces the baseline entry
to be deleted in the same PR (via ``--update-baseline``), keeping the debt
ledger honest in both directions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.engine import Finding

#: Default location of the committed baseline, relative to the repo root.
DEFAULT_BASELINE = Path("src/repro/lint/baseline.json")

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """The set of grandfathered finding fingerprints."""

    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def split(self, findings: Sequence[Finding]) -> "BaselineSplit":
        """Partition ``findings`` into new vs baselined, and find stale entries."""
        new: List[Finding] = []
        matched: List[Finding] = []
        seen = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                matched.append(finding)
                seen.add(finding.fingerprint)
            else:
                new.append(finding)
        stale = sorted(fp for fp in self.entries if fp not in seen)
        return BaselineSplit(new=new, baselined=matched, stale=stale)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        entries: Dict[str, Dict[str, object]] = {}
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
            entries[finding.fingerprint] = {
                "rule": finding.rule,
                "path": finding.path,
                "scope": finding.scope,
                "snippet": finding.snippet,
            }
        return cls(entries=entries)


@dataclass
class BaselineSplit:
    """Result of checking a lint run against a baseline."""

    new: List[Finding]
    baselined: List[Finding]
    stale: List[str]   # fingerprints in the baseline the tree no longer produces


def load_baseline(path: Path) -> Baseline:
    if not path.exists():
        return Baseline()
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path}: not a repro-lint baseline file")
    return Baseline(entries=dict(payload["entries"]))


def save_baseline(baseline: Baseline, path: Path) -> None:
    payload = {
        "version": _FORMAT_VERSION,
        "tool": "repro-lint",
        "entries": {fp: baseline.entries[fp] for fp in sorted(baseline.entries)},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
