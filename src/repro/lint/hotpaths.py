"""The hot-path manifest consumed by rule REP103.

The ROADMAP item "kill the label dictionary in the hot path" needs a
mechanical definition of *hot path* to make measurable progress against.
This manifest is that definition: the per-update entry points and batch
kernels below are the functions whose per-call interpreter work dominates
E10/E11 throughput, so creating or iterating label-keyed dicts inside them
is flagged (REP103) and may only exist as a baselined, shrinking debt.

Two mechanisms register a function as hot:

* by *name* — any function named in :data:`HOT_FUNCTION_NAMES` is hot in
  every file (all ``_batch_hook`` implementations, wherever a new counter
  adds one);
* by *manifest entry* — ``(path suffix, dotted qualname)`` pairs in
  :data:`HOT_PATHS` pin specific per-update methods.

Removing an entry here is only legitimate when the function no longer
exists or no longer sits on the update path; making the rule pass by
deleting its manifest is exactly the silent regression the rule exists to
catch, so treat edits to this file as reviewable API changes.
"""

from __future__ import annotations

from typing import Tuple

#: Function names that are hot wherever they appear.
HOT_FUNCTION_NAMES: Tuple[str, ...] = ("_batch_hook",)

#: ``(path suffix, qualname)`` pairs for the per-update hot paths.  The path
#: suffix is matched against the end of the linted file's display path.
HOT_PATHS: Tuple[Tuple[str, str], ...] = (
    # The template method every counter's single-update path runs through.
    ("repro/core/base.py", "DynamicFourCycleCounter.apply"),
    # Per-update structure maintenance in each counter.
    ("repro/core/base.py", "DynamicFourCycleCounter._apply_structure_delta"),
    ("repro/core/wedge_counter.py", "WedgeCounter._apply_structure_delta"),
    ("repro/core/wedge_counter.py", "WedgeCounter._three_paths"),
    ("repro/core/wedge_counter.py", "WedgeCounter._apply_incremental_delta"),
    ("repro/core/hhh22.py", "HHH22Counter._apply_structure_delta"),
    ("repro/core/oracles.py", "OracleBackedCounter._apply_structure_delta"),
    # The IVM view's tuple-update path (the db-scenario twin of apply()).
    ("repro/db/ivm.py", "CyclicJoinCountView.apply"),
)
