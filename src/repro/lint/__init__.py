"""repro-lint: an AST-based invariant analyzer for this repository.

Five rules, each guarding one contract the codebase depends on:

========  ================  =====================================================
code      pragma slug       invariant
========  ================  =====================================================
REP101    ``exact-ok``      float casts on count/index arrays need a 2^53 guard
REP102    ``layering-ok``   the package DAG admits no upward imports
REP103    ``hot-ok``        registered hot paths build/iterate no label dicts
REP104    ``shard-ok``      shard-pool tasks are module-level (picklable)
REP105    ``broad-except-ok``  no silent blanket ``except Exception``
========  ================  =====================================================

Suppress a finding in place with ``# repro-lint: <slug> <reason>`` on the
offending line or a comment line directly above it; the reason is mandatory
(REP100 flags pragmas without one).  Pre-existing debt lives in the committed
baseline (``src/repro/lint/baseline.json``) — see :mod:`repro.lint.baseline`.

Programmatic use (what the tests do)::

    from repro.lint import DEFAULT_RULES, lint_paths
    result = lint_paths(["src"], DEFAULT_RULES)
    assert not result.findings
"""

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    BaselineSplit,
    load_baseline,
    save_baseline,
)
from repro.lint.engine import (
    Finding,
    LintResult,
    ModuleContext,
    Pragma,
    Rule,
    lint_paths,
    load_module,
    run_rules,
)
from repro.lint.hotpaths import HOT_FUNCTION_NAMES, HOT_PATHS
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import (
    DEFAULT_RULES,
    LAYERS,
    BroadExceptRule,
    ExactnessRule,
    HotPathRule,
    LayeringRule,
    ShardSafetyRule,
)

__all__ = [
    "Baseline",
    "BaselineSplit",
    "BroadExceptRule",
    "DEFAULT_BASELINE",
    "DEFAULT_RULES",
    "ExactnessRule",
    "Finding",
    "HOT_FUNCTION_NAMES",
    "HOT_PATHS",
    "HotPathRule",
    "LAYERS",
    "LayeringRule",
    "LintResult",
    "ModuleContext",
    "Pragma",
    "Rule",
    "ShardSafetyRule",
    "lint_paths",
    "load_baseline",
    "load_module",
    "render_json",
    "render_text",
    "run_rules",
    "save_baseline",
]
