"""The main algorithm (Sections 4–7): phases, degree classes, and FMM.

:class:`AssadiShahThreePathOracle` layers the paper's degree-class machinery on
top of the phase + FMM oracle:

* ``L2``/``L3`` vertices are classified **dense** or **sparse** by their
  combined degree, with a factor-two hysteresis band so a vertex only changes
  class after its degree has doubled or halved (the Section 7 overlap regions).
* The Eq. (12) structures ``A^{*S} · B^{S*}`` and ``B^{*S} · C^{S*}`` (wedge
  counts through sparse middle vertices) are maintained *on the fly* at every
  update, exactly as Claim 5.3 describes, and patched when a vertex changes
  class (the Section 7 Type-2 transitions).
* Queries are routed by the endpoint and middle classes as in Section 5.3 /
  Algorithm 3: paths through a dense middle are found by iterating the (few)
  dense vertices of that layer; paths through two sparse middles are found by
  scanning the neighborhood of a non-high endpoint and reading the sparse-wedge
  structures; and when **both** endpoints are high the answer comes from the
  phase decomposition (old-phase FMM products plus the new-phase deltas).

Fidelity note.  The paper answers the high/high sparse-sparse case from six
explicitly stored old/new combinations (Eq. (15)) plus a warm-up-algorithm
subroutine, so that the new-phase ``B`` edges are never scanned at query time.
This implementation keeps the identical phase architecture and class routing
but answers that one case from the exact phase decomposition (which does scan
the new-phase deltas).  The result is exact in every case; only the worst-case
exponent of high/high queries is weaker than the paper's.  The warm-up
algorithm itself is implemented and tested separately in
:mod:`repro.core.warmup`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Set

import numpy as np

from repro.core.oracles import OracleBackedCounter, PhaseThreePathOracle
from repro.instrumentation.cost_model import CostModel
from repro.matmul.engine import CountMatrix, CsrMatrix, exact_integer_matmul
from repro.theory.parameters import solve_main_parameters

if TYPE_CHECKING:  # typing only; avoids a runtime import cycle
    from repro.graph.dynamic_graph import DynamicGraph

Vertex = Hashable


class AssadiShahThreePathOracle(PhaseThreePathOracle):
    """Phase oracle plus degree classes and sparse-wedge structures (Eq. (12))."""

    name = "assadi-shah-oracle"

    def __init__(
        self,
        phase_length: Optional[int] = None,
        eps: Optional[float] = None,
        delta: Optional[float] = None,
        min_phase_length: int = 16,
        cost: Optional[CostModel] = None,
    ) -> None:
        parameters = solve_main_parameters()
        self._eps = eps if eps is not None else parameters.eps
        super().__init__(
            phase_length=phase_length,
            delta=delta if delta is not None else parameters.delta,
            min_phase_length=min_phase_length,
            cost=cost,
        )
        #: Eq. (12): wedges L1 -> L3 through sparse L2 vertices.
        self._wedges_a_sparse_b = CountMatrix()
        #: Eq. (12): wedges L2 -> L4 through sparse L3 vertices.
        self._wedges_b_sparse_c = CountMatrix()
        self._dense_l2: Set[Vertex] = set()
        self._dense_l3: Set[Vertex] = set()
        self._class_reference_m = 1
        # While a batch is in flight, middle vertices touched by updates are
        # collected here and their class transitions are checked once at the
        # boundary (None = not batching).
        self._deferred_l2: Optional[Set[Vertex]] = None
        self._deferred_l3: Optional[Set[Vertex]] = None

    # -- class machinery ----------------------------------------------------------
    @property
    def dense_l2(self) -> Set[Vertex]:
        """Currently dense vertices of layer L2 (read-only use only)."""
        return self._dense_l2

    @property
    def dense_l3(self) -> Set[Vertex]:
        """Currently dense vertices of layer L3 (read-only use only)."""
        return self._dense_l3

    @property
    def sparse_wedges_ab(self) -> CountMatrix:
        return self._wedges_a_sparse_b

    @property
    def sparse_wedges_bc(self) -> CountMatrix:
        return self._wedges_b_sparse_c

    def _dense_threshold(self) -> float:
        """The base dense/sparse degree threshold ``m^{2/3 - eps}``."""
        m = max(self._class_reference_m, 1)
        return max(2.0, float(m) ** (2.0 / 3.0 - self._eps))

    def _high_threshold(self) -> float:
        """The high-endpoint degree threshold ``m^{2/3 - eps}``."""
        m = max(self.num_edges, 1)
        return max(2.0, float(m) ** (2.0 / 3.0 - self._eps))

    def _combined_degree_l2(self, x: Vertex) -> int:
        """Combined degree of an L2 vertex in ``A`` and ``B`` (Section 4)."""
        a_side = self.relation(1).backward.get(x, _EMPTY_SET)
        b_side = self.relation(2).forward.get(x, _EMPTY_SET)
        return len(a_side) + len(b_side)

    def _combined_degree_l3(self, y: Vertex) -> int:
        """Combined degree of an L3 vertex in ``B`` and ``C``."""
        b_side = self.relation(2).backward.get(y, _EMPTY_SET)
        c_side = self.relation(3).forward.get(y, _EMPTY_SET)
        return len(b_side) + len(c_side)

    def is_high_left(self, u: Vertex) -> bool:
        """Whether an L1 endpoint is high (classified by its degree in ``A``)."""
        return len(self.relation(1).forward.get(u, _EMPTY_SET)) >= self._high_threshold()

    def is_high_right(self, v: Vertex) -> bool:
        """Whether an L4 endpoint is high (classified by its degree in ``C``)."""
        return len(self.relation(3).backward.get(v, _EMPTY_SET)) >= self._high_threshold()

    # -- maintenance -----------------------------------------------------------------
    def _after_relation_update(self, position: int, left: Vertex, right: Vertex, sign: int) -> None:
        self._maintain_sparse_wedges(position, left, right, sign)
        super()._after_relation_update(position, left, right, sign)
        if self._deferred_l2 is not None and self._deferred_l3 is not None:
            # Batching: record the touched middles, check them at the boundary.
            if position == 1:
                self._deferred_l2.add(right)
            elif position == 2:
                self._deferred_l2.add(left)
                self._deferred_l3.add(right)
            else:
                self._deferred_l3.add(left)
            return
        self._refresh_class_thresholds()
        self._observe_classes(position, left, right)

    # -- batch deferral ---------------------------------------------------------------
    def begin_batch(self) -> None:
        """Defer both phase rollovers and dense/sparse class transitions.

        The Eq. (12) structures stay consistent with the *current* dense sets
        at every update (``_maintain_sparse_wedges`` branches on membership),
        and every query split is exact for any class assignment — hysteresis
        already lets classes lag behind degrees.  Deferring the transition
        checks to the batch boundary therefore preserves exactness.
        """
        super().begin_batch()
        if self._deferred_l2 is None:
            self._deferred_l2 = set()
            self._deferred_l3 = set()

    def end_batch(self) -> None:
        touched_l2 = self._deferred_l2 or ()
        touched_l3 = self._deferred_l3 or ()
        self._deferred_l2 = None
        self._deferred_l3 = None
        self._refresh_class_thresholds()
        for x in touched_l2:
            self._observe_l2(x)
        for y in touched_l3:
            self._observe_l3(y)
        super().end_batch()

    def rebuild_from_mirrored_graph(
        self,
        graph: "DynamicGraph",
        matrix: np.ndarray,
        labels: List[Vertex],
        square: Optional[np.ndarray] = None,
    ) -> None:
        """Bulk mirror rebuild: phase sync plus vectorized class structures.

        After the phase-oracle rebuild, the degree classes are recomputed from
        the interned degree vector (in the mirrored reduction every middle
        layer's combined degree is ``2 deg``) and the Eq. (12) sparse-wedge
        structures are rebuilt as one masked dense product
        ``A . diag(sparse) . B`` — the same quantity Claim 5.3 maintains tuple
        by tuple — instead of replaying per-update neighborhood scans.
        """
        super().rebuild_from_mirrored_graph(graph, matrix, labels, square)
        sparse_mask = self._recompute_mirrored_classes(2 * matrix.sum(axis=1), labels)
        # A . diag(sparse) . B with A = B = adjacency; the L2 and L3 sparse
        # sets coincide in the mirrored reduction, so one product serves both
        # structures (as independent copies — they are mutated separately).
        wedges = exact_integer_matmul(matrix * sparse_mask, matrix)
        self._wedges_a_sparse_b = CountMatrix.from_dense(wedges, labels)
        self._wedges_b_sparse_c = self._wedges_a_sparse_b.copy()
        n = matrix.shape[0]
        self.cost.charge("batch_rebuild", n * n * n)

    def rebuild_from_mirrored_csr(
        self,
        graph: "DynamicGraph",
        adjacency: CsrMatrix,
        labels: List[Vertex],
        square: CsrMatrix,
    ) -> None:
        """Sparse bulk rebuild: phase sync plus SpGEMM class structures.

        Identical quantities to :meth:`rebuild_from_mirrored_graph` — the
        Eq. (12) masked product becomes a column-filtered SpGEMM
        ``(A . diag(sparse)) . A`` — with no dense ``n x n`` materialized.
        """
        super().rebuild_from_mirrored_csr(graph, adjacency, labels, square)
        sparse_mask = self._recompute_mirrored_classes(2 * adjacency.row_lengths(), labels)
        wedges, work = self._spgemm(adjacency.filter_columns(sparse_mask), adjacency)
        self._wedges_a_sparse_b = CountMatrix.from_csr(wedges, labels)
        self._wedges_b_sparse_c = self._wedges_a_sparse_b.copy()
        self.cost.charge("batch_rebuild", work)

    def _recompute_mirrored_classes(
        self, combined_degrees: np.ndarray, labels: List[Vertex]
    ) -> np.ndarray:
        """Reset the dense L2/L3 sets from the mirrored combined degrees.

        Returns the sparse-vertex indicator the Eq. (12) products mask with.
        """
        m = max(self.num_edges, 1)
        self._class_reference_m = m
        threshold = self._dense_threshold()
        dense_mask = combined_degrees >= 2.0 * threshold
        dense_vertices = {labels[i] for i in np.nonzero(dense_mask)[0]}
        self._dense_l2 = dense_vertices
        self._dense_l3 = set(dense_vertices)
        return ~dense_mask

    def _maintain_sparse_wedges(self, position: int, left: Vertex, right: Vertex, sign: int) -> None:
        """On-the-fly maintenance of the Eq. (12) structures (Claim 5.3)."""
        if position == 1:
            # A update (u, x): wedges u - x - y for every B-neighbor y of a sparse x.
            u, x = left, right
            if x not in self._dense_l2:
                for y in self.relation(2).forward.get(x, _EMPTY_SET):
                    self.cost.charge("structure_update")
                    self._wedges_a_sparse_b.add(u, y, sign)
        elif position == 2:
            # B update (x, y): contributes to both structures.
            x, y = left, right
            if x not in self._dense_l2:
                for u in self.relation(1).backward.get(x, _EMPTY_SET):
                    self.cost.charge("structure_update")
                    self._wedges_a_sparse_b.add(u, y, sign)
            if y not in self._dense_l3:
                for v in self.relation(3).forward.get(y, _EMPTY_SET):
                    self.cost.charge("structure_update")
                    self._wedges_b_sparse_c.add(x, v, sign)
        else:
            # C update (y, v): wedges x - y - v for every B-neighbor x of a sparse y.
            y, v = left, right
            if y not in self._dense_l3:
                for x in self.relation(2).backward.get(y, _EMPTY_SET):
                    self.cost.charge("structure_update")
                    self._wedges_b_sparse_c.add(x, v, sign)

    def _refresh_class_thresholds(self) -> None:
        m = max(self.num_edges, 1)
        if m > 2 * self._class_reference_m or 2 * m < self._class_reference_m:
            self._class_reference_m = m

    def _observe_classes(self, position: int, left: Vertex, right: Vertex) -> None:
        """Check the affected middle-layer vertices for class transitions."""
        if position == 1:
            self._observe_l2(right)
        elif position == 2:
            self._observe_l2(left)
            self._observe_l3(right)
        else:
            self._observe_l3(left)

    def _observe_l2(self, x: Vertex) -> None:
        degree = self._combined_degree_l2(x)
        threshold = self._dense_threshold()
        if x in self._dense_l2:
            if degree < threshold:
                self._dense_l2.discard(x)
                self._patch_l2_transition(x, sign=+1)
        elif degree >= 2.0 * threshold:
            self._patch_l2_transition(x, sign=-1)
            self._dense_l2.add(x)

    def _observe_l3(self, y: Vertex) -> None:
        degree = self._combined_degree_l3(y)
        threshold = self._dense_threshold()
        if y in self._dense_l3:
            if degree < threshold:
                self._dense_l3.discard(y)
                self._patch_l3_transition(y, sign=+1)
        elif degree >= 2.0 * threshold:
            self._patch_l3_transition(y, sign=-1)
            self._dense_l3.add(y)

    def _patch_l2_transition(self, x: Vertex, sign: int) -> None:
        """Add (``sign=+1``) or remove (``-1``) every wedge through ``x`` from
        the ``A^{*S} · B^{S*}`` structure when ``x`` changes class."""
        a_side = self.relation(1).backward.get(x, _EMPTY_SET)
        b_side = self.relation(2).forward.get(x, _EMPTY_SET)
        for u in a_side:
            for y in b_side:
                self.cost.charge("rebuild_ops")
                self._wedges_a_sparse_b.add(u, y, sign)

    def _patch_l3_transition(self, y: Vertex, sign: int) -> None:
        b_side = self.relation(2).backward.get(y, _EMPTY_SET)
        c_side = self.relation(3).forward.get(y, _EMPTY_SET)
        for x in b_side:
            for v in c_side:
                self.cost.charge("rebuild_ops")
                self._wedges_b_sparse_c.add(x, v, sign)

    # -- query -------------------------------------------------------------------------
    def count_three_paths(self, u: Vertex, v: Vertex) -> int:
        if self.is_high_left(u) and self.is_high_right(v):
            # The hard case of Claim 5.8: both endpoints high.  The paper
            # resolves the sparse-sparse part from the Eq. (15) structures and
            # the warm-up subroutine; we take the exact phase decomposition.
            self.cost.charge("query_ops")
            return super().count_three_paths(u, v)
        return self._count_by_middle_classes(u, v)

    def _count_by_middle_classes(self, u: Vertex, v: Vertex) -> int:
        """Exact class-split query of Claims 5.8/5.9 (at least one non-high endpoint)."""
        a_forward = self.relation(1).forward.get(u, _EMPTY_SET)
        c_backward = self.relation(3).backward.get(v, _EMPTY_SET)
        b_forward = self.relation(2).forward
        c_forward = self.relation(3).forward
        total = 0
        # Dense L2 middle: split the L3 middle into sparse (via B^{*S} C^{S*})
        # and dense (explicit pair enumeration).
        for x in self._dense_l2:
            self.cost.charge("adjacency_probe")
            if x not in a_forward:
                continue
            self.cost.charge("structure_lookup")
            total += self._wedges_b_sparse_c.get(x, v)
            x_b = b_forward.get(x, _EMPTY_SET)
            for y in self._dense_l3:
                self.cost.charge("adjacency_probe", 2)
                if y in x_b and v in c_forward.get(y, _EMPTY_SET):
                    total += 1
        # Sparse L2 middle with dense L3 middle: iterate the dense L3 vertices
        # adjacent to v and read the A^{*S} B^{S*} wedges.
        for y in self._dense_l3:
            self.cost.charge("adjacency_probe")
            if v in c_forward.get(y, _EMPTY_SET):
                self.cost.charge("structure_lookup")
                total += self._wedges_a_sparse_b.get(u, y)
        # Sparse-sparse: scan the non-high endpoint's neighborhood.
        if not self.is_high_left(u) and (
            self.is_high_right(v) or len(a_forward) <= len(c_backward)
        ):
            for x in a_forward:
                self.cost.charge("structure_lookup")
                if x not in self._dense_l2:
                    total += self._wedges_b_sparse_c.get(x, v)
        else:
            for y in c_backward:
                self.cost.charge("structure_lookup")
                if y not in self._dense_l3:
                    total += self._wedges_a_sparse_b.get(u, y)
        return total


class AssadiShahCounter(OracleBackedCounter):
    """General-graph 4-cycle counter using the main algorithm's oracle."""

    name = "assadi-shah"

    def __init__(
        self,
        phase_length: Optional[int] = None,
        eps: Optional[float] = None,
        delta: Optional[float] = None,
        min_phase_length: int = 16,
        record_metrics: bool = False,
        interned: bool = True,
        backend: str = "auto",
        workers: int = 1,
        shard_policy: str = "auto",
        block_entries: Optional[int] = None,
    ) -> None:
        oracle = AssadiShahThreePathOracle(
            phase_length=phase_length,
            eps=eps,
            delta=delta,
            min_phase_length=min_phase_length,
        )
        super().__init__(
            oracle=oracle,
            record_metrics=record_metrics,
            interned=interned,
            backend=backend,
            workers=workers,
            shard_policy=shard_policy,
            block_entries=block_entries,
        )

    @property
    def main_oracle(self) -> AssadiShahThreePathOracle:
        oracle = self.oracle
        assert isinstance(oracle, AssadiShahThreePathOracle)
        return oracle

    @property
    def phases_completed(self) -> int:
        return self.main_oracle.phases_completed


def expected_update_exponent(eps: Optional[float] = None) -> float:
    """The theoretical worst-case update exponent ``2/3 - eps`` of Theorem 1."""
    if eps is None:
        eps = solve_main_parameters().eps
    return 2.0 / 3.0 - eps


def expected_phase_length(m: int, delta: Optional[float] = None) -> int:
    """The theoretical phase length ``m^{1 - delta}`` of Section 5.1."""
    if delta is None:
        delta = solve_main_parameters().delta
    return max(1, int(math.ceil(float(max(m, 1)) ** (1.0 - delta))))


#: Shared immutable empty set.
_EMPTY_SET: frozenset = frozenset()
