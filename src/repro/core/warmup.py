"""The warm-up algorithm of Section 3: ``A`` and ``C`` fixed, updates in ``B``.

The warm-up algorithm assumes (Assumption 3) that only the middle relation
``B`` changes.  Updates to ``B`` are grouped into *chunks* of (roughly)
``m^{2/3 - eps1}`` updates.  The two most recent chunks are evaluated lazily at
query time (a linear scan of their signed edges), while older chunks are folded
into aggregate data structures computed with (rectangular) fast matrix
multiplication when a chunk is sealed:

* ``W_AB = A · B_old``  — wedge counts from ``L1`` to ``L3``;
* ``W_BC = B_old · C``  — wedge counts from ``L2`` to ``L4``;
* ``P_HH = A^{H*} · B_old · C^{*H}`` — 3-path counts stored explicitly for
  pairs of *high* endpoints (the paper's Eq. (1) structure), because neither
  endpoint's neighborhood can be scanned within the time bound.

Queries route exactly as in Lemma 3.8: high/high pairs read ``P_HH``;
otherwise the endpoint with the smaller (non-high) degree is scanned and the
opposite wedge table is used.  Deleting an edge that was inserted in an older
chunk simply appears as a *negative edge* in the current chunk (the remark at
the end of Section 3.3); the signed arithmetic makes the aggregates cancel.

Fidelity note: the paper additionally splits the per-chunk structures by the
endpoint classes (``H``/``M``/``L``) and by per-chunk density (``D``/``S``) so
that every individual structure fits the ``O(m^{2/3-eps1})`` update budget; we
fold whole chunks with one (fast) matrix product instead, which preserves the
chunk/FMM architecture and exactness while keeping the bookkeeping tractable.
The per-class machinery that the split exists for is exercised by
:mod:`repro.core.assadi_shah`.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.oracles import ThreePathOracle
from repro.exceptions import ConfigurationError, InvalidUpdateError
from repro.instrumentation.cost_model import CostModel
from repro.matmul.engine import CountMatrix, MatmulEngine
from repro.matmul.rectangular import restrict
from repro.theory.parameters import solve_warmup_parameters

Vertex = Hashable


class WarmupThreePathOracle(ThreePathOracle):
    """Section 3 oracle: fixed ``A`` and ``C``, chunked dynamic ``B``."""

    name = "warmup-oracle"

    def __init__(
        self,
        a_edges: Iterable[Tuple[Vertex, Vertex]],
        c_edges: Iterable[Tuple[Vertex, Vertex]],
        chunk_size: Optional[int] = None,
        eps1: Optional[float] = None,
        high_threshold: Optional[float] = None,
        cost: Optional[CostModel] = None,
    ) -> None:
        super().__init__(cost=cost)
        for left, right in a_edges:
            self.relation(1).apply(left, right, +1)
        for left, right in c_edges:
            self.relation(3).apply(left, right, +1)
        fixed_m = max(self.relation(1).size + self.relation(3).size, 1)
        if eps1 is None:
            eps1 = solve_warmup_parameters(eps=0.0098109).eps1
        self._eps1 = eps1
        if chunk_size is None:
            chunk_size = max(4, int(math.ceil(float(fixed_m) ** (2.0 / 3.0 - eps1))))
        if chunk_size <= 0:
            raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
        self._chunk_size = chunk_size
        if high_threshold is None:
            high_threshold = float(fixed_m) ** (2.0 / 3.0 - eps1)
        self._high_threshold = high_threshold
        # Endpoint classes are fixed because A and C are fixed (Section 7 notes
        # the warm-up algorithm has no class transitions).
        self._high_left: Set[Vertex] = {
            vertex
            for vertex, neighbors in self.relation(1).forward.items()
            if len(neighbors) >= high_threshold
        }
        self._high_right: Set[Vertex] = {
            vertex
            for vertex, neighbors in self.relation(3).backward.items()
            if len(neighbors) >= high_threshold
        }
        # Cached fixed matrices for the chunk folds.
        self._matrix_a = self.relation(1).to_count_matrix()
        self._matrix_c = self.relation(3).to_count_matrix()
        self._matrix_a_high = restrict(self._matrix_a, rows=self._high_left)
        self._matrix_c_high = restrict(self._matrix_c, columns=self._high_right)
        self._engine = MatmulEngine()
        # Aggregated structures over the old (folded) chunks.
        self._wedges_ab = CountMatrix()
        self._wedges_bc = CountMatrix()
        self._paths_hh = CountMatrix()
        self._b_old: Dict[Tuple[Vertex, Vertex], int] = {}
        # The two most recent chunks, evaluated lazily.
        self._previous_chunk: List[Tuple[Vertex, Vertex, int]] = []
        self._current_chunk: List[Tuple[Vertex, Vertex, int]] = []
        self._chunks_sealed = 0

    # -- introspection -----------------------------------------------------------
    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    @property
    def chunks_sealed(self) -> int:
        return self._chunks_sealed

    @property
    def high_threshold(self) -> float:
        return self._high_threshold

    def is_high_left(self, vertex: Vertex) -> bool:
        return vertex in self._high_left

    def is_high_right(self, vertex: Vertex) -> bool:
        return vertex in self._high_right

    # -- updates -------------------------------------------------------------------
    def _before_relation_update(self, position: int, left: Vertex, right: Vertex, sign: int) -> None:
        if position != 2:
            raise InvalidUpdateError(
                "the warm-up oracle only accepts updates to the middle relation B "
                "(Assumption 3: A and C are fixed)"
            )

    def _after_relation_update(self, position: int, left: Vertex, right: Vertex, sign: int) -> None:
        self.cost.charge("structure_update")
        self._current_chunk.append((left, right, sign))
        if len(self._current_chunk) >= self._chunk_size:
            self._seal_chunk()

    def _seal_chunk(self) -> None:
        """Fold the *previous* chunk into the aggregates and rotate chunks.

        While the freshly sealed chunk was being filled, the previous one was
        evaluated lazily; its aggregates are computed now (in the paper this
        work is spread over the chunk that just finished).
        """
        if self._previous_chunk:
            self._fold_chunk(self._previous_chunk)
        self._previous_chunk = self._current_chunk
        self._current_chunk = []
        self._chunks_sealed += 1

    def _fold_chunk(self, chunk: List[Tuple[Vertex, Vertex, int]]) -> None:
        chunk_matrix = CountMatrix()
        for left, right, sign in chunk:
            chunk_matrix.add(left, right, sign)
            key = (left, right)
            value = self._b_old.get(key, 0) + sign
            if value == 0:
                self._b_old.pop(key, None)
            else:
                self._b_old[key] = value
        if not chunk_matrix:
            return
        product_ab = self._engine.multiply(self._matrix_a, chunk_matrix, backend="auto")
        product_bc = self._engine.multiply(chunk_matrix, self._matrix_c, backend="auto")
        product_ah_b = self._engine.multiply(self._matrix_a_high, chunk_matrix, backend="auto")
        product_hh = self._engine.multiply(product_ah_b, self._matrix_c_high, backend="auto")
        self.cost.charge(
            "matmul_ops",
            product_ab.nnz + product_bc.nnz + product_hh.nnz,
        )
        self._wedges_ab.add_matrix(product_ab)
        self._wedges_bc.add_matrix(product_bc)
        self._paths_hh.add_matrix(product_hh)

    # -- query ------------------------------------------------------------------------
    def count_three_paths(self, u: Vertex, v: Vertex) -> int:
        total = self._lazy_recent_paths(u, v)
        total += self._old_paths(u, v)
        return total

    def _lazy_recent_paths(self, u: Vertex, v: Vertex) -> int:
        """Paths whose B edge lies in the two most recent chunks (lazy scan)."""
        a_forward = self.relation(1).forward.get(u, _EMPTY_SET)
        c_backward = self.relation(3).backward.get(v, _EMPTY_SET)
        total = 0
        for chunk in (self._previous_chunk, self._current_chunk):
            for left, right, sign in chunk:
                self.cost.charge("adjacency_probe")
                if left in a_forward and right in c_backward:
                    total += sign
        return total

    def _old_paths(self, u: Vertex, v: Vertex) -> int:
        """Paths whose B edge lies in an already-folded chunk."""
        u_high = u in self._high_left
        v_high = v in self._high_right
        if u_high and v_high:
            self.cost.charge("structure_lookup")
            return self._paths_hh.get(u, v)
        total = 0
        if not v_high:
            for y in self.relation(3).backward.get(v, _EMPTY_SET):
                self.cost.charge("structure_lookup")
                total += self._wedges_ab.get(u, y)
            return total
        for x in self.relation(1).forward.get(u, _EMPTY_SET):
            self.cost.charge("structure_lookup")
            total += self._wedges_bc.get(x, v)
        return total


#: Shared immutable empty set.
_EMPTY_SET: frozenset = frozenset()
