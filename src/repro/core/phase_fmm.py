"""General-graph counter built on the phase + FMM oracle.

:class:`PhaseFMMCounter` is :class:`~repro.core.oracles.OracleBackedCounter`
specialised to :class:`~repro.core.oracles.PhaseThreePathOracle`: the exact
phase decomposition with old-phase products computed by (fast) matrix
multiplication spread across the phase.  It exposes the phase parameters so
benchmarks (E6, E9) can sweep them.

Under ``apply_batch`` the counter inherits the oracle's batch deferral: phase
rollovers that fall inside a batch are postponed to the batch boundary (the
answers stay exact against the stretched phase's deltas), so a batch never
pays a mid-window product promotion.
"""

from __future__ import annotations

from typing import Optional

from repro.core.oracles import OracleBackedCounter, PhaseThreePathOracle


class PhaseFMMCounter(OracleBackedCounter):
    """4-cycle counter using phases and FMM old-phase products (exact)."""

    name = "phase-fmm"

    def __init__(
        self,
        phase_length: Optional[int] = None,
        delta: Optional[float] = None,
        min_phase_length: int = 16,
        record_metrics: bool = False,
        interned: bool = True,
        backend: str = "auto",
        workers: int = 1,
        shard_policy: str = "auto",
        block_entries: Optional[int] = None,
    ) -> None:
        oracle = PhaseThreePathOracle(
            phase_length=phase_length,
            delta=delta,
            min_phase_length=min_phase_length,
        )
        super().__init__(
            oracle=oracle,
            record_metrics=record_metrics,
            interned=interned,
            backend=backend,
            workers=workers,
            shard_policy=shard_policy,
            block_entries=block_entries,
        )

    @property
    def phase_oracle(self) -> PhaseThreePathOracle:
        """The underlying phase oracle (typed accessor)."""
        oracle = self.oracle
        assert isinstance(oracle, PhaseThreePathOracle)
        return oracle

    @property
    def phases_completed(self) -> int:
        return self.phase_oracle.phases_completed

    @property
    def phase_length(self) -> int:
        return self.phase_oracle.phase_length

    @property
    def updates_in_phase(self) -> int:
        """Progress inside the current phase (may exceed ``phase_length``
        mid-batch while a deferred rollover is pending)."""
        return self.phase_oracle._updates_in_phase
