"""Dynamic 4-cycle counters: the paper's contribution and its baselines."""

from repro.core.assadi_shah import (
    AssadiShahCounter,
    AssadiShahThreePathOracle,
    expected_phase_length,
    expected_update_exponent,
)
from repro.core.base import DynamicFourCycleCounter
from repro.core.brute_force import BruteForceCounter
from repro.core.hhh22 import HHH22Counter
from repro.core.layered import CHAINS, LayeredFourCycleCounter, query_direction
from repro.core.oracles import (
    NaiveThreePathOracle,
    OracleBackedCounter,
    PhaseThreePathOracle,
    ThreePathOracle,
)
from repro.core.phase_fmm import PhaseFMMCounter
from repro.core.registry import (
    available_counters,
    create_counter,
    register_counter,
)
from repro.core.warmup import WarmupThreePathOracle
from repro.core.wedge_counter import WedgeCounter

__all__ = [
    "DynamicFourCycleCounter",
    "BruteForceCounter",
    "WedgeCounter",
    "HHH22Counter",
    "PhaseFMMCounter",
    "AssadiShahCounter",
    "AssadiShahThreePathOracle",
    "expected_update_exponent",
    "expected_phase_length",
    "ThreePathOracle",
    "NaiveThreePathOracle",
    "PhaseThreePathOracle",
    "OracleBackedCounter",
    "WarmupThreePathOracle",
    "LayeredFourCycleCounter",
    "CHAINS",
    "query_direction",
    "available_counters",
    "create_counter",
    "register_counter",
]
