"""The Hanauer–Henzinger–Hua (SAND 2022) style ``O(m^{2/3})`` baseline.

This is the algorithm the paper improves on, reimplemented from the
description in the paper's introduction ("Algorithm of Previous Work"):

* vertices are split into **high** (degree at least roughly ``m^{1/3}``) and
  **low** degree;
* the maintained structures are

  - ``P_LL[a][b]`` — 3-paths from ``a`` to ``b`` whose two middle vertices are
    both low,
  - ``W_low[a][b]`` — wedges from ``a`` to ``b`` through a low center,
  - ``W_hh[a][b]`` — wedges through a high center, stored only for pairs
    ``(a, b)`` that are themselves both high;

* a query ``(u, v)`` adds up: the stored ``P_LL`` entry, the paths with exactly
  one high middle (iterate the high vertices adjacent to an endpoint and use
  ``W_low``), and the paths with two high middles (enumerate neighbors when
  both endpoints are low, otherwise route through ``W_hh``).

The high/low threshold follows ``m`` with hysteresis: vertices are promoted at
degree ``2 * theta`` and demoted below ``theta``, and the whole structure is
rebuilt when ``m`` drifts by more than a factor of two since the threshold was
set, so class-transition work is amortized exactly as in [HHH22].  All
structures count *geometric* configurations (each path/wedge once, stored
symmetrically), and — as everywhere in this package — the updated edge is
absent from the graph during maintenance and queries, which removes every
degeneracy concern (Claim A.3 / Claim 8.1 style argument).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Set

import numpy as np

from repro.core.base import DynamicFourCycleCounter
from repro.graph.updates import UpdateBatch
from repro.matmul.engine import (
    CountMatrix,
    csr_linear_combination,
    exact_integer_matmul,
)

Vertex = Hashable


class HHH22Counter(DynamicFourCycleCounter):
    """High/low degree partitioned counter with ``O(m^{2/3})``-style update time."""

    name = "hhh22"

    def __init__(
        self,
        record_metrics: bool = False,
        interned: bool = True,
        backend: str = "auto",
        workers: int = 1,
        shard_policy: str = "auto",
        block_entries: Optional[int] = None,
    ) -> None:
        super().__init__(
            record_metrics=record_metrics,
            interned=interned,
            backend=backend,
            workers=workers,
            shard_policy=shard_policy,
            block_entries=block_entries,
        )
        self._high: Set[Vertex] = set()
        self._wedges_low = CountMatrix()    # W_low[a][b], low center
        self._wedges_high = CountMatrix()   # W_hh[a][b], high center, a and b high
        self._paths_ll = CountMatrix()      # P_LL[a][b], both middles low
        self._reference_m = 1
        self._theta = 1.0
        #: While a batch is in flight, class checks are deferred: touched
        #: vertices are collected here and examined once at the boundary.
        self._deferred_class_checks: Optional[Set[Vertex]] = None

    # -- introspection ---------------------------------------------------------
    @property
    def high_vertices(self) -> Set[Vertex]:
        """The current set of high-degree vertices (read-only use only)."""
        return self._high

    @property
    def threshold(self) -> float:
        """The current low/high degree threshold ``theta``."""
        return self._theta

    def is_high(self, vertex: Vertex) -> bool:
        return vertex in self._high

    # -- batched fast path -------------------------------------------------------
    def _batch_hook(self, batch: UpdateBatch) -> bool:
        """Batch fast path: one vectorized full rebuild per batch.

        The per-update path pays ``O(deg^2)``-ish Python dictionary updates
        per update; for a large window it is cheaper to apply the net updates
        in bulk and rebuild every structure from the interned adjacency matrix
        with a handful of dense products.  Exactness is preserved because the
        rebuild recomputes classes and structures from scratch (the hysteresis
        band makes class *timing* a pure performance concern) and the count is
        taken from the full wedge matrix, which is exact at the batch boundary
        — exactly where the batch contract requires it.
        """
        if len(batch) < self.batch_fast_path_threshold or not self._graph.is_interned:
            return False
        self._graph.apply_batch(batch)
        self._vectorized_rebuild()
        return True

    def _vectorized_rebuild(self) -> None:
        """Recompute classes, structures, and the count with matrix kernels.

        The structures are the same quantities ``_full_rebuild`` assembles
        edge by edge, expressed as matrix products over the interned adjacency
        matrix ``A`` with ``L``/``H`` the low/high indicator vectors:

        * ``W_low  = (A . diag(L) . A)`` off-diagonal — wedges through a low
          center;
        * ``W_hh   = (A . diag(H) . A)`` off-diagonal, restricted to high
          endpoint pairs — wedges through a high center;
        * ``P_LL``: 3-walk count ``A . (diag(L) A diag(L)) . A`` minus the
          degenerate walks that reuse an endpoint (inclusion–exclusion over
          ``a = y`` and ``b = x``), diagonal zeroed.

        The products run on dense BLAS or on the CSR SpGEMM kernel, whichever
        the density-aware dispatcher picks; both assemble identical matrices.
        """
        self._refresh_thresholds()
        if self._adjacency_product_decision().backend == "dense":
            self._rebuild_structures_dense()
        else:
            self._rebuild_structures_csr()

    def _refresh_thresholds(self) -> None:
        m = max(self._graph.num_edges, 1)
        self._reference_m = m
        self._theta = max(1.0, float(m) ** (1.0 / 3.0))

    def _rebuild_structures_dense(self) -> None:
        graph = self._graph
        matrix, labels = graph.interned_adjacency_matrix()
        n = matrix.shape[0]
        degrees = matrix.sum(axis=1)
        high_mask = degrees >= 2.0 * self._theta
        low_mask = ~high_mask
        self._high = {labels[i] for i in np.nonzero(high_mask)[0]}
        # Count: every unordered pair with w common neighbors spans C(w, 2)
        # 4-cycles per diagonal; the ordered-pair sum counts each cycle 4x.
        wedge = exact_integer_matmul(matrix, matrix)
        np.fill_diagonal(wedge, 0)
        pairs = wedge * (wedge - 1) // 2
        self._count = int(pairs.sum()) // 4
        # Wedges split by their center's class.
        low_centers = exact_integer_matmul(matrix * low_mask, matrix)
        np.fill_diagonal(low_centers, 0)
        self._wedges_low = CountMatrix.from_dense(low_centers, labels)
        high_centers = wedge - low_centers  # complementary center classes
        high_centers *= np.outer(high_mask, high_mask)
        self._wedges_high = CountMatrix.from_dense(high_centers, labels)
        # 3-paths with two low middles, by inclusion-exclusion on 3-walks.
        middle = matrix * np.outer(low_mask, low_mask)
        walks = exact_integer_matmul(exact_integer_matmul(matrix, middle), matrix)
        low_degrees = (matrix * low_mask).sum(axis=1)
        end_reuse = (low_mask * low_degrees)[:, None] * matrix
        paths = walks - end_reuse - end_reuse.T + middle
        np.fill_diagonal(paths, 0)
        self._paths_ll = CountMatrix.from_dense(paths, labels)
        # Four dense n x n products, charged so the ops columns stay
        # comparable with the per-update structure_update path.
        self.cost.charge("batch_rebuild", 4 * n * n * n)

    def _rebuild_structures_csr(self) -> None:
        """The same rebuild, entirely sparse: no dense n x n is materialized.

        Masks become entry filters (``A . diag(L)`` drops masked columns,
        ``diag(L) . A`` masked rows), the additive inclusion–exclusion runs as
        an exact COO linear combination, and every product goes through the
        Gustavson kernel.
        """
        graph = self._graph
        adjacency = graph.csr_matrix()
        labels = graph.interner.labels
        n = adjacency.num_rows
        degrees = adjacency.row_lengths()
        high_mask = degrees >= 2.0 * self._theta
        low_mask = ~high_mask
        self._high = {labels[i] for i in np.nonzero(high_mask)[0]}
        work = 0
        wedge, spent = self._spgemm(adjacency, adjacency)
        work += spent
        wedge = wedge.without_diagonal()
        pairs = wedge.data * (wedge.data - 1) // 2
        self._count = int(pairs.sum()) // 4
        masked_columns = adjacency.filter_columns(low_mask)  # A . diag(L)
        low_centers, spent = self._spgemm(masked_columns, adjacency)
        work += spent
        low_centers = low_centers.without_diagonal()
        self._wedges_low = CountMatrix.from_csr(low_centers, labels)
        high_centers = (
            csr_linear_combination([(1, wedge), (-1, low_centers)], n, n)
            .filter_rows(high_mask)
            .filter_columns(high_mask)
        )
        self._wedges_high = CountMatrix.from_csr(high_centers, labels)
        middle = masked_columns.filter_rows(low_mask)  # diag(L) . A . diag(L)
        inner, spent = self._spgemm(adjacency, middle)
        work += spent
        walks, spent = self._spgemm(inner, adjacency)
        work += spent
        low_degrees = masked_columns.row_sums()
        end_reuse = adjacency.scale_rows(np.where(low_mask, low_degrees, 0))
        paths = csr_linear_combination(
            [(1, walks), (-1, end_reuse), (-1, end_reuse.transpose()), (1, middle)], n, n
        ).without_diagonal()
        self._paths_ll = CountMatrix.from_csr(paths, labels)
        self.cost.charge("batch_rebuild", work)

    # -- query ------------------------------------------------------------------
    def _three_paths(self, u: Vertex, v: Vertex) -> int:
        total = 0
        # Both middles low: stored directly.
        self.cost.charge("structure_lookup")
        total += self._paths_ll.get(u, v)
        # Exactly one high middle: iterate high vertices adjacent to one
        # endpoint and read the low-center wedges to the other endpoint.
        total += self._one_high_middle(u, v)
        total += self._one_high_middle(v, u)
        # Both middles high.
        u_high = u in self._high
        v_high = v in self._high
        if not u_high and not v_high:
            total += self._both_high_by_enumeration(u, v)
        elif u_high and v_high:
            for x in self._high_neighbors(u):
                self.cost.charge("structure_lookup")
                total += self._wedges_high.get(x, v)
        elif u_high:
            for y in self._graph.neighbors(v):
                self.cost.charge("neighborhood_scan")
                if y in self._high:
                    self.cost.charge("structure_lookup")
                    total += self._wedges_high.get(u, y)
        else:  # v high, u low
            for x in self._graph.neighbors(u):
                self.cost.charge("neighborhood_scan")
                if x in self._high:
                    self.cost.charge("structure_lookup")
                    total += self._wedges_high.get(x, v)
        return total

    def _one_high_middle(self, endpoint: Vertex, other: Vertex) -> int:
        """Paths ``endpoint - x - y - other`` with ``x`` high and ``y`` low."""
        total = 0
        for x in self._high_neighbors(endpoint):
            self.cost.charge("structure_lookup")
            total += self._wedges_low.get(x, other)
        return total

    def _both_high_by_enumeration(self, u: Vertex, v: Vertex) -> int:
        """Paths with two high middles when both endpoints are low: enumerate
        the (small) neighborhoods and test the middle edge directly."""
        total = 0
        graph = self._graph
        for x in graph.neighbors(u):
            if x not in self._high:
                continue
            for y in graph.neighbors(v):
                self.cost.charge("adjacency_probe")
                if y in self._high and y != x and graph.has_edge(x, y):
                    total += 1
        return total

    def _high_neighbors(self, vertex: Vertex) -> Iterable[Vertex]:
        """High vertices adjacent to ``vertex``, iterating the smaller of the
        neighborhood and the global high set (the [HHH22] trick for keeping the
        scan within ``O(m^{2/3})``)."""
        neighbors = self._graph.neighbors(vertex)
        if len(neighbors) <= len(self._high):
            for candidate in neighbors:
                self.cost.charge("neighborhood_scan")
                if candidate in self._high:
                    yield candidate
        else:
            for candidate in self._high:
                self.cost.charge("adjacency_probe")
                if candidate in neighbors:
                    yield candidate

    # -- maintenance -------------------------------------------------------------
    def _apply_structure_delta(self, u: Vertex, v: Vertex, sign: int) -> None:
        self._update_wedges(u, v, sign)
        self._update_wedges(v, u, sign)
        self._update_paths_middle_edge(u, v, sign)
        self._update_paths_end_edge(u, v, sign)
        self._update_paths_end_edge(v, u, sign)

    def _update_wedges(self, center: Vertex, other: Vertex, sign: int) -> None:
        """Wedges created/destroyed with ``center`` as the middle vertex and the
        new edge ``{center, other}`` as one of the wedge's two edges."""
        graph = self._graph
        if center in self._high:
            if other not in self._high:
                return
            for b in self._high_neighbors(center):
                self.cost.charge("structure_update", 2)
                self._wedges_high.add(other, b, sign)
                self._wedges_high.add(b, other, sign)
        else:
            for b in graph.neighbors(center):
                self.cost.charge("structure_update", 2)
                self._wedges_low.add(other, b, sign)
                self._wedges_low.add(b, other, sign)

    def _update_paths_middle_edge(self, u: Vertex, v: Vertex, sign: int) -> None:
        """3-paths whose *middle* edge is the new edge ``{u, v}`` (both middles
        must be low)."""
        if u in self._high or v in self._high:
            return
        graph = self._graph
        for a in graph.neighbors(u):
            for b in graph.neighbors(v):
                self.cost.charge("structure_update")
                if a != b:
                    self._paths_ll.add(a, b, sign)
                    self._paths_ll.add(b, a, sign)

    def _update_paths_end_edge(self, endpoint: Vertex, middle: Vertex, sign: int) -> None:
        """3-paths whose first edge is the new edge: ``endpoint - middle - y - b``
        with ``middle`` and ``y`` both low."""
        if middle in self._high:
            return
        graph = self._graph
        for y in graph.neighbors(middle):
            self.cost.charge("neighborhood_scan")
            if y in self._high:
                continue
            for b in graph.neighbors(y):
                self.cost.charge("structure_update")
                if b != endpoint and b != middle:
                    self._paths_ll.add(endpoint, b, sign)
                    self._paths_ll.add(b, endpoint, sign)

    # -- class transitions ---------------------------------------------------------
    def _post_update(self, u: Vertex, v: Vertex, sign: int) -> None:
        if self._deferred_class_checks is not None:
            self._deferred_class_checks.update((u, v))
            return
        self._run_class_checks((u, v))

    def _begin_batch(self, batch: UpdateBatch) -> None:
        self._deferred_class_checks = set()

    def _end_batch(self, batch: UpdateBatch) -> None:
        touched = self._deferred_class_checks or ()
        self._deferred_class_checks = None
        self._run_class_checks(touched)

    def _run_class_checks(self, vertices: Iterable[Vertex]) -> None:
        """Rebuild on ``m`` drift, else re-examine the touched vertices.

        The hysteresis band makes the *timing* of these checks a pure
        performance concern: every structure is maintained consistently with
        the current ``self._high`` set, so deferring transitions to a batch
        boundary never affects exactness — it only lets vertex classes lag by
        at most one batch.
        """
        m = max(self._graph.num_edges, 1)
        if m > 2 * self._reference_m or 2 * m < self._reference_m:
            self._full_rebuild()
            return
        for vertex in vertices:
            degree = self._graph.degree(vertex)
            if vertex in self._high and degree < self._theta:
                self._demote(vertex)
            elif vertex not in self._high and degree >= 2.0 * self._theta:
                self._promote(vertex)

    def _promote(self, vertex: Vertex) -> None:
        """Move ``vertex`` from low to high, patching every structure."""
        graph = self._graph
        neighbors = list(graph.neighbors(vertex))
        # Wedges centered at the vertex leave W_low.
        for i, a in enumerate(neighbors):
            for b in neighbors[i + 1:]:
                self.cost.charge("rebuild_ops", 2)
                self._wedges_low.add(a, b, -1)
                self._wedges_low.add(b, a, -1)
        # 3-paths with the vertex as a (low) middle leave P_LL.
        self._adjust_paths_for_middle(vertex, -1)
        self._high.add(vertex)
        # Wedges centered at the vertex between high endpoints enter W_hh ...
        high_neighbors = [a for a in neighbors if a in self._high]
        for i, a in enumerate(high_neighbors):
            for b in high_neighbors[i + 1:]:
                self.cost.charge("rebuild_ops", 2)
                self._wedges_high.add(a, b, 1)
                self._wedges_high.add(b, a, 1)
        # ... and wedges with the vertex as a (now high) endpoint through a
        # high center enter W_hh as well.
        for center in neighbors:
            if center not in self._high:
                continue
            for b in self._high_neighbors(center):
                if b == vertex:
                    continue
                self.cost.charge("rebuild_ops", 2)
                self._wedges_high.add(vertex, b, 1)
                self._wedges_high.add(b, vertex, 1)

    def _demote(self, vertex: Vertex) -> None:
        """Move ``vertex`` from high to low, patching every structure."""
        graph = self._graph
        neighbors = list(graph.neighbors(vertex))
        high_neighbors = [a for a in neighbors if a in self._high and a != vertex]
        # Wedges centered at the vertex between high endpoints leave W_hh.
        for i, a in enumerate(high_neighbors):
            for b in high_neighbors[i + 1:]:
                self.cost.charge("rebuild_ops", 2)
                self._wedges_high.add(a, b, -1)
                self._wedges_high.add(b, a, -1)
        # Wedges with the vertex as a high endpoint leave W_hh.
        for b, value in list(self._wedges_high.row(vertex).items()):
            self.cost.charge("rebuild_ops", 2)
            self._wedges_high.add(vertex, b, -value)
            self._wedges_high.add(b, vertex, -value)
        self._high.discard(vertex)
        # Wedges centered at the vertex enter W_low.
        for i, a in enumerate(neighbors):
            for b in neighbors[i + 1:]:
                self.cost.charge("rebuild_ops", 2)
                self._wedges_low.add(a, b, 1)
                self._wedges_low.add(b, a, 1)
        # 3-paths with the vertex as a (now low) middle enter P_LL.
        self._adjust_paths_for_middle(vertex, 1)

    def _adjust_paths_for_middle(self, vertex: Vertex, sign: int) -> None:
        """Add or remove every 3-path that uses ``vertex`` as a low middle with
        another low middle next to it."""
        graph = self._graph
        for y in graph.neighbors(vertex):
            if y in self._high:
                continue
            for a in graph.neighbors(vertex):
                if a == y:
                    continue
                for b in graph.neighbors(y):
                    if b == vertex or b == a:
                        continue
                    self.cost.charge("rebuild_ops", 2)
                    self._paths_ll.add(a, b, sign)
                    self._paths_ll.add(b, a, sign)

    def _full_rebuild(self) -> None:
        """Recompute the threshold, classes and all structures from scratch.

        Triggered when ``m`` drifts by a factor of two since the threshold was
        set, which happens ``O(log m)`` times over any stream prefix.
        """
        graph = self._graph
        m = max(graph.num_edges, 1)
        self._reference_m = m
        self._theta = max(1.0, float(m) ** (1.0 / 3.0))
        self._high = {
            vertex for vertex in graph.vertices() if graph.degree(vertex) >= 2.0 * self._theta
        }
        self._wedges_low = CountMatrix()
        self._wedges_high = CountMatrix()
        self._paths_ll = CountMatrix()
        # Wedges, grouped by their center's class.
        for center in graph.vertices():
            neighbors = list(graph.neighbors(center))
            self.cost.charge("rebuild_ops", len(neighbors))
            if center in self._high:
                high_neighbors = [a for a in neighbors if a in self._high]
                for i, a in enumerate(high_neighbors):
                    for b in high_neighbors[i + 1:]:
                        self.cost.charge("rebuild_ops", 2)
                        self._wedges_high.add(a, b, 1)
                        self._wedges_high.add(b, a, 1)
            else:
                for i, a in enumerate(neighbors):
                    for b in neighbors[i + 1:]:
                        self.cost.charge("rebuild_ops", 2)
                        self._wedges_low.add(a, b, 1)
                        self._wedges_low.add(b, a, 1)
        # 3-paths through two low middles, grouped by their middle edge.
        for x, y in graph.edges():
            if x in self._high or y in self._high:
                continue
            for a in graph.neighbors(x):
                if a == y:
                    continue
                for b in graph.neighbors(y):
                    if b == x or b == a:
                        continue
                    self.cost.charge("rebuild_ops")
                    self._paths_ll.add(a, b, 1)
                    self._paths_ll.add(b, a, 1)
