"""Capability-aware registry of the dynamic 4-cycle counters.

This module is the single source of truth for counter registration; it lives
in the core layer (next to the counters it describes) so that neither
:mod:`repro.core.registry` nor anything else in core ever has to import the
higher-level :mod:`repro.api` package — :mod:`repro.api.registry` simply
re-exports these names.

The registry maps counter names to :class:`CounterSpec` descriptors instead of
bare factories.  A spec carries everything a caller can know about a counter
without instantiating it:

* the constructor **options** it accepts, with defaults and one-line docs, so
  option dictionaries can be validated at the API boundary — an unknown option
  raises :class:`~repro.exceptions.ConfigurationError` naming the option and
  the counter instead of a bare ``TypeError`` deep inside a constructor;
* **capabilities**: whether the counter implements an amortized
  ``_batch_hook`` fast path, and whether it routes queries through a 3-path
  oracle;
* the **asymptotic class** of its worst-case update time, for the CLI's
  capability table and for documentation.

:mod:`repro.core.registry` keeps its historical ``register_counter`` /
``available_counters`` / ``create_counter`` names as thin shims over this
module; new code goes through :func:`counter_spec` and
:meth:`CounterSpec.create` (usually indirectly, via
:class:`repro.api.config.EngineConfig` and
:class:`repro.api.engine.FourCycleEngine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.assadi_shah import AssadiShahCounter
from repro.core.base import DynamicFourCycleCounter
from repro.core.brute_force import BruteForceCounter
from repro.core.hhh22 import HHH22Counter
from repro.core.phase_fmm import PhaseFMMCounter
from repro.core.wedge_counter import WedgeCounter
from repro.exceptions import ConfigurationError

CounterFactory = Callable[..., DynamicFourCycleCounter]


@dataclass(frozen=True)
class OptionSpec:
    """One constructor option a counter accepts."""

    name: str
    default: object = None
    description: str = ""


#: Options shared by every built-in counter (handled by the base class).
COMMON_OPTIONS: Tuple[OptionSpec, ...] = (
    OptionSpec("record_metrics", False, "record one UpdateRecord per update/batch"),
    OptionSpec("interned", True, "keep the integer-interned graph mirror live"),
    OptionSpec("backend", "auto", "batch-kernel matmul backend: auto|dense|csr"),
    OptionSpec("workers", 1, "shard-parallel SpGEMM worker count (1 = serial kernels)"),
    OptionSpec(
        "shard_policy",
        "auto",
        "shard execution vehicle: auto|serial|thread|process (bit-identical results)",
    ),
    OptionSpec(
        "block_entries",
        None,
        "SpGEMM row-block expansion budget (default: engine constant / env override)",
    ),
)


@dataclass(frozen=True)
class CounterSpec:
    """Descriptor for one registered counter.

    ``options`` lists every keyword the factory accepts; ``None`` disables
    validation entirely (used for third-party factories registered through the
    legacy :func:`repro.core.registry.register_counter`, whose signatures the
    registry cannot know).
    """

    name: str
    factory: CounterFactory
    description: str = ""
    asymptotic: str = "unknown"
    supports_batch_hook: bool = False
    needs_oracle: bool = False
    options: Optional[Tuple[OptionSpec, ...]] = None

    def option_names(self) -> Tuple[str, ...]:
        """The accepted option names (empty when validation is disabled)."""
        return tuple(option.name for option in self.options) if self.options else ()

    def validate_options(self, options: Mapping[str, object]) -> None:
        """Reject unknown options with a :class:`ConfigurationError`.

        No-op when the spec carries no option list (legacy factories).
        """
        if self.options is None:
            return
        allowed = set(self.option_names())
        unknown = sorted(set(options) - allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown option{'s' if len(unknown) > 1 else ''} "
                f"{', '.join(repr(name) for name in unknown)} for counter {self.name!r}; "
                f"valid options: {', '.join(sorted(allowed))}"
            )

    def create(self, **options) -> DynamicFourCycleCounter:
        """Instantiate the counter after validating ``options``."""
        self.validate_options(options)
        return self.factory(**options)

    @classmethod
    def from_factory(cls, name: str, factory: CounterFactory) -> "CounterSpec":
        """Wrap a bare factory (legacy registration) in an unvalidated spec."""
        description = (factory.__doc__ or "").strip().splitlines()
        return cls(
            name=name,
            factory=factory,
            description=description[0] if description else "",
            options=None,
        )


_SPECS: Dict[str, CounterSpec] = {}


def register_spec(spec: CounterSpec, overwrite: bool = False) -> None:
    """Register a :class:`CounterSpec` under its name."""
    if not overwrite and spec.name in _SPECS:
        raise ConfigurationError(f"counter {spec.name!r} is already registered")
    _SPECS[spec.name] = spec


def counter_spec(name: str) -> CounterSpec:
    """The spec registered under ``name``; raises :class:`ConfigurationError`
    (naming the available counters) when unknown."""
    spec = _SPECS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown counter {name!r}; available: {', '.join(available_counter_names())}"
        )
    return spec


def available_specs() -> List[CounterSpec]:
    """All registered specs, sorted by counter name."""
    return [_SPECS[name] for name in available_counter_names()]


def available_counter_names() -> List[str]:
    """The sorted list of registered counter names."""
    return sorted(_SPECS)


def _phase_options() -> Tuple[OptionSpec, ...]:
    return COMMON_OPTIONS + (
        OptionSpec("phase_length", None, "fixed phase length (default: solved from m)"),
        OptionSpec("delta", None, "degree-class exponent delta (default: solved)"),
        OptionSpec("min_phase_length", 16, "lower bound on the adaptive phase length"),
    )


# Built-in counters.
register_spec(
    CounterSpec(
        name=BruteForceCounter.name,
        factory=BruteForceCounter,
        description="reference counter: enumerate both endpoint neighborhoods",
        asymptotic="O(deg(u)*deg(v))",
        supports_batch_hook=True,
        needs_oracle=False,
        options=COMMON_OPTIONS,
    )
)
register_spec(
    CounterSpec(
        name=WedgeCounter.name,
        factory=WedgeCounter,
        description="Appendix A: all-pairs wedge counts",
        asymptotic="O(n)",
        supports_batch_hook=True,
        needs_oracle=False,
        options=COMMON_OPTIONS
        + (
            OptionSpec(
                "incremental",
                None,
                "batch hook mode: None=auto cost choice, True=force delta merge, "
                "False=always full rebuild",
            ),
        ),
    )
)
register_spec(
    CounterSpec(
        name=HHH22Counter.name,
        factory=HHH22Counter,
        description="[HHH22] high/low degree partition baseline",
        asymptotic="O(m^{2/3})",
        supports_batch_hook=True,
        needs_oracle=False,
        options=COMMON_OPTIONS,
    )
)
register_spec(
    CounterSpec(
        name=PhaseFMMCounter.name,
        factory=PhaseFMMCounter,
        description="phases + fast matrix multiplication (no degree classes)",
        asymptotic="O(m^{2/3}) amortized via phases",
        supports_batch_hook=True,
        needs_oracle=True,
        options=_phase_options(),
    )
)
register_spec(
    CounterSpec(
        name=AssadiShahCounter.name,
        factory=AssadiShahCounter,
        description="the paper's main algorithm: phases + degree classes + FMM",
        asymptotic="O(m^{0.6569})",
        supports_batch_hook=True,
        needs_oracle=True,
        options=_phase_options() + (OptionSpec("eps", None, "degree-class exponent eps (default: solved)"),),
    )
)
