"""Brute-force reference counter.

Answers every query by enumerating the neighborhoods of the two endpoints and
checking adjacency of the middle pair.  Worst-case update time
``O(deg(u) * deg(v))`` — far from the paper's bound, but trivially correct, so
it is the ground truth the test suite and the cross-validation experiment (E4)
measure every other counter against.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.base import DynamicFourCycleCounter

Vertex = Hashable


class BruteForceCounter(DynamicFourCycleCounter):
    """Reference counter: no auxiliary structures, quadratic-in-degree queries."""

    name = "brute-force"

    def _three_paths(self, u: Vertex, v: Vertex) -> int:
        graph = self._graph
        total = 0
        neighbors_u = graph.neighbors(u)
        neighbors_v = graph.neighbors(v)
        # Enumerate from the smaller side first; the inner membership test is
        # O(1) either way, but charging reflects the actual scan sizes.
        for x in neighbors_u:
            if x == v:
                continue
            self.cost.charge("neighborhood_scan")
            for y in neighbors_v:
                if y == u or y == x:
                    continue
                self.cost.charge("adjacency_probe")
                if graph.has_edge(x, y):
                    total += 1
        return total
