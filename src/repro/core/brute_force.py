"""Brute-force reference counter.

Answers every query by enumerating the neighborhoods of the two endpoints and
checking adjacency of the middle pair.  Worst-case update time
``O(deg(u) * deg(v))`` — far from the paper's bound, but trivially correct, so
it is the ground truth the test suite and the cross-validation experiment (E4)
measure every other counter against.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.base import DynamicFourCycleCounter
from repro.graph.updates import UpdateBatch

Vertex = Hashable


class BruteForceCounter(DynamicFourCycleCounter):
    """Reference counter: no auxiliary structures, quadratic-in-degree queries."""

    name = "brute-force"

    def _batch_hook(self, batch: UpdateBatch) -> bool:
        """Batch fast path: apply the net updates in bulk, then recount once.

        The per-update path pays ``O(deg(u) * deg(v))`` Python-level probes per
        update; for a window it is far cheaper to mutate the graph in bulk and
        run a single trace-formula recount (one numpy ``tr(A^4)``) at the batch
        boundary — which is also exactly where the batch contract requires the
        count to be exact.
        """
        if len(batch) < self.batch_fast_path_threshold:
            return False
        self._graph.apply_batch(batch)
        n = self._graph.num_vertices
        # tr(A^4) costs two dense n x n products (A^2, then squared): ~2 n^3
        # multiply-adds, so the ops columns stay comparable across batch sizes.
        self.cost.charge("batch_recount", 2 * n * n * n)
        self._count = self.recount()
        return True

    def _three_paths(self, u: Vertex, v: Vertex) -> int:
        graph = self._graph
        total = 0
        neighbors_u = graph.neighbors(u)
        neighbors_v = graph.neighbors(v)
        # Enumerate from the smaller side first; the inner membership test is
        # O(1) either way, but charging reflects the actual scan sizes.
        for x in neighbors_u:
            if x == v:
                continue
            self.cost.charge("neighborhood_scan")
            for y in neighbors_v:
                if y == u or y == x:
                    continue
                self.cost.charge("adjacency_probe")
                if graph.has_edge(x, y):
                    total += 1
        return total
