"""Base classes for fully dynamic 4-cycle counters.

Every counter in :mod:`repro.core` follows the same scheme the paper uses
(Section 2.2 and Appendix A):

* the maintained answer is the total number of 4-cycles;
* an update ``{u, v}`` changes the answer by the number of 4-cycles *through*
  the updated edge, which equals the number of 3-paths between ``u`` and ``v``
  in the graph **without** that edge;
* therefore, on an insertion the query is answered first and the data
  structures are updated afterwards, and on a deletion the data structures are
  updated first and the query answered afterwards (Claim A.3's ordering).

:class:`DynamicFourCycleCounter` implements that template once; concrete
counters supply

* :meth:`DynamicFourCycleCounter._three_paths` — the query, and
* :meth:`DynamicFourCycleCounter._apply_structure_delta` — maintenance of the
  auxiliary structures, always called while the updated edge is *absent* from
  the internal graph (for insertions just before the edge is added, for
  deletions just after it is removed), so maintenance code never needs to
  special-case the updated edge.

A hook :meth:`DynamicFourCycleCounter._post_update` runs after the graph
reflects the new state; counters use it for degree-class transitions and phase
bookkeeping.

Batched updates.  :meth:`DynamicFourCycleCounter.apply_batch` consumes a whole
window of updates at once.  The window is first *normalized*
(:func:`repro.graph.updates.normalize_batch`): insert/delete pairs on the same
edge cancel, consistency is validated once per distinct edge against the live
graph, and the surviving net updates are ordered deletions-first.  The batch
semantics are:

* **counts are exact at batch boundaries** — after ``apply_batch`` returns,
  :attr:`DynamicFourCycleCounter.count` equals the number of 4-cycles of the
  graph obtained by replaying the raw window update-by-update (normalization
  preserves the final graph, and the final graph determines the count);
* **Claim A.3's ordering is preserved within a batch** — the default
  implementation replays the normalized updates through the same
  query-before/after-maintenance sequencing as :meth:`apply`, so every
  per-update delta is still a count of genuine 3-paths;
* intermediate counts *within* a batch are not reported; metrics record one
  :class:`~repro.instrumentation.metrics.UpdateRecord` per batch.

Concrete counters can amortize work across the window by overriding
:meth:`DynamicFourCycleCounter._batch_hook` (replace the replay entirely, e.g.
one recount or one vectorized rebuild per batch) or
:meth:`DynamicFourCycleCounter._begin_batch` /
:meth:`DynamicFourCycleCounter._end_batch` (defer degree-class and phase
rebuild checks to the batch boundary while keeping the per-update replay).
"""

from __future__ import annotations

import abc
import time
from typing import Hashable, Iterable, List, Optional, Union

import numpy as np

from repro.exceptions import (
    CounterStateError,
    DuplicateEdgeError,
    MissingEdgeError,
    SelfLoopError,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.static_counts import count_four_cycles_trace
from repro.graph.updates import (
    EdgeUpdate,
    UpdateBatch,
    UpdateKind,
    UpdateStream,
    normalize_batch,
)
from repro.instrumentation.cost_model import CostModel
from repro.instrumentation.metrics import UpdateMetrics, UpdateRecord
from repro.matmul.engine import CsrMatrix
from repro.matmul.scheduler import ProductDispatcher
from repro.matmul.sharding import ShardExecutor

Vertex = Hashable


class DynamicFourCycleCounter(abc.ABC):
    """Maintains the exact number of 4-cycles in a fully dynamic simple graph."""

    #: Short machine-readable name used by the registry and benchmarks.
    name: str = "abstract"

    #: Minimum net batch size before a counter's `_batch_hook` fast path is
    #: worth taking; below it the per-update replay is typically cheaper (the
    #: rebuild-style fast paths pay a fixed per-batch kernel cost).
    batch_fast_path_threshold: int = 32

    def __init__(
        self,
        record_metrics: bool = False,
        interned: bool = True,
        backend: str = "auto",
        workers: int = 1,
        shard_policy: str = "auto",
        block_entries: Optional[int] = None,
    ) -> None:
        #: ``interned=True`` (default) keeps the graph's integer-interned
        #: representation live, which the batched ``_batch_hook`` fast paths
        #: build their vectorized kernels on; ``interned=False`` forces every
        #: path back to the label-keyed scalar code (the reference the
        #: property tests compare against).
        self._graph = DynamicGraph(interned=interned)
        self._count = 0
        self._updates_processed = 0
        self.cost = CostModel()
        self.metrics: Optional[UpdateMetrics] = UpdateMetrics() if record_metrics else None
        #: Density-aware dense-BLAS vs CSR-SpGEMM choice for the batch hooks'
        #: whole-graph products.  ``backend`` pins the kernel ("dense"/"csr");
        #: the default "auto" compares cost estimates per product.  Validated
        #: here so a bad value fails at construction, not mid-batch.
        self.product_dispatcher = ProductDispatcher(backend=backend, workers=workers)
        #: Shard-parallel SpGEMM executor for the batch hooks' CSR products.
        #: ``workers=1`` (the default) is an exact pass-through to the serial
        #: kernel; more workers row-partition each product into
        #: column-compressed shards and fan them out per ``shard_policy``
        #: (results are bit-identical under every setting — see
        #: :mod:`repro.matmul.sharding`).  ``block_entries`` tunes the serial
        #: kernel's row-block budget alongside the shard sizing.
        self.shard_executor = ShardExecutor(
            workers=workers, policy=shard_policy, block_entries=block_entries
        )

    @property
    def matmul_backend(self) -> str:
        """The configured product backend ("auto", "dense" or "csr")."""
        return self.product_dispatcher.backend

    @property
    def workers(self) -> int:
        """The configured shard-parallel worker count (1 = serial kernels)."""
        return self.shard_executor.workers

    def _spgemm(self, left: CsrMatrix, right: CsrMatrix) -> tuple[CsrMatrix, int]:
        """``left @ right`` through the counter's shard executor.

        Batch hooks route their CSR products here instead of calling
        :func:`repro.matmul.engine.csr_spgemm` directly, so one constructor
        knob parallelizes every rebuild.  Bit-identical to the serial kernel
        for every worker count and policy.
        """
        return self.shard_executor.spgemm(left, right)

    def _adjacency_product_decision(self):
        """Dispatch the square adjacency self-product ``A @ A``.

        The expansion size of ``A @ A`` is ``sum over vertices of deg^2``,
        computed from the (warm) CSR view without running the product.
        """
        indptr, indices = self._graph.csr_view()
        degrees = np.diff(indptr)
        work = int(degrees[indices].sum()) if len(indices) else 0
        return self.product_dispatcher.decide_square(len(indptr) - 1, work)

    # -- public API ----------------------------------------------------------
    @property
    def count(self) -> int:
        """The current number of 4-cycles."""
        return self._count

    @property
    def num_edges(self) -> int:
        """The current number of edges ``m``."""
        return self._graph.num_edges

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    @property
    def graph(self) -> DynamicGraph:
        """The maintained graph (read-only use only)."""
        return self._graph

    def insert_edge(self, u: Vertex, v: Vertex) -> int:
        """Insert ``{u, v}`` and return the new 4-cycle count."""
        return self.apply(EdgeUpdate.insert(u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> int:
        """Delete ``{u, v}`` and return the new 4-cycle count."""
        return self.apply(EdgeUpdate.delete(u, v))

    def apply(self, update: EdgeUpdate) -> int:
        """Process one update and return the new 4-cycle count."""
        started = time.perf_counter()
        before = self.cost.snapshot() if self.metrics is not None else None
        self._apply_update_core(update)
        self._updates_processed += 1
        self._record_metrics(started, before, update.is_insert)
        return self._count

    def apply_batch(self, updates: Union[UpdateBatch, Iterable[EdgeUpdate]]) -> int:
        """Process a window of updates as one batch and return the new count.

        Raw windows are normalized first (insert/delete pairs cancel,
        consistency is validated once against the live graph); an
        already-normalized :class:`~repro.graph.updates.UpdateBatch` is
        consumed as-is.  The count is exact at the batch boundary; metrics
        record a single :class:`~repro.instrumentation.metrics.UpdateRecord`
        for the whole batch.
        """
        if isinstance(updates, UpdateBatch):
            batch = updates
        else:
            batch = normalize_batch(updates, self._graph.has_edge)
        started = time.perf_counter()
        before = self.cost.snapshot() if self.metrics is not None else None
        if not batch.is_empty:
            self._begin_batch(batch)
            try:
                if not self._batch_hook(batch):
                    self._register_touched(batch)
                    for update in batch:
                        self._apply_update_core(update)
            finally:
                self._end_batch(batch)
        else:
            self._register_touched(batch)
        self._updates_processed += batch.raw_size
        # A zero-length window consumed no stream positions; recording it
        # would duplicate the previous record's index with a phantom entry.
        if batch.raw_size > 0:
            self._record_metrics(started, before, batch.num_insertions >= batch.num_deletions)
        return self._count

    def apply_all(self, updates: Iterable[EdgeUpdate]) -> int:
        """Process every update in order and return the final count."""
        for update in updates:
            self.apply(update)
        return self._count

    def process_stream(self, stream: UpdateStream) -> list[int]:
        """Process a stream and return the count after every update."""
        return [self.apply(update) for update in stream]

    def process_stream_batched(self, stream: UpdateStream, batch_size: int) -> List[int]:
        """Process a stream in windows of ``batch_size`` updates.

        Returns the count at every batch boundary (exact there by the batch
        contract); the last entry is the final count.
        """
        return [self.apply_batch(window) for window in stream.batched(batch_size)]

    def load_state(
        self,
        vertices: Iterable[Vertex],
        edges: Iterable[tuple[Vertex, Vertex]],
        updates_processed: int = 0,
    ) -> int:
        """Load a snapshotted graph state into a freshly constructed counter.

        Registers ``vertices`` (in order, so isolated vertices and interner id
        assignment are reproduced), bulk-inserts ``edges`` through the exact
        batched pipeline — which rebuilds every auxiliary structure — and then
        resets the bookkeeping (update total, cost model, metrics) so the
        restore itself leaves no trace in measurements.  Returns the count.
        Used by :meth:`repro.api.engine.FourCycleEngine.restore`.
        """
        if self._updates_processed or self.num_edges:
            raise CounterStateError(
                "load_state requires a freshly constructed counter "
                f"(updates={self._updates_processed}, m={self.num_edges})"
            )
        for vertex in vertices:
            self._graph.add_vertex(vertex)
        inserts = [EdgeUpdate.insert(u, v) for u, v in edges]
        if inserts:
            self.apply_batch(inserts)
        self._updates_processed = updates_processed
        self.cost.reset()
        if self.metrics is not None:
            self.metrics = UpdateMetrics()
        return self._count

    def recount(self) -> int:
        """Recompute the 4-cycle count from scratch (for validation)."""
        return count_four_cycles_trace(self._graph)

    def is_consistent(self) -> bool:
        """Whether the maintained count matches a from-scratch recount."""
        return self._count == self.recount()

    # -- update core -----------------------------------------------------------
    def _apply_update_core(self, update: EdgeUpdate) -> None:
        """Apply one update (Claim A.3 ordering) without metrics bookkeeping."""
        u, v = update.u, update.v
        if update.kind is UpdateKind.INSERT:
            self._validate_insert(u, v)
            delta = self._three_paths(u, v)
            self._apply_structure_delta(u, v, +1)
            self._graph.insert_edge(u, v)
            self._post_update(u, v, +1)
            self._count += delta
        else:
            self._validate_delete(u, v)
            self._graph.delete_edge(u, v)
            self._apply_structure_delta(u, v, -1)
            delta = self._three_paths(u, v)
            self._post_update(u, v, -1)
            self._count -= delta

    def _register_touched(self, batch: UpdateBatch) -> None:
        """Register every vertex the raw window touched (cancelled pairs
        included) so the graph matches a per-update replay exactly.  The
        replay path calls this itself; fast-path hooks get it for free from
        :meth:`DynamicGraph.apply_batch`."""
        for vertex in batch.touched_vertices:
            self._graph.add_vertex(vertex)

    def _record_metrics(self, started: float, before, is_insert: bool) -> None:
        if self.metrics is None or before is None:
            return
        spent = self.cost.snapshot().diff(before)
        self.metrics.record(
            UpdateRecord(
                index=self._updates_processed - 1,
                operations=spent.total,
                seconds=time.perf_counter() - started,
                edge_count=self._graph.num_edges,
                is_insert=is_insert,
                categories=dict(spent.categories),
            )
        )

    # -- hooks for subclasses --------------------------------------------------
    def _batch_hook(self, batch: UpdateBatch) -> bool:
        """Amortized fast path for a whole normalized batch.

        Called with the graph still in its pre-batch state.  Return ``True``
        after fully applying the batch (graph, auxiliary structures, *and*
        :attr:`count`); return ``False`` without touching any state to fall
        back to the exact per-update replay.  The default always falls back.
        Hooks should mutate the graph via :meth:`DynamicGraph.apply_batch`,
        which also registers the window's touched vertices (the replay path
        registers them itself via :meth:`_register_touched`).
        """
        return False

    def _begin_batch(self, batch: UpdateBatch) -> None:
        """Hook called before a batch is applied (fast path or replay).

        Counters use it to start deferring degree-class and phase rebuild
        checks to the batch boundary.
        """

    def _end_batch(self, batch: UpdateBatch) -> None:
        """Hook called after a batch is applied; flush deferred checks here."""

    @abc.abstractmethod
    def _three_paths(self, u: Vertex, v: Vertex) -> int:
        """Number of 3-paths between ``u`` and ``v``; the edge ``{u, v}`` is
        guaranteed to be absent from :attr:`graph` when this is called."""

    def _apply_structure_delta(self, u: Vertex, v: Vertex, sign: int) -> None:
        """Update auxiliary structures for the (signed) edge ``{u, v}``.

        Called while the edge is absent from :attr:`graph`: just before the
        graph insertion (``sign = +1``) or just after the graph deletion
        (``sign = -1``).  The default does nothing.
        """

    def _post_update(self, u: Vertex, v: Vertex, sign: int) -> None:
        """Hook called after the graph reflects the new state."""

    # -- validation ------------------------------------------------------------
    def _validate_insert(self, u: Vertex, v: Vertex) -> None:
        if u == v:
            raise SelfLoopError(f"cannot insert self-loop at {u!r}")
        if self._graph.has_edge(u, v):
            raise DuplicateEdgeError(f"edge ({u!r}, {v!r}) is already present")

    def _validate_delete(self, u: Vertex, v: Vertex) -> None:
        if not self._graph.has_edge(u, v):
            raise MissingEdgeError(f"edge ({u!r}, {v!r}) is not present")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(count={self._count}, m={self.num_edges}, "
            f"updates={self._updates_processed})"
        )
