"""Base classes for fully dynamic 4-cycle counters.

Every counter in :mod:`repro.core` follows the same scheme the paper uses
(Section 2.2 and Appendix A):

* the maintained answer is the total number of 4-cycles;
* an update ``{u, v}`` changes the answer by the number of 4-cycles *through*
  the updated edge, which equals the number of 3-paths between ``u`` and ``v``
  in the graph **without** that edge;
* therefore, on an insertion the query is answered first and the data
  structures are updated afterwards, and on a deletion the data structures are
  updated first and the query answered afterwards (Claim A.3's ordering).

:class:`DynamicFourCycleCounter` implements that template once; concrete
counters supply

* :meth:`DynamicFourCycleCounter._three_paths` — the query, and
* :meth:`DynamicFourCycleCounter._apply_structure_delta` — maintenance of the
  auxiliary structures, always called while the updated edge is *absent* from
  the internal graph (for insertions just before the edge is added, for
  deletions just after it is removed), so maintenance code never needs to
  special-case the updated edge.

A hook :meth:`DynamicFourCycleCounter._post_update` runs after the graph
reflects the new state; counters use it for degree-class transitions and phase
bookkeeping.
"""

from __future__ import annotations

import abc
import time
from typing import Hashable, Iterable, Optional

from repro.exceptions import DuplicateEdgeError, MissingEdgeError, SelfLoopError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.static_counts import count_four_cycles_trace
from repro.graph.updates import EdgeUpdate, UpdateKind, UpdateStream
from repro.instrumentation.cost_model import CostModel
from repro.instrumentation.metrics import UpdateMetrics, UpdateRecord

Vertex = Hashable


class DynamicFourCycleCounter(abc.ABC):
    """Maintains the exact number of 4-cycles in a fully dynamic simple graph."""

    #: Short machine-readable name used by the registry and benchmarks.
    name: str = "abstract"

    def __init__(self, record_metrics: bool = False) -> None:
        self._graph = DynamicGraph()
        self._count = 0
        self._updates_processed = 0
        self.cost = CostModel()
        self.metrics: Optional[UpdateMetrics] = UpdateMetrics() if record_metrics else None

    # -- public API ----------------------------------------------------------
    @property
    def count(self) -> int:
        """The current number of 4-cycles."""
        return self._count

    @property
    def num_edges(self) -> int:
        """The current number of edges ``m``."""
        return self._graph.num_edges

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    @property
    def graph(self) -> DynamicGraph:
        """The maintained graph (read-only use only)."""
        return self._graph

    def insert_edge(self, u: Vertex, v: Vertex) -> int:
        """Insert ``{u, v}`` and return the new 4-cycle count."""
        return self.apply(EdgeUpdate.insert(u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> int:
        """Delete ``{u, v}`` and return the new 4-cycle count."""
        return self.apply(EdgeUpdate.delete(u, v))

    def apply(self, update: EdgeUpdate) -> int:
        """Process one update and return the new 4-cycle count."""
        started = time.perf_counter()
        before = self.cost.snapshot() if self.metrics is not None else None
        u, v = update.u, update.v
        if update.kind is UpdateKind.INSERT:
            self._validate_insert(u, v)
            delta = self._three_paths(u, v)
            self._apply_structure_delta(u, v, +1)
            self._graph.insert_edge(u, v)
            self._post_update(u, v, +1)
            self._count += delta
        else:
            self._validate_delete(u, v)
            self._graph.delete_edge(u, v)
            self._apply_structure_delta(u, v, -1)
            delta = self._three_paths(u, v)
            self._post_update(u, v, -1)
            self._count -= delta
        self._updates_processed += 1
        if self.metrics is not None and before is not None:
            after = self.cost.snapshot()
            spent = after.diff(before)
            self.metrics.record(
                UpdateRecord(
                    index=self._updates_processed - 1,
                    operations=spent.total,
                    seconds=time.perf_counter() - started,
                    edge_count=self._graph.num_edges,
                    is_insert=update.is_insert,
                    categories=dict(spent.categories),
                )
            )
        return self._count

    def apply_all(self, updates: Iterable[EdgeUpdate]) -> int:
        """Process every update in order and return the final count."""
        for update in updates:
            self.apply(update)
        return self._count

    def process_stream(self, stream: UpdateStream) -> list[int]:
        """Process a stream and return the count after every update."""
        return [self.apply(update) for update in stream]

    def recount(self) -> int:
        """Recompute the 4-cycle count from scratch (for validation)."""
        return count_four_cycles_trace(self._graph)

    def is_consistent(self) -> bool:
        """Whether the maintained count matches a from-scratch recount."""
        return self._count == self.recount()

    # -- hooks for subclasses --------------------------------------------------
    @abc.abstractmethod
    def _three_paths(self, u: Vertex, v: Vertex) -> int:
        """Number of 3-paths between ``u`` and ``v``; the edge ``{u, v}`` is
        guaranteed to be absent from :attr:`graph` when this is called."""

    def _apply_structure_delta(self, u: Vertex, v: Vertex, sign: int) -> None:
        """Update auxiliary structures for the (signed) edge ``{u, v}``.

        Called while the edge is absent from :attr:`graph`: just before the
        graph insertion (``sign = +1``) or just after the graph deletion
        (``sign = -1``).  The default does nothing.
        """

    def _post_update(self, u: Vertex, v: Vertex, sign: int) -> None:
        """Hook called after the graph reflects the new state."""

    # -- validation ------------------------------------------------------------
    def _validate_insert(self, u: Vertex, v: Vertex) -> None:
        if u == v:
            raise SelfLoopError(f"cannot insert self-loop at {u!r}")
        if self._graph.has_edge(u, v):
            raise DuplicateEdgeError(f"edge ({u!r}, {v!r}) is already present")

    def _validate_delete(self, u: Vertex, v: Vertex) -> None:
        if not self._graph.has_edge(u, v):
            raise MissingEdgeError(f"edge ({u!r}, {v!r}) is not present")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(count={self._count}, m={self.num_edges}, "
            f"updates={self._updates_processed})"
        )
