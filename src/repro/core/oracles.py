"""Dynamic 3-path oracles over a chain of three relations.

The equivalent problem the paper solves (Section 2.2): maintain three binary
relations forming a chain ``L1 -A-> L2 -B-> L3 -C-> L4`` under tuple
insertions/deletions, and answer queries ``(u in L1, v in L4)`` asking for the
number of layered 3-paths from ``u`` to ``v`` — i.e. the entry
``(A · B · C)[u, v]``.  Both the layered 4-cycle counter (four oracle copies,
one per query relation) and the general-graph counters (one oracle via the
Section 8 reduction) are thin wrappers around such an oracle.

This module defines:

* :class:`ThreePathOracle` — the oracle interface plus the shared relation
  storage (forward/backward adjacency per chain position).
* :class:`NaiveThreePathOracle` — answers queries by neighborhood enumeration;
  the simplest exact oracle, used for cross-validation.
* :class:`PhaseThreePathOracle` — the phase + fast-matrix-multiplication
  decomposition at the core of the paper's main algorithm: old-phase products
  are precomputed with (fast) matrix multiplication spread over the phase, and
  queries combine them with the signed delta edges of the recent phases.
* :class:`OracleBackedCounter` — a general-graph 4-cycle counter driven by any
  oracle through the Section 8 reduction.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Set

import numpy as np

from repro.core.base import DynamicFourCycleCounter
from repro.exceptions import ConfigurationError, InvalidUpdateError
from repro.graph.static_counts import four_cycles_from_adjacency, four_cycles_from_csr_square
from repro.instrumentation.cost_model import CostModel
from repro.matmul.engine import (
    CountMatrix,
    CsrMatrix,
    csr_spgemm,
    exact_integer_matmul,
    spgemm_work,
)
from repro.matmul.scheduler import ChainProductJob, PhaseScheduler
from repro.theory.parameters import solve_main_parameters

if TYPE_CHECKING:  # imported lazily to avoid a runtime cycle
    from repro.graph.dynamic_graph import DynamicGraph

Vertex = Hashable

#: Chain positions: 1 connects L1 to L2, 2 connects L2 to L3, 3 connects L3 to L4.
CHAIN_POSITIONS = (1, 2, 3)


class _ChainRelation:
    """Forward/backward adjacency for one position of the chain."""

    __slots__ = ("forward", "backward", "size")

    def __init__(self) -> None:
        self.forward: Dict[Vertex, Set[Vertex]] = {}
        self.backward: Dict[Vertex, Set[Vertex]] = {}
        self.size = 0

    def has(self, left: Vertex, right: Vertex) -> bool:
        neighbors = self.forward.get(left)
        return neighbors is not None and right in neighbors

    def apply(self, left: Vertex, right: Vertex, sign: int) -> None:
        if sign == +1:
            if self.has(left, right):
                raise InvalidUpdateError(
                    f"tuple ({left!r}, {right!r}) is already present in the chain relation"
                )
            self.forward.setdefault(left, set()).add(right)
            self.backward.setdefault(right, set()).add(left)
            self.size += 1
        elif sign == -1:
            if not self.has(left, right):
                raise InvalidUpdateError(
                    f"tuple ({left!r}, {right!r}) is not present in the chain relation"
                )
            self.forward[left].discard(right)
            self.backward[right].discard(left)
            self.size -= 1
        else:
            raise InvalidUpdateError(f"sign must be +1 or -1, got {sign}")

    def to_count_matrix(self) -> CountMatrix:
        matrix = CountMatrix()
        for left, rights in self.forward.items():
            for right in rights:
                matrix.add(left, right, 1)
        return matrix


class ThreePathOracle(abc.ABC):
    """Interface and shared state of dynamic 3-path oracles."""

    #: Short machine-readable name.
    name: str = "abstract-oracle"

    def __init__(self, cost: Optional[CostModel] = None) -> None:
        self.cost = cost if cost is not None else CostModel()
        self._relations: Dict[int, _ChainRelation] = {
            position: _ChainRelation() for position in CHAIN_POSITIONS
        }
        self._updates_processed = 0
        #: Shard-parallel SpGEMM executor for the bulk-rebuild products;
        #: installed by :class:`OracleBackedCounter` (which owns the worker
        #: configuration).  ``None`` means the plain serial kernel.
        self.shard_executor = None

    def _spgemm(self, left: CsrMatrix, right: CsrMatrix) -> tuple[CsrMatrix, int]:
        """``left @ right`` through the counter-installed shard executor,
        falling back to the serial kernel when none is installed.  Both paths
        are bit-identical; the executor is pure performance."""
        if self.shard_executor is None:
            return csr_spgemm(left, right)
        return self.shard_executor.spgemm(left, right)

    # -- shared relation access -------------------------------------------------
    def relation(self, position: int) -> _ChainRelation:
        rel = self._relations.get(position)
        if rel is None:
            raise ConfigurationError(f"chain position must be 1, 2 or 3, got {position}")
        return rel

    @property
    def num_edges(self) -> int:
        """Total number of tuples over the three chain relations."""
        return sum(rel.size for rel in self._relations.values())

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    # -- update / query -----------------------------------------------------------
    def update(self, position: int, left: Vertex, right: Vertex, sign: int) -> None:
        """Apply a signed tuple update at the given chain position."""
        relation = self.relation(position)
        self._before_relation_update(position, left, right, sign)
        relation.apply(left, right, sign)
        self._after_relation_update(position, left, right, sign)
        self._updates_processed += 1

    def insert(self, position: int, left: Vertex, right: Vertex) -> None:
        self.update(position, left, right, +1)

    def delete(self, position: int, left: Vertex, right: Vertex) -> None:
        self.update(position, left, right, -1)

    # -- batch deferral -----------------------------------------------------------
    def begin_batch(self) -> None:
        """Start of a batched update window: oracles may defer amortized
        bookkeeping (phase rebuilds, class transitions) until
        :meth:`end_batch`.  The default does nothing — plain oracles have no
        deferrable work."""

    def end_batch(self) -> None:
        """End of a batched update window: flush any deferred bookkeeping.
        Exactness never depends on these checks running per update, only the
        amortized cost accounting does, so deferring them to the boundary is
        safe."""

    def rebuild_from_mirrored_graph(
        self,
        graph: "DynamicGraph",
        matrix: np.ndarray,
        labels: List[Vertex],
        square: Optional[np.ndarray] = None,
    ) -> None:
        """Reset the oracle to mirror ``graph`` under the Section 8 reduction.

        The batched fast path of :class:`OracleBackedCounter` applies a whole
        window to the graph in bulk and then calls this instead of replaying
        the per-tuple hooks: all three chain relations are rebuilt to equal
        the graph's adjacency (both orientations), and subclasses extend it to
        rebuild their auxiliary structures with vectorized kernels over the
        interned adjacency ``matrix`` (in ``labels`` order; ``square`` is
        ``matrix @ matrix`` when the caller already has it).  Only valid in
        the mirrored setting where ``A = B = C =`` the adjacency matrix.
        """
        del matrix, labels, square  # vectorized kernels live in subclasses
        self._rebuild_mirrored_relations(graph)

    def rebuild_from_mirrored_csr(
        self,
        graph: "DynamicGraph",
        adjacency: CsrMatrix,
        labels: List[Vertex],
        square: CsrMatrix,
    ) -> None:
        """Sparse twin of :meth:`rebuild_from_mirrored_graph`.

        ``adjacency`` is the graph's interned CSR adjacency and ``square`` its
        SpGEMM self-product; subclasses rebuild their auxiliary structures
        from them without ever materializing a dense ``n x n`` array — the
        path the density-aware dispatcher takes on sparse graphs.
        """
        del adjacency, labels, square  # sparse kernels live in subclasses
        self._rebuild_mirrored_relations(graph)

    def _rebuild_mirrored_relations(self, graph: "DynamicGraph") -> None:
        """Reset all three chain relations to mirror the graph's adjacency."""
        for position in CHAIN_POSITIONS:
            relation = _ChainRelation()
            # Forward and backward maps (and each relation) need independent
            # sets: later per-tuple updates mutate them one direction and one
            # relation at a time.
            relation.forward = {
                vertex: set(graph.neighbors(vertex)) for vertex in graph.vertices()
            }
            relation.backward = {
                vertex: set(graph.neighbors(vertex)) for vertex in graph.vertices()
            }
            relation.size = 2 * graph.num_edges
            self._relations[position] = relation

    @abc.abstractmethod
    def count_three_paths(self, u: Vertex, v: Vertex) -> int:
        """The number of chain 3-paths from ``u`` (L1) to ``v`` (L4)."""

    # -- subclass hooks -------------------------------------------------------------
    def _before_relation_update(self, position: int, left: Vertex, right: Vertex, sign: int) -> None:
        """Hook called before the relation storage changes."""

    def _after_relation_update(self, position: int, left: Vertex, right: Vertex, sign: int) -> None:
        """Hook called after the relation storage changed."""

    # -- validation helpers -----------------------------------------------------------
    def count_three_paths_naive(self, u: Vertex, v: Vertex) -> int:
        """Reference enumeration used by tests to validate any oracle."""
        first = self.relation(1).forward.get(u, _EMPTY_SET)
        third = self.relation(3).backward.get(v, _EMPTY_SET)
        second_forward = self.relation(2).forward
        total = 0
        for x in first:
            middle = second_forward.get(x, _EMPTY_SET)
            if len(middle) <= len(third):
                total += sum(1 for y in middle if y in third)
            else:
                total += sum(1 for y in third if y in middle)
        return total

    def __repr__(self) -> str:
        return f"{type(self).__name__}(edges={self.num_edges}, updates={self._updates_processed})"


class NaiveThreePathOracle(ThreePathOracle):
    """Answers queries by direct neighborhood enumeration (no extra state)."""

    name = "naive-oracle"

    def count_three_paths(self, u: Vertex, v: Vertex) -> int:
        first = self.relation(1).forward.get(u, _EMPTY_SET)
        third = self.relation(3).backward.get(v, _EMPTY_SET)
        second_forward = self.relation(2).forward
        total = 0
        for x in first:
            self.cost.charge("neighborhood_scan")
            middle = second_forward.get(x, _EMPTY_SET)
            smaller, larger = (middle, third) if len(middle) <= len(third) else (third, middle)
            for y in smaller:
                self.cost.charge("adjacency_probe")
                if y in larger:
                    total += 1
        return total


class PhaseThreePathOracle(ThreePathOracle):
    """Phase + fast-matrix-multiplication oracle (the paper's core mechanism).

    The update stream is split into *phases*.  At the start of each phase the
    current relations are snapshotted and the products ``A_o · B_o``,
    ``B_o · C_o`` and ``A_o · B_o · C_o`` of that snapshot are submitted to a
    :class:`~repro.matmul.scheduler.PhaseScheduler`, which advances them by a
    bounded amount of work on every update so the products are ready by the end
    of the phase (Section 5.1 / Algorithm 2, Step 2).  Consequently the
    products available during a phase describe the snapshot taken one phase
    earlier, and the "new" edges span at most the current and previous phase —
    exactly the paper's ``P_new = P_{j+1} ∪ P_j``.

    A query ``(u, v)`` expands ``(A_o + dA)(B_o + dB)(C_o + dC)[u, v]`` exactly:

    * ``A_o B_o C_o`` — one lookup in the precomputed triple product;
    * ``dA · (B_o C_o)`` — iterate the new ``A``-edges incident to ``u``;
    * ``(A_o B_o) · dC`` — iterate the new ``C``-edges incident to ``v``;
    * ``dA · B_o · dC`` — iterate the new ``A``/``C`` edges at both endpoints;
    * ``A · dB · C`` — iterate the new ``B``-edges (at most two phases' worth)
      with O(1) adjacency probes; this is the lazy evaluation the paper applies
      to new-phase edges, refined by its class-based data structures.

    Every term is exact, so the oracle is exact at all times, including before
    the first phase completes (the old products are then empty and the deltas
    carry everything).
    """

    name = "phase-oracle"

    def __init__(
        self,
        phase_length: Optional[int] = None,
        delta: Optional[float] = None,
        min_phase_length: int = 16,
        cost: Optional[CostModel] = None,
    ) -> None:
        super().__init__(cost=cost)
        if phase_length is not None and phase_length <= 0:
            raise ConfigurationError(f"phase_length must be positive, got {phase_length}")
        self._fixed_phase_length = phase_length
        self._delta = delta if delta is not None else solve_main_parameters().delta
        self._min_phase_length = max(1, min_phase_length)
        self._phase_length = phase_length if phase_length is not None else self._min_phase_length
        self._updates_in_phase = 0
        self._phases_completed = 0
        # Products of the *active* old snapshot (one phase behind).
        self._product_ab = CountMatrix()
        self._product_bc = CountMatrix()
        self._product_abc = CountMatrix()
        # Signed deltas since the active old snapshot, indexed for queries.
        self._delta_a_by_left: Dict[Vertex, Dict[Vertex, int]] = {}
        self._delta_b: Dict[tuple[Vertex, Vertex], int] = {}
        self._delta_c_by_right: Dict[Vertex, Dict[Vertex, int]] = {}
        # Signed deltas since the *pending* snapshot (the one being multiplied).
        self._pending_delta_a: Dict[Vertex, Dict[Vertex, int]] = {}
        self._pending_delta_b: Dict[tuple[Vertex, Vertex], int] = {}
        self._pending_delta_c: Dict[Vertex, Dict[Vertex, int]] = {}
        self._scheduler = PhaseScheduler(budget_per_update=max(1, self._min_phase_length))
        self._pending_jobs: Dict[str, ChainProductJob] = {}
        self._defer_phase_end = False
        self._start_phase()

    # -- introspection ---------------------------------------------------------------
    @property
    def phase_length(self) -> int:
        return self._phase_length

    @property
    def phases_completed(self) -> int:
        return self._phases_completed

    @property
    def scheduler(self) -> PhaseScheduler:
        return self._scheduler

    def new_edge_count(self) -> int:
        """Number of signed delta edges currently handled lazily."""
        return (
            sum(len(entries) for entries in self._delta_a_by_left.values())
            + len(self._delta_b)
            + sum(len(entries) for entries in self._delta_c_by_right.values())
        )

    # -- update hooks ------------------------------------------------------------------
    def _after_relation_update(self, position: int, left: Vertex, right: Vertex, sign: int) -> None:
        self._record_delta(position, left, right, sign)
        worked = self._scheduler.work()
        self.cost.charge("matmul_ops", worked)
        self._updates_in_phase += 1
        if self._updates_in_phase >= self._phase_length and not self._defer_phase_end:
            self._end_phase()

    def begin_batch(self) -> None:
        """Defer phase rollovers to the batch boundary.

        Phase ends only swap which snapshot the precomputed products describe;
        the query is exact against *any* snapshot plus its deltas, so letting a
        phase run past its nominal length during a batch never changes an
        answer — it only postpones the rebuild to :meth:`end_batch`.
        """
        self._defer_phase_end = True

    def end_batch(self) -> None:
        self._defer_phase_end = False
        if self._updates_in_phase >= self._phase_length:
            self._end_phase()

    def _record_delta(self, position: int, left: Vertex, right: Vertex, sign: int) -> None:
        self.cost.charge("structure_update")
        if position == 1:
            _add_nested(self._delta_a_by_left, left, right, sign)
            _add_nested(self._pending_delta_a, left, right, sign)
        elif position == 2:
            _add_flat(self._delta_b, (left, right), sign)
            _add_flat(self._pending_delta_b, (left, right), sign)
        else:
            _add_nested(self._delta_c_by_right, right, left, sign)
            _add_nested(self._pending_delta_c, right, left, sign)

    # -- phase machinery -----------------------------------------------------------------
    def _start_phase(
        self, snapshots: Optional[tuple[CountMatrix, CountMatrix, CountMatrix]] = None
    ) -> None:
        """Snapshot the current relations and submit their products.

        ``snapshots`` lets a bulk rebuild pass in already-materialized
        relation matrices (the jobs only read them) instead of re-walking the
        relation dictionaries tuple by tuple.
        """
        if snapshots is not None:
            snapshot_a, snapshot_b, snapshot_c = snapshots
        else:
            snapshot_a = self.relation(1).to_count_matrix()
            snapshot_b = self.relation(2).to_count_matrix()
            snapshot_c = self.relation(3).to_count_matrix()
        self._pending_jobs = {
            "ab": ChainProductJob([snapshot_a, snapshot_b], name="A_old*B_old"),
            "bc": ChainProductJob([snapshot_b, snapshot_c], name="B_old*C_old"),
            "abc": ChainProductJob([snapshot_a, snapshot_b, snapshot_c], name="A_old*B_old*C_old"),
        }
        self._pending_delta_a = {}
        self._pending_delta_b = {}
        self._pending_delta_c = {}
        self._scheduler.clear()
        for job in self._pending_jobs.values():
            self._scheduler.submit(job)
        self._phase_length = self._compute_phase_length()
        self._scheduler.budget_per_update = self._compute_budget()
        self._updates_in_phase = 0

    def _end_phase(self) -> None:
        """Finish the pending products and promote them to the active ones."""
        flushed = self._scheduler.finish_all()
        self.cost.charge("matmul_ops", flushed)
        self._product_ab = self._pending_jobs["ab"].result
        self._product_bc = self._pending_jobs["bc"].result
        self._product_abc = self._pending_jobs["abc"].result
        self._delta_a_by_left = {left: dict(entries) for left, entries in self._pending_delta_a.items()}
        self._delta_b = dict(self._pending_delta_b)
        self._delta_c_by_right = {
            right: dict(entries) for right, entries in self._pending_delta_c.items()
        }
        self._phases_completed += 1
        self._start_phase()

    def rebuild_from_mirrored_graph(
        self,
        graph: "DynamicGraph",
        matrix: np.ndarray,
        labels: List[Vertex],
        square: Optional[np.ndarray] = None,
    ) -> None:
        """Bulk mirror rebuild plus a vectorized phase synchronization.

        Instead of letting the scheduler spread the old-phase products over
        the next phase, the products of the *current* snapshot are computed
        immediately with dense BLAS products (in the mirrored setting
        ``A = B = C``, so ``AB = BC = A^2`` and ``ABC = A^3``) and promoted,
        and every delta store is cleared: queries right after the batch
        boundary answer from the triple product alone.  This is a legal phase
        boundary — the oracle is exact against *any* snapshot plus its deltas,
        and here the deltas are simply empty.
        """
        super().rebuild_from_mirrored_graph(graph, matrix, labels, square)
        if square is None:
            square = exact_integer_matmul(matrix, matrix)
        cube = exact_integer_matmul(square, matrix)
        n = matrix.shape[0]
        self._promote_mirrored_products(
            CountMatrix.from_dense(matrix, labels),
            CountMatrix.from_dense(square, labels),
            CountMatrix.from_dense(cube, labels),
            work=2 * n * n * n,
        )

    def rebuild_from_mirrored_csr(
        self,
        graph: "DynamicGraph",
        adjacency: CsrMatrix,
        labels: List[Vertex],
        square: CsrMatrix,
    ) -> None:
        """Sparse bulk rebuild: the same phase synchronization, no dense array.

        The promoted products come from the SpGEMM kernel (``AB = BC = A^2``,
        ``ABC = A^3`` in the mirrored setting); everything else matches
        :meth:`rebuild_from_mirrored_graph`.
        """
        super().rebuild_from_mirrored_csr(graph, adjacency, labels, square)
        cube, work = self._spgemm(square, adjacency)
        product_square = CountMatrix.from_csr(square, labels)
        self._promote_mirrored_products(
            CountMatrix.from_csr(adjacency, labels),
            product_square,
            CountMatrix.from_csr(cube, labels),
            work=work + spgemm_work(adjacency, adjacency),
        )

    def _promote_mirrored_products(
        self,
        adjacency: CountMatrix,
        product_square: CountMatrix,
        product_cube: CountMatrix,
        work: int,
    ) -> None:
        """Install freshly computed mirrored products and open a new phase."""
        self._product_ab = product_square
        self._product_bc = product_square
        self._product_abc = product_cube
        self._delta_a_by_left = {}
        self._delta_b = {}
        self._delta_c_by_right = {}
        self._phases_completed += 1
        # The pending jobs re-multiply the same snapshot; they only read the
        # shared adjacency matrix, so one materialization serves all three.
        self._start_phase(snapshots=(adjacency, adjacency, adjacency))
        self.cost.charge("batch_rebuild", work)

    def _compute_phase_length(self) -> int:
        if self._fixed_phase_length is not None:
            return self._fixed_phase_length
        m = max(self.num_edges, 1)
        return max(self._min_phase_length, int(math.ceil(float(m) ** (1.0 - self._delta))))

    def _compute_budget(self) -> int:
        """Per-update work budget that finishes the pending products in time."""
        estimated = 0
        for job in self._pending_jobs.values():
            estimated += _estimate_chain_cost(job)
        return max(1, int(math.ceil(2.0 * estimated / max(self._phase_length, 1))))

    # -- query ----------------------------------------------------------------------------
    def count_three_paths(self, u: Vertex, v: Vertex) -> int:
        total = 0
        # Old * old * old.
        self.cost.charge("structure_lookup")
        total += self._product_abc.get(u, v)
        # dA * (B_old * C_old).
        delta_a = self._delta_a_by_left.get(u, _EMPTY_DICT)
        for x, a_sign in delta_a.items():
            self.cost.charge("structure_lookup")
            total += a_sign * self._product_bc.get(x, v)
        # (A_old * B_old) * dC.
        delta_c = self._delta_c_by_right.get(v, _EMPTY_DICT)
        for y, c_sign in delta_c.items():
            self.cost.charge("structure_lookup")
            total += self._product_ab.get(u, y) * c_sign
        # dA * B_old * dC.
        if delta_a and delta_c:
            b_relation = self.relation(2)
            for x, a_sign in delta_a.items():
                for y, c_sign in delta_c.items():
                    self.cost.charge("adjacency_probe")
                    total += a_sign * c_sign * self._old_b_entry(b_relation, x, y)
        # A * dB * C  (all combinations that use a new B edge).
        if self._delta_b:
            a_forward = self.relation(1).forward.get(u, _EMPTY_SET)
            c_backward = self.relation(3).backward.get(v, _EMPTY_SET)
            for (x, y), b_sign in self._delta_b.items():
                self.cost.charge("adjacency_probe", 2)
                if x in a_forward and y in c_backward:
                    total += b_sign
        return total

    def _old_b_entry(self, b_relation: _ChainRelation, x: Vertex, y: Vertex) -> int:
        current = 1 if b_relation.has(x, y) else 0
        return current - self._delta_b.get((x, y), 0)


class OracleBackedCounter(DynamicFourCycleCounter):
    """A general-graph 4-cycle counter driven by a 3-path oracle.

    Implements the Section 8 reduction: every general edge ``{u, v}`` is
    mirrored (in both orientations) into all three chain relations, whose
    matrices therefore all equal the graph's adjacency matrix, and the number
    of 4-cycles through ``{u, v}`` is the oracle's 3-path count ``(u, v)``.
    """

    name = "oracle-backed"

    def __init__(
        self,
        oracle: ThreePathOracle,
        record_metrics: bool = False,
        interned: bool = True,
        backend: str = "auto",
        workers: int = 1,
        shard_policy: str = "auto",
        block_entries: Optional[int] = None,
    ) -> None:
        super().__init__(
            record_metrics=record_metrics,
            interned=interned,
            backend=backend,
            workers=workers,
            shard_policy=shard_policy,
            block_entries=block_entries,
        )
        self._oracle = oracle
        # Share one cost model so oracle work shows up in the counter's totals,
        # and one shard executor so the oracle's rebuild products parallelize
        # under the same worker configuration (and share the same pools).
        self._oracle.cost = self.cost
        self._oracle.shard_executor = self.shard_executor

    @property
    def oracle(self) -> ThreePathOracle:
        return self._oracle

    def _batch_hook(self, batch) -> bool:
        """Batch fast path: bulk-apply the window, then one vectorized rebuild.

        The per-update path mirrors every edge into six relation updates, each
        firing the oracle's Python maintenance hooks.  For a large window it
        is cheaper to apply the net updates to the graph in bulk, rebuild the
        oracle from the mirrored graph with matrix kernels
        (:meth:`ThreePathOracle.rebuild_from_mirrored_graph` on the dense
        path, :meth:`ThreePathOracle.rebuild_from_mirrored_csr` on the sparse
        one — the density-aware dispatcher picks), and take the exact boundary
        count from the closed-walk trace formula over the same adjacency.
        """
        if len(batch) < self.batch_fast_path_threshold or not self._graph.is_interned:
            return False
        self._graph.apply_batch(batch)
        if self._graph.num_edges == 0:
            # Degenerate empty graph: both kernels reduce to clearing state.
            matrix, labels = self._graph.interned_adjacency_matrix()
            self._oracle.rebuild_from_mirrored_graph(self._graph, matrix, labels)
            self._count = 0
            return True
        decision = self._adjacency_product_decision()
        if decision.backend == "dense":
            matrix, labels = self._graph.interned_adjacency_matrix()
            square = exact_integer_matmul(matrix, matrix)
            self._oracle.rebuild_from_mirrored_graph(self._graph, matrix, labels, square=square)
            self._count = four_cycles_from_adjacency(
                matrix, self._graph.num_edges, square=square
            )
            n = matrix.shape[0]
            self.cost.charge("batch_recount", n * n * n)
        else:
            adjacency = self._graph.csr_matrix()
            square, work = self._spgemm(adjacency, adjacency)
            labels = self._graph.interner.labels
            self._oracle.rebuild_from_mirrored_csr(self._graph, adjacency, labels, square)
            self._count = four_cycles_from_csr_square(
                square, adjacency.row_lengths(), self._graph.num_edges
            )
            self.cost.charge("batch_recount", work)
        return True

    def _three_paths(self, u: Vertex, v: Vertex) -> int:
        return self._oracle.count_three_paths(u, v)

    def _apply_structure_delta(self, u: Vertex, v: Vertex, sign: int) -> None:
        for position in CHAIN_POSITIONS:
            self._oracle.update(position, u, v, sign)
            self._oracle.update(position, v, u, sign)

    def _begin_batch(self, batch) -> None:
        self._oracle.begin_batch()

    def _end_batch(self, batch) -> None:
        self._oracle.end_batch()


def _add_nested(
    store: Dict[Vertex, Dict[Vertex, int]], key: Vertex, subkey: Vertex, sign: int
) -> None:
    inner = store.get(key)
    if inner is None:
        inner = {}
        store[key] = inner
    value = inner.get(subkey, 0) + sign
    if value == 0:
        inner.pop(subkey, None)
        if not inner:
            store.pop(key, None)
    else:
        inner[subkey] = value


def _add_flat(store: Dict[tuple, int], key: tuple, sign: int) -> None:
    value = store.get(key, 0) + sign
    if value == 0:
        store.pop(key, None)
    else:
        store[key] = value


def _estimate_chain_cost(job: ChainProductJob) -> int:
    """A crude upper estimate of a chain job's total work (used for budgeting)."""
    return max(1, job.operations_done) if job.is_complete else _estimate_from_matrices(job)


def _estimate_from_matrices(job: ChainProductJob) -> int:
    total = 0
    matrices = getattr(job, "_matrices", [])
    previous_nnz = 0
    for index, matrix in enumerate(matrices):
        nnz = matrix.nnz
        if index == 0:
            previous_nnz = nnz
            continue
        total += max(previous_nnz, 1) * max(nnz, 1)
        previous_nnz = max(previous_nnz, nnz)
    return max(total, 1)


#: Shared immutable empties.
_EMPTY_SET: frozenset = frozenset()
_EMPTY_DICT: Dict[Vertex, int] = {}
