"""Registry of the available dynamic 4-cycle counters.

The harness, the CLI, and the benchmarks look counters up by name so that
experiment definitions stay declarative.  Third-party counters can be added at
runtime with :func:`register_counter`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.assadi_shah import AssadiShahCounter
from repro.core.base import DynamicFourCycleCounter
from repro.core.brute_force import BruteForceCounter
from repro.core.hhh22 import HHH22Counter
from repro.core.phase_fmm import PhaseFMMCounter
from repro.core.wedge_counter import WedgeCounter
from repro.exceptions import ConfigurationError

CounterFactory = Callable[..., DynamicFourCycleCounter]

_REGISTRY: Dict[str, CounterFactory] = {}


def register_counter(name: str, factory: CounterFactory, overwrite: bool = False) -> None:
    """Register a counter factory under ``name``."""
    if not overwrite and name in _REGISTRY:
        raise ConfigurationError(f"counter {name!r} is already registered")
    _REGISTRY[name] = factory


def available_counters() -> List[str]:
    """The sorted list of registered counter names."""
    return sorted(_REGISTRY)


def create_counter(name: str, **kwargs) -> DynamicFourCycleCounter:
    """Instantiate the counter registered under ``name``."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown counter {name!r}; available: {', '.join(available_counters())}"
        )
    return factory(**kwargs)


# Built-in counters.
register_counter(BruteForceCounter.name, BruteForceCounter)
register_counter(WedgeCounter.name, WedgeCounter)
register_counter(HHH22Counter.name, HHH22Counter)
register_counter(PhaseFMMCounter.name, PhaseFMMCounter)
register_counter(AssadiShahCounter.name, AssadiShahCounter)
