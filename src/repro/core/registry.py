"""Legacy registry entry points, now shims over :mod:`repro.core.specs`.

The registry proper lives in :mod:`repro.core.specs` as capability-carrying
:class:`~repro.core.specs.CounterSpec` descriptors; this module keeps the
historical names alive:

* :func:`register_counter` wraps a bare factory in an (unvalidated) spec so
  third-party counters keep registering exactly as before;
* :func:`available_counters` lists the registered names;
* :func:`create_counter` still instantiates by name, but is **deprecated** in
  favour of :class:`repro.api.EngineConfig` /
  :class:`repro.api.FourCycleEngine` and emits a :class:`DeprecationWarning`.
  Its kwargs are now validated against the counter's spec, so an unknown
  option raises :class:`~repro.exceptions.ConfigurationError` naming the
  option and the counter instead of a bare ``TypeError``.

The spec module is imported lazily inside each function: it registers the
built-in counters by importing their classes, so a module-level import here
would re-enter :mod:`repro.core` while it is still initializing.
"""

from __future__ import annotations

import warnings
from typing import Callable, List

from repro.core.base import DynamicFourCycleCounter

CounterFactory = Callable[..., DynamicFourCycleCounter]


def register_counter(name: str, factory: CounterFactory, overwrite: bool = False) -> None:
    """Register a counter factory under ``name``.

    Kept for third-party counters; the factory is wrapped in a
    :class:`~repro.core.specs.CounterSpec` without an option list, so its
    kwargs pass through unvalidated (the registry cannot know an arbitrary
    factory's signature).  Prefer :func:`repro.api.register_spec` with a full
    spec, which buys option validation and a row in the capability table.
    """
    from repro.core.specs import CounterSpec, register_spec

    register_spec(CounterSpec.from_factory(name, factory), overwrite=overwrite)


def available_counters() -> List[str]:
    """The sorted list of registered counter names."""
    from repro.core.specs import available_counter_names

    return available_counter_names()


def create_counter(name: str, **kwargs) -> DynamicFourCycleCounter:
    """Instantiate the counter registered under ``name``.

    .. deprecated::
        Construct counters through :class:`repro.api.EngineConfig` and
        :class:`repro.api.FourCycleEngine` instead; the facade owns batching,
        snapshots, and events on top of the same validated construction.
    """
    from repro.core.specs import counter_spec

    warnings.warn(
        "create_counter() is deprecated; construct counters via "
        "repro.api.EngineConfig / FourCycleEngine instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return counter_spec(name).create(**kwargs)
