"""The simple wedge-based counter of Appendix A.

Maintains the number of wedges (2-paths) between every pair of vertices.  An
edge update touches ``deg(u) + deg(v) = O(n)`` wedge counts, and a query sums
``deg(u) = O(n)`` stored counts, giving the ``O(n)`` worst-case update time of
Lemma A.1.  The distinctness argument of Claim A.3 — every 3-walk counted is a
genuine 3-path because the updated edge is absent at query time — is inherited
from the base-class ordering.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.core.base import DynamicFourCycleCounter
from repro.graph.updates import UpdateBatch
from repro.matmul.engine import CountMatrix, exact_integer_matmul

Vertex = Hashable


class WedgeCounter(DynamicFourCycleCounter):
    """Appendix A: all-pairs wedge counts, ``O(n)`` worst-case update time."""

    name = "wedge"

    def __init__(self, record_metrics: bool = False, interned: bool = True) -> None:
        super().__init__(record_metrics=record_metrics, interned=interned)
        #: ``wedges[a][b]`` = number of common neighbors of ``a`` and ``b``;
        #: stored symmetrically (both orientations) for O(1) lookups.
        self._wedges = CountMatrix()

    @property
    def wedge_matrix(self) -> CountMatrix:
        """The maintained wedge-count matrix (read-only use only)."""
        return self._wedges

    def wedges_between(self, a: Vertex, b: Vertex) -> int:
        """The maintained number of wedges between ``a`` and ``b``."""
        return self._wedges.get(a, b)

    def _batch_hook(self, batch: UpdateBatch) -> bool:
        """Batch fast path: one vectorized wedge rebuild per batch.

        Instead of ``O(deg(u) + deg(v))`` dictionary updates per update, the
        whole window is applied to the graph in bulk and the wedge matrix is
        rebuilt once as ``A @ A`` (off-diagonal), which simultaneously yields
        the exact 4-cycle count at the batch boundary: an unordered pair with
        ``w`` common neighbors spans ``C(w, 2)`` 4-cycles per diagonal, and
        every 4-cycle has two diagonals, so the ordered-pair sum of ``C(w, 2)``
        counts each cycle four times.
        """
        if len(batch) < self.batch_fast_path_threshold:
            return False
        self._graph.apply_batch(batch)
        if self._graph.is_interned:
            # Interned export: one vectorized scatter in id order, no vertex
            # sort and no per-edge label lookups.
            matrix, order = self._graph.interned_adjacency_matrix()
        else:
            matrix, order = self._graph.adjacency_matrix()
        n = matrix.shape[0]
        wedge = exact_integer_matmul(matrix, matrix)
        np.fill_diagonal(wedge, 0)
        # One dense n x n product: ~n^3 multiply-adds, charged so the ops
        # columns stay comparable with the per-update structure_update path.
        self.cost.charge("batch_rebuild", n * n * n)
        self._wedges = CountMatrix.from_dense(wedge, order)
        pairs = wedge * (wedge - 1) // 2
        self._count = int(pairs.sum()) // 4
        return True

    def _three_paths(self, u: Vertex, v: Vertex) -> int:
        # Sum wedges(x, v) over x in N(u).  The wedge matrix is symmetric, so
        # the sum can be aggregated from whichever side is smaller: the
        # neighborhood of u or the non-zero wedge row of v (the row is what a
        # high-degree neighborhood scan used to probe entry by entry).
        neighbors = self._graph.neighbors(u)
        row = self._wedges.row(v)
        total = 0
        if len(row) < len(neighbors):
            self.cost.charge("structure_lookup", len(row))
            for x, value in row.items():
                if x in neighbors:
                    total += value
        else:
            self.cost.charge("structure_lookup", len(neighbors))
            for x in neighbors:
                total += row.get(x, 0)
        return total

    def _apply_structure_delta(self, u: Vertex, v: Vertex, sign: int) -> None:
        # New wedges created (or destroyed) by the edge {u, v} are exactly the
        # wedges centered at u (paired with v) and centered at v (paired with
        # u); the edge itself is absent from the graph here, so the neighbor
        # sets never contain the opposite endpoint.
        for w in self._graph.neighbors(u):
            self.cost.charge("structure_update", 2)
            self._wedges.add(v, w, sign)
            self._wedges.add(w, v, sign)
        for w in self._graph.neighbors(v):
            self.cost.charge("structure_update", 2)
            self._wedges.add(u, w, sign)
            self._wedges.add(w, u, sign)
