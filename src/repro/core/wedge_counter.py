"""The simple wedge-based counter of Appendix A.

Maintains the number of wedges (2-paths) between every pair of vertices.  An
edge update touches ``deg(u) + deg(v) = O(n)`` wedge counts, and a query sums
``deg(u) = O(n)`` stored counts, giving the ``O(n)`` worst-case update time of
Lemma A.1.  The distinctness argument of Claim A.3 — every 3-walk counted is a
genuine 3-path because the updated edge is absent at query time — is inherited
from the base-class ordering.

Batched windows take one of three fast paths, chosen by cost estimates:

* **incremental** — the wedge delta ``ΔW = ΔA·A_new + A_old·ΔA`` is computed
  over only the rows the batch touches (``ΔA`` extracted from the normalized
  batch through the interner) and merged into the maintained matrix in place;
* **CSR rebuild** — one sparse ``A @ A`` through the Gustavson SpGEMM kernel;
* **dense rebuild** — one BLAS ``A @ A`` over the interned adjacency matrix.

All three end bit-identical to the per-update path; the dispatch is pure
performance.
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from repro.core.base import DynamicFourCycleCounter
from repro.graph.updates import UpdateBatch
from repro.matmul.engine import (
    CountMatrix,
    CsrMatrix,
    csr_linear_combination,
    exact_integer_matmul,
)
from repro.matmul.omega import CSR_OP_COST, DICT_OP_COST, VECTORIZED_PRODUCT_OVERHEAD

Vertex = Hashable


class WedgeCounter(DynamicFourCycleCounter):
    """Appendix A: all-pairs wedge counts, ``O(n)`` worst-case update time."""

    name = "wedge"

    def __init__(
        self,
        record_metrics: bool = False,
        interned: bool = True,
        backend: str = "auto",
        workers: int = 1,
        shard_policy: str = "auto",
        block_entries: Optional[int] = None,
        incremental: Optional[bool] = None,
    ) -> None:
        super().__init__(
            record_metrics=record_metrics,
            interned=interned,
            backend=backend,
            workers=workers,
            shard_policy=shard_policy,
            block_entries=block_entries,
        )
        #: ``wedges[a][b]`` = number of common neighbors of ``a`` and ``b``;
        #: stored symmetrically (both orientations) for O(1) lookups.
        self._wedges = CountMatrix()
        #: ``None`` picks incremental versus full rebuild by cost estimate per
        #: batch; ``True``/``False`` force the choice (benchmarks and the
        #: incremental-vs-full equivalence tests pin both modes).
        self.incremental = incremental

    @property
    def wedge_matrix(self) -> CountMatrix:
        """The maintained wedge-count matrix (read-only use only)."""
        return self._wedges

    def wedges_between(self, a: Vertex, b: Vertex) -> int:
        """The maintained number of wedges between ``a`` and ``b``."""
        return self._wedges.get(a, b)

    def _batch_hook(self, batch: UpdateBatch) -> bool:
        """Batch fast path: one incremental merge or one rebuild per batch.

        The rebuild computes ``A @ A`` (off-diagonal) on whichever kernel the
        dispatcher picks, which simultaneously yields the exact 4-cycle count
        at the batch boundary: an unordered pair with ``w`` common neighbors
        spans ``C(w, 2)`` 4-cycles per diagonal, and every 4-cycle has two
        diagonals, so the ordered-pair sum of ``C(w, 2)`` counts each cycle
        four times.  When the batch is small relative to the graph the hook
        instead merges the exact wedge delta (see
        :meth:`_apply_incremental_delta`) and updates the count from the
        modified entries alone.
        """
        if len(batch) < self.batch_fast_path_threshold:
            return False
        if not self._graph.is_interned:
            # Scalar-graph fallback: the original dense rebuild over the
            # deterministic vertex order.
            self._graph.apply_batch(batch)
            matrix, order = self._graph.adjacency_matrix()
            self._rebuild_dense(matrix, order)
            return True
        self._graph.apply_batch(batch)
        decision = self._adjacency_product_decision()
        if self._choose_incremental(batch, decision):
            self._apply_incremental_delta(batch)
        elif decision.backend == "dense":
            matrix, order = self._graph.interned_adjacency_matrix()
            self._rebuild_dense(matrix, order)
        else:
            self._rebuild_csr()
        return True

    def _choose_incremental(self, batch: UpdateBatch, decision) -> bool:
        """Whether to merge ``ΔW`` instead of rebuilding ``A @ A``.

        The incremental cost has two parts: the ``ΔA``-row expansions
        (``sum over ΔA entries of deg`` plus the tiny ``ΔA·ΔA``) at the CSR
        per-operation constant, and the per-entry dict merge of ``ΔW`` into
        the maintained matrix at interpreter constants (``ΔW``'s size is
        bounded by the expansion).  The full-rebuild side also rebuilds the
        wedge ``CountMatrix`` from scratch, charged per stored entry.  The
        incremental path wins exactly when the batch touches a small fraction
        of the graph's wedge mass.
        """
        if self.incremental is not None:
            return self.incremental
        indptr, indices = self._graph.csr_view()
        degrees = np.diff(indptr)
        touched = [
            vid
            for vertex in batch.touched_vertices
            if (vid := self._graph.interner.get_id(vertex)) is not None
        ]
        delta_nnz = 2 * len(batch)
        expansion = int(degrees[touched].sum()) * 2 + delta_nnz
        incremental_cost = (
            expansion * (CSR_OP_COST + DICT_OP_COST) + VECTORIZED_PRODUCT_OVERHEAD
        )
        # A rebuild repopulates the whole wedge matrix; its row dicts hold at
        # most one entry per expansion unit of A @ A (usually far fewer).
        rebuild_cost = decision.cost + self._wedges.nnz * CSR_OP_COST
        return incremental_cost < rebuild_cost

    def _apply_incremental_delta(self, batch: UpdateBatch) -> None:
        """Merge ``ΔW = ΔA·A_new + A_old·ΔA`` into the maintained matrix.

        Called with the graph already in its post-batch state.  Both ``ΔA``
        and the adjacency are symmetric, so ``A_old·ΔA = (ΔA·A_old)^T`` and
        ``ΔA·A_old = ΔA·A_new - ΔA·ΔA`` — two small SpGEMMs whose left
        operand has non-empty rows only for the batch's touched vertices.
        The count moves by ``sum of C(w + d, 2) - C(w, 2)`` over the modified
        off-diagonal entries, divided by the 4 ordered diagonal orientations.
        """
        graph = self._graph
        delta = graph.interned_update_delta(batch)
        adjacency = graph.csr_matrix()
        n = adjacency.num_rows
        touched_rows, work_new = self._spgemm(delta, adjacency)    # ΔA · A_new
        delta_square, work_delta = self._spgemm(delta, delta)      # ΔA · ΔA
        mirrored = csr_linear_combination(                         # ΔA · A_old
            [(1, touched_rows), (-1, delta_square)], n, n
        )
        wedge_delta = CsrMatrix.from_coo(
            np.concatenate((touched_rows.row_ids(), mirrored.cols)),
            np.concatenate((touched_rows.cols, mirrored.row_ids())),
            np.concatenate((touched_rows.data, mirrored.data)),
            n,
            n,
        ).without_diagonal()
        label_array = np.empty(n, dtype=object)
        label_array[:] = graph.interner.labels
        entry_labels = label_array[wedge_delta.cols].tolist()
        entry_deltas = wedge_delta.data.tolist()
        indptr = wedge_delta.indptr
        wedges = self._wedges
        pair_delta = 0
        for position in np.nonzero(np.diff(indptr))[0].tolist():
            begin, end = int(indptr[position]), int(indptr[position + 1])
            columns = entry_labels[begin:end]
            deltas = entry_deltas[begin:end]
            get_old = wedges.row(label_array[position]).get
            # C(w + d, 2) - C(w, 2) = d (2 w + d - 1) / 2, entrywise.
            pair_delta += sum(
                delta * (2 * get_old(column, 0) + delta - 1)
                for column, delta in zip(columns, deltas)
            )
            wedges.add_row(label_array[position], columns, deltas)
        if pair_delta % 8 != 0:
            # Explicit raise (not a bare assert) so the exactness gate
            # survives `python -O`, matching four_cycles_from_csr_square.
            raise AssertionError(
                f"incremental wedge delta is not a multiple of 8 ({pair_delta}); "
                "a diagonal orientation was lost"
            )
        self._count += pair_delta // 8
        self.cost.charge(
            "batch_incremental", work_new + work_delta + wedge_delta.nnz
        )

    def _rebuild_csr(self) -> None:
        """Full rebuild through the sparse SpGEMM kernel (no dense n x n)."""
        adjacency = self._graph.csr_matrix()
        wedge, work = self._spgemm(adjacency, adjacency)
        wedge = wedge.without_diagonal()
        self._wedges = CountMatrix.from_csr(wedge, self._graph.interner.labels)
        pairs = wedge.data * (wedge.data - 1) // 2
        self._count = int(pairs.sum()) // 4
        self.cost.charge("batch_rebuild", work)

    def _rebuild_dense(self, matrix: np.ndarray, order) -> None:
        """Full rebuild through one dense BLAS product."""
        n = matrix.shape[0]
        wedge = exact_integer_matmul(matrix, matrix)
        np.fill_diagonal(wedge, 0)
        # One dense n x n product: ~n^3 multiply-adds, charged so the ops
        # columns stay comparable with the per-update structure_update path.
        self.cost.charge("batch_rebuild", n * n * n)
        self._wedges = CountMatrix.from_dense(wedge, order)
        pairs = wedge * (wedge - 1) // 2
        self._count = int(pairs.sum()) // 4

    def _three_paths(self, u: Vertex, v: Vertex) -> int:
        # Sum wedges(x, v) over x in N(u).  The wedge matrix is symmetric, so
        # the sum can be aggregated from whichever side is smaller: the
        # neighborhood of u or the non-zero wedge row of v (the row is what a
        # high-degree neighborhood scan used to probe entry by entry).
        neighbors = self._graph.neighbors(u)
        row = self._wedges.row(v)
        total = 0
        if len(row) < len(neighbors):
            self.cost.charge("structure_lookup", len(row))
            for x, value in row.items():
                if x in neighbors:
                    total += value
        else:
            self.cost.charge("structure_lookup", len(neighbors))
            for x in neighbors:
                total += row.get(x, 0)
        return total

    def _apply_structure_delta(self, u: Vertex, v: Vertex, sign: int) -> None:
        # New wedges created (or destroyed) by the edge {u, v} are exactly the
        # wedges centered at u (paired with v) and centered at v (paired with
        # u); the edge itself is absent from the graph here, so the neighbor
        # sets never contain the opposite endpoint.  The row orientation is
        # applied as one bulk add_row per endpoint; the mirrored orientation
        # necessarily scatters across rows and stays per-entry.
        wedges = self._wedges
        neighbors_u = list(self._graph.neighbors(u))
        if neighbors_u:
            self.cost.charge("structure_update", 2 * len(neighbors_u))
            wedges.add_row(v, neighbors_u, sign)
            for w in neighbors_u:
                wedges.add(w, v, sign)
        neighbors_v = list(self._graph.neighbors(v))
        if neighbors_v:
            self.cost.charge("structure_update", 2 * len(neighbors_v))
            wedges.add_row(u, neighbors_v, sign)
            for w in neighbors_v:
                wedges.add(w, u, sign)
