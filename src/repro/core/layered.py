"""Fully dynamic layered 4-cycle counting (Theorem 2).

The layered problem: a 4-layered graph with relations ``A, B, C, D`` undergoes
tuple insertions and deletions in any relation, and after every update the
exact number of layered 4-cycles (equivalently, the size of the cyclic join
``A ⋈ B ⋈ C ⋈ D``) must be reported.

Following Section 2.2, :class:`LayeredFourCycleCounter` runs four copies of a
3-path oracle — one per query relation.  The copy responsible for queries in
relation ``X`` maintains the chain formed by the other three relations (in
cyclic order starting after ``X``); an update to ``X`` is answered by that copy
and fed as a data update to the other three copies.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional

from repro.core.oracles import NaiveThreePathOracle, ThreePathOracle
from repro.exceptions import InvalidUpdateError
from repro.graph.layered_graph import LayeredGraph
from repro.graph.updates import RELATION_NAMES, LayeredEdgeUpdate, UpdateKind
from repro.instrumentation.cost_model import CostModel

Vertex = Hashable

#: For every query relation, the chain of the other three relations in cyclic
#: order.  The chain of the ``D`` copy is ``A -> B -> C`` (queries go from L1
#: to L4), the chain of the ``A`` copy is ``B -> C -> D`` (L2 to L1), etc.
CHAINS: Dict[str, tuple[str, str, str]] = {
    "D": ("A", "B", "C"),
    "A": ("B", "C", "D"),
    "B": ("C", "D", "A"),
    "C": ("D", "A", "B"),
}

OracleFactory = Callable[[], ThreePathOracle]


class LayeredFourCycleCounter:
    """Maintains the exact number of layered 4-cycles under relation updates."""

    def __init__(
        self,
        oracle_factory: Optional[OracleFactory] = None,
        mirror_graph: bool = True,
    ) -> None:
        factory = oracle_factory if oracle_factory is not None else NaiveThreePathOracle
        self.cost = CostModel()
        self._oracles: Dict[str, ThreePathOracle] = {}
        self._positions: Dict[str, Dict[str, int]] = {}
        for query_relation, chain in CHAINS.items():
            oracle = factory()
            oracle.cost = self.cost
            self._oracles[query_relation] = oracle
            self._positions[query_relation] = {
                relation: position + 1 for position, relation in enumerate(chain)
            }
        self._count = 0
        self._updates_processed = 0
        self._mirror = LayeredGraph() if mirror_graph else None

    # -- public API ----------------------------------------------------------------
    @property
    def count(self) -> int:
        """The current number of layered 4-cycles."""
        return self._count

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    @property
    def mirror_graph(self) -> Optional[LayeredGraph]:
        """A plain :class:`LayeredGraph` kept in sync (for validation)."""
        return self._mirror

    def oracle_for(self, relation: str) -> ThreePathOracle:
        """The oracle copy that answers queries for updates in ``relation``."""
        oracle = self._oracles.get(relation)
        if oracle is None:
            raise InvalidUpdateError(
                f"unknown relation {relation!r}; expected one of {RELATION_NAMES}"
            )
        return oracle

    def insert(self, relation: str, left: Vertex, right: Vertex) -> int:
        """Insert a tuple and return the new layered 4-cycle count."""
        return self.apply(LayeredEdgeUpdate.insert(relation, left, right))

    def delete(self, relation: str, left: Vertex, right: Vertex) -> int:
        """Delete a tuple and return the new layered 4-cycle count."""
        return self.apply(LayeredEdgeUpdate.delete(relation, left, right))

    def apply(self, update: LayeredEdgeUpdate) -> int:
        """Process one layered update and return the new count."""
        relation = update.relation
        query_oracle = self.oracle_for(relation)
        # The number of layered 4-cycles through the updated tuple equals the
        # number of 3-paths between its endpoints through the other three
        # relations, none of which are touched by this update — so the query
        # can be answered before or after the data updates; we query first.
        new_cycles = query_oracle.count_three_paths(update.right, update.left)
        sign = update.sign
        for other_relation, oracle in self._oracles.items():
            if other_relation == relation:
                continue
            position = self._positions[other_relation][relation]
            oracle.update(position, update.left, update.right, sign)
        if self._mirror is not None:
            self._mirror.apply(update)
        self._count += sign * new_cycles
        self._updates_processed += 1
        return self._count

    def apply_all(self, updates: Iterable[LayeredEdgeUpdate]) -> int:
        for update in updates:
            self.apply(update)
        return self._count

    def apply_batch(self, updates: Iterable[LayeredEdgeUpdate]) -> int:
        """Process a window of layered updates as one batch.

        Every per-update delta is still computed exactly at its application
        time, so the count is exact at the batch boundary for any ordering of
        the window; the batch entry point lets all four oracle copies defer
        their amortized bookkeeping (phase rollovers, class transitions) to
        the boundary instead of paying it mid-window.
        """
        for oracle in self._oracles.values():
            oracle.begin_batch()
        try:
            for update in updates:
                self.apply(update)
        finally:
            for oracle in self._oracles.values():
                oracle.end_batch()
        return self._count

    def process_stream(self, updates: Iterable[LayeredEdgeUpdate]) -> List[int]:
        """Process a stream of layered updates, returning the count after each."""
        return [self.apply(update) for update in updates]

    # -- validation --------------------------------------------------------------------
    def recount(self) -> int:
        """Recompute the layered 4-cycle count from scratch via the mirror graph."""
        if self._mirror is None:
            raise InvalidUpdateError(
                "recount() requires the counter to be constructed with mirror_graph=True"
            )
        return self._mirror.count_layered_four_cycles()

    def is_consistent(self) -> bool:
        """Whether the maintained count matches a from-scratch recount."""
        return self._count == self.recount()

    def __repr__(self) -> str:
        return (
            f"LayeredFourCycleCounter(count={self._count}, "
            f"updates={self._updates_processed})"
        )


def query_direction(update: LayeredEdgeUpdate) -> tuple[Vertex, Vertex]:
    """The (chain start, chain end) pair queried for ``update``.

    The chain of the copy responsible for relation ``X`` starts at the *right*
    layer of ``X`` and ends at its left layer, so the query endpoints are
    ``(update.right, update.left)``.  Exposed for tests and documentation.
    """
    return (update.right, update.left)
