"""Positional array kernels shared by the graph substrate and the matmul layer.

This module is the bottom of the package's layering DAG (see README,
"Static analysis"): it holds the *positional* (integer-indexed) sparse
value type :class:`CsrMatrix` and the exact integer array helpers that both
:mod:`repro.graph` (CSR adjacency exports) and :mod:`repro.matmul` (the
SpGEMM kernel and the dense backend) are built on.  Keeping them below both
layers is what lets ``graph`` expose CSR views without importing upward into
``matmul``.

Everything here is exact integer arithmetic.  The one float64 round-trip —
:func:`exact_integer_matmul` routing an integer product through BLAS — is
taken only when every possible dot product is provably below ``2^53``
(:data:`_FLOAT64_EXACT_BOUND`), where float64 represents every intermediate
exactly; the repro-lint rule REP101 enforces that every such cast sits under
a recognized bound guard or carries an ``exact-ok`` pragma.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError


def expand_csr_rows(indptr: np.ndarray, rows: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-entry row indices for a CSR structure.

    Expands ``indptr`` into one row index per stored entry — the shared core
    of every CSR-to-dense scatter (graph adjacency exports and the cached
    dense backend).  ``rows`` remaps row positions (defaults to
    ``0..len(indptr)-2``, the identity).
    """
    if rows is None:
        rows = np.arange(len(indptr) - 1, dtype=np.int64)
    return np.repeat(rows, np.diff(indptr))


def _indptr_from_rows(rows: np.ndarray, num_rows: int) -> np.ndarray:
    """CSR ``indptr`` for per-entry row ids that are already in row order."""
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=num_rows), out=indptr[1:])
    return indptr


def _coalesce_keys(keys: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``values`` grouped by ``keys`` and drop groups that sum to zero.

    The sort-reduce merge at the heart of the SpGEMM kernel: one ``np.sort``
    pass over the keys, one ``np.add.reduceat`` over the reordered values.
    Accumulation stays in int64 throughout (``np.bincount`` would round-trip
    the weights through float64 and lose exactness past ``2^53``).  Returns
    the surviving keys in ascending order with their sums.
    """
    # Introsort, not a stable kind: summing is commutative, so the order of
    # equal keys is irrelevant, and the unstable sort is several times faster.
    order = np.argsort(keys)
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
    sums = np.add.reduceat(values[order], starts)
    keep = sums != 0
    return sorted_keys[starts[keep]], sums[keep]


@dataclass(frozen=True)
class CsrMatrix:
    """A positional (integer-indexed) sparse matrix in CSR form.

    Unlike :class:`repro.matmul.engine.CountMatrix` (label-keyed,
    dict-of-dicts, built for point updates) this is the *kernel*
    representation: rows and columns are dense integer positions, entries
    live in three numpy arrays, and every operation is a vectorized array
    pass.  Invariants: entries are coalesced (one stored entry per
    coordinate), column-sorted within each row, and hold no explicit zeros —
    :meth:`from_coo` establishes them and every method preserves them.
    """

    indptr: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    num_cols: int

    @property
    def num_rows(self) -> int:
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        return len(self.cols)

    def row_ids(self) -> np.ndarray:
        """Per-entry row positions (one int per stored entry)."""
        return expand_csr_rows(self.indptr)

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    @classmethod
    def empty(cls, num_rows: int, num_cols: int) -> "CsrMatrix":
        return cls(
            indptr=np.zeros(num_rows + 1, dtype=np.int64),
            cols=np.empty(0, dtype=np.int64),
            data=np.empty(0, dtype=np.int64),
            num_cols=num_cols,
        )

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray,
        num_rows: int,
        num_cols: int,
    ) -> "CsrMatrix":
        """Build from coordinate triplets, coalescing duplicates exactly.

        Duplicate coordinates *sum*; coordinates whose sum is zero vanish —
        the array-level analogue of ``CountMatrix.add`` semantics.
        """
        if not len(rows):
            return cls.empty(num_rows, num_cols)
        keys = rows.astype(np.int64) * np.int64(num_cols) + cols
        keys, sums = _coalesce_keys(keys, data.astype(np.int64, copy=False))
        out_rows = keys // num_cols
        out_cols = keys - out_rows * num_cols
        indptr = _indptr_from_rows(out_rows, num_rows)
        return cls(indptr=indptr, cols=out_cols, data=sums, num_cols=num_cols)

    @classmethod
    def from_parts(
        cls, indptr: np.ndarray, cols: np.ndarray, data: np.ndarray, num_cols: int
    ) -> "CsrMatrix":
        """Wrap already-valid CSR arrays (coalesced, column-sorted, no zeros)."""
        return cls(indptr=indptr, cols=cols, data=data, num_cols=num_cols)

    def to_dense(self, dtype=np.int64) -> np.ndarray:
        dense = np.zeros((self.num_rows, self.num_cols), dtype=dtype)
        if self.nnz:
            dense[self.row_ids(), self.cols] = self.data
        return dense

    def filter_entries(self, keep: np.ndarray) -> "CsrMatrix":
        """Keep only the entries where the boolean mask is true."""
        if keep.all():
            return self
        rows = self.row_ids()[keep]
        indptr = _indptr_from_rows(rows, self.num_rows)
        return CsrMatrix(
            indptr=indptr, cols=self.cols[keep], data=self.data[keep], num_cols=self.num_cols
        )

    def filter_columns(self, mask: np.ndarray) -> "CsrMatrix":
        """``self · diag(mask)``: drop every entry in a masked-out column."""
        if not self.nnz:
            return self
        return self.filter_entries(mask[self.cols])

    def filter_rows(self, mask: np.ndarray) -> "CsrMatrix":
        """``diag(mask) · self``: drop every entry in a masked-out row."""
        if not self.nnz:
            return self
        return self.filter_entries(mask[self.row_ids()])

    def scale_rows(self, scale: np.ndarray) -> "CsrMatrix":
        """``diag(scale) · self`` for an integer vector, dropping zeroed rows."""
        if not self.nnz:
            return self
        rows = self.row_ids()
        data = self.data * scale.astype(np.int64, copy=False)[rows]
        keep = data != 0
        if keep.all():
            return CsrMatrix(indptr=self.indptr, cols=self.cols, data=data, num_cols=self.num_cols)
        indptr = _indptr_from_rows(rows[keep], self.num_rows)
        return CsrMatrix(
            indptr=indptr, cols=self.cols[keep], data=data[keep], num_cols=self.num_cols
        )

    def without_diagonal(self) -> "CsrMatrix":
        """Drop the diagonal entries (the counters' off-diagonal convention)."""
        if not self.nnz:
            return self
        return self.filter_entries(self.cols != self.row_ids())

    def transpose(self) -> "CsrMatrix":
        return CsrMatrix.from_coo(
            self.cols, self.row_ids(), self.data, self.num_cols, self.num_rows
        )

    def row_sums(self) -> np.ndarray:
        """Per-row entry sums (length ``num_rows``), exact int64."""
        prefix = np.zeros(self.nnz + 1, dtype=np.int64)
        np.cumsum(self.data, out=prefix[1:])
        return prefix[self.indptr[1:]] - prefix[self.indptr[:-1]]


def csr_linear_combination(
    terms: Sequence[tuple[int, CsrMatrix]], num_rows: int, num_cols: int
) -> CsrMatrix:
    """Exact integer linear combination ``sum of coefficient * matrix``.

    All terms must share the ``(num_rows, num_cols)`` shape; the result is
    coalesced (cancelled entries vanish).
    """
    rows = [np.empty(0, dtype=np.int64)]
    cols = [np.empty(0, dtype=np.int64)]
    data = [np.empty(0, dtype=np.int64)]
    for coefficient, matrix in terms:
        if matrix.num_rows != num_rows or matrix.num_cols != num_cols:
            raise DimensionMismatchError(
                f"linear combination expects {num_rows}x{num_cols} terms, "
                f"got {matrix.num_rows}x{matrix.num_cols}"
            )
        if coefficient == 0 or not matrix.nnz:
            continue
        rows.append(matrix.row_ids())
        cols.append(matrix.cols)
        data.append(matrix.data if coefficient == 1 else matrix.data * coefficient)
    return CsrMatrix.from_coo(
        np.concatenate(rows), np.concatenate(cols), np.concatenate(data), num_rows, num_cols
    )


#: Largest magnitude a float64 represents exactly (2^53); dot products whose
#: worst case stays strictly below it cannot round.
_FLOAT64_EXACT_BOUND = float(2**53)


def exact_integer_matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Multiply two integer matrices exactly, through BLAS when provably safe.

    numpy routes integer ``@`` through a generic non-BLAS inner loop, which is
    roughly an order of magnitude slower than the float64 GEMM at the sizes
    the batched kernels use.  When every possible dot product is bounded below
    ``2^53`` (``max|left| * max|right| * inner_dim``), the float64 product is
    exact, so it is computed there and cast back; otherwise the integer loop
    is used.  All vectorized counter kernels and the cached dense backend
    funnel their products through this helper.
    """
    if left.size == 0 or right.size == 0:
        return left @ right
    left_max = int(np.abs(left).max())
    right_max = int(np.abs(right).max())
    worst_case = float(left_max) * float(right_max) * max(left.shape[1], 1)
    if worst_case < _FLOAT64_EXACT_BOUND:
        product = left.astype(np.float64) @ right.astype(np.float64)
        return np.rint(product).astype(np.int64)
    return left @ right
