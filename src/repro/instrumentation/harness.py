"""Experiment harness: run counters over update streams and compare them.

The harness is what the benchmarks and examples share: it replays an
:class:`~repro.graph.updates.UpdateStream` through one or several counters,
records per-update metrics, optionally validates every intermediate count
against a reference counter, and produces comparable summaries.

Counters are constructed through the :mod:`repro.api` facade:
:func:`run_config` takes an :class:`~repro.api.EngineConfig`,
:func:`run_engine` a live :class:`~repro.api.FourCycleEngine`, and the
validation/comparison helpers accept either an engine or a bare counter.  The
historical :func:`run_counter` (caller-constructed counter) still works but is
deprecated.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.exceptions import CounterStateError
from repro.graph.updates import UpdateStream
from repro.instrumentation.metrics import MetricsSummary, UpdateMetrics, UpdateRecord

if TYPE_CHECKING:  # imported lazily at runtime to avoid a circular import
    from repro.api.config import EngineConfig
    from repro.api.engine import FourCycleEngine
    from repro.core.base import DynamicFourCycleCounter

    #: Anything the harness can drive: an engine facade or a raw counter.
    RunTarget = Union[FourCycleEngine, DynamicFourCycleCounter]


@dataclass
class RunResult:
    """The outcome of replaying one stream through one counter."""

    counter_name: str
    stream_length: int
    final_count: int
    final_edge_count: int
    counts: List[int] = field(default_factory=list)
    metrics: Optional[UpdateMetrics] = None
    validated: bool = False

    def summary(self) -> Optional[MetricsSummary]:
        return self.metrics.summary() if self.metrics is not None else None


def _resolve_batch_size(target: "RunTarget", batch_size: Optional[int]) -> int:
    """An explicit ``batch_size`` wins; an engine falls back to its config."""
    if batch_size is not None:
        return batch_size
    config = getattr(target, "config", None)
    return config.batch_size if config is not None else 1


def run_config(
    config: "EngineConfig",
    stream: UpdateStream,
    record_counts: bool = True,
) -> RunResult:
    """Build an engine from ``config`` and replay ``stream`` through it.

    The preferred entry point: construction, batching, and measurement all
    derive from the one typed config.
    """
    from repro.api.engine import FourCycleEngine

    return run_engine(FourCycleEngine(config), stream, record_counts=record_counts)


def run_engine(
    engine: "FourCycleEngine",
    stream: UpdateStream,
    record_counts: bool = True,
    batch_size: Optional[int] = None,
) -> RunResult:
    """Replay ``stream`` through an engine and collect metrics.

    Per-update metrics are recorded here (rather than relying on the engine's
    own optional metrics) so any engine can be measured.  The batch size comes
    from the engine's config unless overridden; with a batch size above 1 the
    stream goes through ``apply_batch`` windows, one
    :class:`~repro.instrumentation.metrics.UpdateRecord` per window, and
    ``counts`` holds the (exact) batch-boundary counts.
    """
    return _replay(engine, stream, _resolve_batch_size(engine, batch_size), record_counts)


def run_counter(
    counter: "DynamicFourCycleCounter",
    stream: UpdateStream,
    record_counts: bool = True,
    batch_size: int = 1,
) -> RunResult:
    """Replay ``stream`` through a caller-constructed counter.

    .. deprecated::
        Construct through the facade and use :func:`run_config` /
        :func:`run_engine` instead.
    """
    warnings.warn(
        "run_counter() is deprecated; use run_config()/run_engine() with "
        "repro.api.EngineConfig / FourCycleEngine instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _replay(counter, stream, batch_size, record_counts)


def _replay(
    target: "RunTarget",
    stream: UpdateStream,
    batch_size: int,
    record_counts: bool,
) -> RunResult:
    """Measured replay shared by engines and raw counters."""
    if batch_size > 1:
        return _replay_batched(target, stream, batch_size, record_counts)
    metrics = UpdateMetrics()
    counts: List[int] = []
    for index, update in enumerate(stream):
        before_ops = target.cost.snapshot()
        started = time.perf_counter()
        count = target.apply(update)
        elapsed = time.perf_counter() - started
        spent = target.cost.snapshot().diff(before_ops)
        metrics.record(
            UpdateRecord(
                index=index,
                operations=spent.total,
                seconds=elapsed,
                edge_count=target.num_edges,
                is_insert=update.is_insert,
                categories=dict(spent.categories),
            )
        )
        if record_counts:
            counts.append(count)
    return RunResult(
        counter_name=target.name,
        stream_length=len(stream),
        final_count=target.count,
        final_edge_count=target.num_edges,
        counts=counts,
        metrics=metrics,
    )


def _replay_batched(
    target: "RunTarget",
    stream: UpdateStream,
    batch_size: int,
    record_counts: bool,
) -> RunResult:
    """Batched replay: one metrics record and one count per window."""
    metrics = UpdateMetrics()
    counts: List[int] = []
    for index, window in enumerate(stream.batched(batch_size)):
        before_ops = target.cost.snapshot()
        edges_before = target.num_edges
        started = time.perf_counter()
        count = target.apply_batch(window)
        elapsed = time.perf_counter() - started
        spent = target.cost.snapshot().diff(before_ops)
        metrics.record(
            UpdateRecord(
                index=index,
                operations=spent.total,
                seconds=elapsed,
                edge_count=target.num_edges,
                # Same labeling rule as the counter's own per-batch record:
                # a batch counts as "insert" when its net edge delta is >= 0.
                is_insert=target.num_edges >= edges_before,
                categories=dict(spent.categories),
            )
        )
        if record_counts:
            counts.append(count)
    return RunResult(
        counter_name=target.name,
        stream_length=len(stream),
        final_count=target.count,
        final_edge_count=target.num_edges,
        counts=counts,
        metrics=metrics,
    )


def time_replay(
    target: "RunTarget",
    stream: UpdateStream,
    batch_size: Optional[int] = None,
) -> float:
    """Wall-clock seconds to replay ``stream`` through an engine or counter.

    The minimal timing loop shared by the throughput experiments (E10/E11):
    no metrics recording, no count collection — only the work a production
    caller of the update API would do.  A batch size of 1 (the default for
    raw counters; engines default to their config) drives the per-update
    ``apply`` path, larger sizes the ``apply_batch`` pipeline (normalization
    included in the measured time).
    """
    resolved = _resolve_batch_size(target, batch_size)
    # Time the raw counter: the engine's event dispatch is not part of the
    # counter kernels these experiments measure.
    counter = getattr(target, "counter", target)
    started = time.perf_counter()
    if resolved <= 1:
        for update in stream:
            counter.apply(update)
    else:
        for window in stream.batched(resolved):
            counter.apply_batch(window)
    return time.perf_counter() - started


def run_validated(
    target: "RunTarget",
    stream: UpdateStream,
    reference: Optional["RunTarget"] = None,
    check_every: int = 1,
) -> RunResult:
    """Replay ``stream`` while cross-checking against a reference counter.

    ``check_every`` controls how often the counts are compared (1 = after every
    update).  Raises :class:`CounterStateError` on the first mismatch, naming
    the update index — this is the workhorse of the correctness experiment E4
    and of the integration tests.
    """
    if reference is None:
        from repro.api.engine import FourCycleEngine

        reference = FourCycleEngine("brute-force")
    if check_every <= 0:
        raise ValueError(f"check_every must be positive, got {check_every}")
    metrics = UpdateMetrics()
    counts: List[int] = []
    for index, update in enumerate(stream):
        before_ops = target.cost.snapshot()
        started = time.perf_counter()
        count = target.apply(update)
        elapsed = time.perf_counter() - started
        spent = target.cost.snapshot().diff(before_ops)
        expected = reference.apply(update)
        if index % check_every == 0 and count != expected:
            raise CounterStateError(
                f"counter {target.name!r} diverged at update #{index} "
                f"({update!r}): got {count}, expected {expected}"
            )
        metrics.record(
            UpdateRecord(
                index=index,
                operations=spent.total,
                seconds=elapsed,
                edge_count=target.num_edges,
                is_insert=update.is_insert,
                categories=dict(spent.categories),
            )
        )
        counts.append(count)
    if target.count != reference.count:
        raise CounterStateError(
            f"counter {target.name!r} ended with count {target.count}, "
            f"reference ended with {reference.count}"
        )
    return RunResult(
        counter_name=target.name,
        stream_length=len(stream),
        final_count=target.count,
        final_edge_count=target.num_edges,
        counts=counts,
        metrics=metrics,
        validated=True,
    )


def compare_counters(
    counter_names: Sequence[str],
    stream: UpdateStream,
    counter_kwargs: Optional[Dict[str, dict]] = None,
    batch_size: int = 1,
) -> Dict[str, RunResult]:
    """Replay the same stream through several registry counters.

    Returns a mapping from counter name to its :class:`RunResult`; all final
    counts are additionally cross-checked against each other.  ``batch_size``
    selects the batched pipeline (see :func:`run_engine`).  Each counter is
    built through :class:`~repro.api.EngineConfig` (``counter_kwargs`` entries
    are legacy ``create_counter``-style dicts and are validated against the
    counter's spec).
    """
    from repro.api.config import EngineConfig

    counter_kwargs = counter_kwargs or {}
    results: Dict[str, RunResult] = {}
    final_counts = set()
    for name in counter_names:
        config = EngineConfig.from_counter_kwargs(
            name, counter_kwargs.get(name, {}), batch_size=batch_size
        )
        result = run_config(config, stream)
        results[name] = result
        final_counts.add(result.final_count)
    if len(final_counts) > 1:
        details = ", ".join(f"{name}={result.final_count}" for name, result in results.items())
        raise CounterStateError(f"counters disagree on the final 4-cycle count: {details}")
    return results


def summary_table(results: Dict[str, RunResult]) -> List[Dict[str, object]]:
    """Flatten comparison results into printable rows (one per counter)."""
    rows: List[Dict[str, object]] = []
    for name in sorted(results):
        result = results[name]
        summary = result.summary()
        row: Dict[str, object] = {
            "counter": name,
            "final_count": result.final_count,
            "final_edges": result.final_edge_count,
        }
        if summary is not None:
            row.update(
                {
                    "mean_ops": round(summary.mean_operations, 1),
                    "p99_ops": round(summary.p99_operations, 1),
                    "max_ops": summary.max_operations,
                    "total_seconds": round(summary.total_seconds, 4),
                }
            )
        rows.append(row)
    return rows


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render rows as a fixed-width text table (used by examples and the CLI)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), max(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns))
    return "\n".join(lines)
