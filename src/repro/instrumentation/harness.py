"""Experiment harness: run counters over update streams and compare them.

The harness is what the benchmarks and examples share: it replays an
:class:`~repro.graph.updates.UpdateStream` through one or several counters,
records per-update metrics, optionally validates every intermediate count
against a reference counter, and produces comparable summaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.exceptions import CounterStateError
from repro.graph.updates import UpdateStream
from repro.instrumentation.metrics import MetricsSummary, UpdateMetrics, UpdateRecord

if TYPE_CHECKING:  # imported lazily at runtime to avoid a circular import
    from repro.core.base import DynamicFourCycleCounter


@dataclass
class RunResult:
    """The outcome of replaying one stream through one counter."""

    counter_name: str
    stream_length: int
    final_count: int
    final_edge_count: int
    counts: List[int] = field(default_factory=list)
    metrics: Optional[UpdateMetrics] = None
    validated: bool = False

    def summary(self) -> Optional[MetricsSummary]:
        return self.metrics.summary() if self.metrics is not None else None


def run_counter(
    counter: "DynamicFourCycleCounter",
    stream: UpdateStream,
    record_counts: bool = True,
    batch_size: int = 1,
) -> RunResult:
    """Replay ``stream`` through ``counter`` and collect metrics.

    Per-update metrics are recorded here (rather than relying on the counter's
    own optional metrics) so any counter instance can be measured.

    With ``batch_size > 1`` the stream is fed through the counter's
    ``apply_batch`` fast path in windows of that size; one
    :class:`~repro.instrumentation.metrics.UpdateRecord` is recorded per
    window and ``counts`` holds the (exact) batch-boundary counts.
    """
    if batch_size > 1:
        return _run_counter_batched(counter, stream, batch_size, record_counts)
    metrics = UpdateMetrics()
    counts: List[int] = []
    for index, update in enumerate(stream):
        before_ops = counter.cost.snapshot()
        started = time.perf_counter()
        count = counter.apply(update)
        elapsed = time.perf_counter() - started
        spent = counter.cost.snapshot().diff(before_ops)
        metrics.record(
            UpdateRecord(
                index=index,
                operations=spent.total,
                seconds=elapsed,
                edge_count=counter.num_edges,
                is_insert=update.is_insert,
                categories=dict(spent.categories),
            )
        )
        if record_counts:
            counts.append(count)
    return RunResult(
        counter_name=counter.name,
        stream_length=len(stream),
        final_count=counter.count,
        final_edge_count=counter.num_edges,
        counts=counts,
        metrics=metrics,
    )


def _run_counter_batched(
    counter: "DynamicFourCycleCounter",
    stream: UpdateStream,
    batch_size: int,
    record_counts: bool,
) -> RunResult:
    """Batched replay: one metrics record and one count per window."""
    metrics = UpdateMetrics()
    counts: List[int] = []
    for index, window in enumerate(stream.batched(batch_size)):
        before_ops = counter.cost.snapshot()
        edges_before = counter.num_edges
        started = time.perf_counter()
        count = counter.apply_batch(window)
        elapsed = time.perf_counter() - started
        spent = counter.cost.snapshot().diff(before_ops)
        metrics.record(
            UpdateRecord(
                index=index,
                operations=spent.total,
                seconds=elapsed,
                edge_count=counter.num_edges,
                # Same labeling rule as the counter's own per-batch record:
                # a batch counts as "insert" when its net edge delta is >= 0.
                is_insert=counter.num_edges >= edges_before,
                categories=dict(spent.categories),
            )
        )
        if record_counts:
            counts.append(count)
    return RunResult(
        counter_name=counter.name,
        stream_length=len(stream),
        final_count=counter.count,
        final_edge_count=counter.num_edges,
        counts=counts,
        metrics=metrics,
    )


def time_replay(
    counter: "DynamicFourCycleCounter",
    stream: UpdateStream,
    batch_size: int = 1,
) -> float:
    """Wall-clock seconds to replay ``stream`` through ``counter``.

    The minimal timing loop shared by the throughput experiments (E10/E11):
    no metrics recording, no count collection — only the work a production
    caller of the update API would do.  ``batch_size <= 1`` drives the
    per-update ``apply`` path, larger sizes the ``apply_batch`` pipeline
    (normalization included in the measured time).
    """
    started = time.perf_counter()
    if batch_size <= 1:
        for update in stream:
            counter.apply(update)
    else:
        for window in stream.batched(batch_size):
            counter.apply_batch(window)
    return time.perf_counter() - started


def run_validated(
    counter: "DynamicFourCycleCounter",
    stream: UpdateStream,
    reference: Optional["DynamicFourCycleCounter"] = None,
    check_every: int = 1,
) -> RunResult:
    """Replay ``stream`` while cross-checking against a reference counter.

    ``check_every`` controls how often the counts are compared (1 = after every
    update).  Raises :class:`CounterStateError` on the first mismatch, naming
    the update index — this is the workhorse of the correctness experiment E4
    and of the integration tests.
    """
    if reference is None:
        from repro.core.registry import create_counter

        reference = create_counter("brute-force")
    if check_every <= 0:
        raise ValueError(f"check_every must be positive, got {check_every}")
    metrics = UpdateMetrics()
    counts: List[int] = []
    for index, update in enumerate(stream):
        before_ops = counter.cost.snapshot()
        started = time.perf_counter()
        count = counter.apply(update)
        elapsed = time.perf_counter() - started
        spent = counter.cost.snapshot().diff(before_ops)
        expected = reference.apply(update)
        if index % check_every == 0 and count != expected:
            raise CounterStateError(
                f"counter {counter.name!r} diverged at update #{index} "
                f"({update!r}): got {count}, expected {expected}"
            )
        metrics.record(
            UpdateRecord(
                index=index,
                operations=spent.total,
                seconds=elapsed,
                edge_count=counter.num_edges,
                is_insert=update.is_insert,
                categories=dict(spent.categories),
            )
        )
        counts.append(count)
    if counter.count != reference.count:
        raise CounterStateError(
            f"counter {counter.name!r} ended with count {counter.count}, "
            f"reference ended with {reference.count}"
        )
    return RunResult(
        counter_name=counter.name,
        stream_length=len(stream),
        final_count=counter.count,
        final_edge_count=counter.num_edges,
        counts=counts,
        metrics=metrics,
        validated=True,
    )


def compare_counters(
    counter_names: Sequence[str],
    stream: UpdateStream,
    counter_kwargs: Optional[Dict[str, dict]] = None,
    batch_size: int = 1,
) -> Dict[str, RunResult]:
    """Replay the same stream through several registry counters.

    Returns a mapping from counter name to its :class:`RunResult`; all final
    counts are additionally cross-checked against each other.  ``batch_size``
    selects the batched pipeline (see :func:`run_counter`).
    """
    from repro.core.registry import create_counter

    counter_kwargs = counter_kwargs or {}
    results: Dict[str, RunResult] = {}
    final_counts = set()
    for name in counter_names:
        counter = create_counter(name, **counter_kwargs.get(name, {}))
        result = run_counter(counter, stream, batch_size=batch_size)
        results[name] = result
        final_counts.add(result.final_count)
    if len(final_counts) > 1:
        details = ", ".join(f"{name}={result.final_count}" for name, result in results.items())
        raise CounterStateError(f"counters disagree on the final 4-cycle count: {details}")
    return results


def summary_table(results: Dict[str, RunResult]) -> List[Dict[str, object]]:
    """Flatten comparison results into printable rows (one per counter)."""
    rows: List[Dict[str, object]] = []
    for name in sorted(results):
        result = results[name]
        summary = result.summary()
        row: Dict[str, object] = {
            "counter": name,
            "final_count": result.final_count,
            "final_edges": result.final_edge_count,
        }
        if summary is not None:
            row.update(
                {
                    "mean_ops": round(summary.mean_operations, 1),
                    "p99_ops": round(summary.p99_operations, 1),
                    "max_ops": summary.max_operations,
                    "total_seconds": round(summary.total_seconds, 4),
                }
            )
        rows.append(row)
    return rows


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render rows as a fixed-width text table (used by examples and the CLI)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), max(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns))
    return "\n".join(lines)
