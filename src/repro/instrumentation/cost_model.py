"""Operation-count cost model.

Wall-clock timing of a Python implementation says very little about the
asymptotic claims of the paper; what *can* be measured faithfully is the number
of elementary operations each algorithm performs per update — neighborhood
scans, hash-map probes, wedge lookups, and multiply-adds inside matrix
products.  Every counter charges its work to a :class:`CostModel`, and the
benchmarks report those counts next to wall-clock time.

The categories are free-form strings; the conventional ones used by the
counters are listed in :data:`STANDARD_CATEGORIES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping

#: Categories used by the built-in counters.  Free-form categories are allowed;
#: these are just the conventional names so reports line up across algorithms.
STANDARD_CATEGORIES = (
    "adjacency_probe",      # single has-edge / set-membership check
    "neighborhood_scan",    # one neighbor visited during an iteration
    "structure_update",     # one entry of an auxiliary count structure changed
    "structure_lookup",     # one entry of an auxiliary count structure read
    "matmul_ops",           # one multiply-add inside a (fast) matrix product
    "rebuild_ops",          # work done rebuilding structures on class changes
    "query_ops",            # miscellaneous per-query work
)


@dataclass
class CostSnapshot:
    """An immutable copy of the per-category totals at some instant."""

    categories: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.categories.values())

    def get(self, category: str) -> int:
        return self.categories.get(category, 0)

    def diff(self, earlier: "CostSnapshot") -> "CostSnapshot":
        """The per-category difference ``self - earlier``."""
        keys = set(self.categories) | set(earlier.categories)
        return CostSnapshot(
            {key: self.categories.get(key, 0) - earlier.categories.get(key, 0) for key in keys}
        )

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(self.categories.items())


class CostModel:
    """A mutable accumulator of per-category operation counts."""

    def __init__(self, enabled: bool = True) -> None:
        self._categories: Dict[str, int] = {}
        self._enabled = enabled

    @property
    def enabled(self) -> bool:
        """Whether charges are being accumulated (see :meth:`disable`)."""
        return self._enabled

    def enable(self) -> None:
        """Resume accumulating charges."""
        self._enabled = True

    def disable(self) -> None:
        """Drop all future charges (``EngineConfig(track_costs=False)``).

        Counters charge on every elementary operation, so skipping the
        dictionary update removes measurable overhead from hot paths when the
        operation counts are not being reported.
        """
        self._enabled = False

    def charge(self, category: str, amount: int = 1) -> None:
        """Add ``amount`` operations to ``category``."""
        if amount == 0 or not self._enabled:
            return
        self._categories[category] = self._categories.get(category, 0) + amount

    def total(self) -> int:
        """Total operations over all categories."""
        return sum(self._categories.values())

    def get(self, category: str) -> int:
        return self._categories.get(category, 0)

    def snapshot(self) -> CostSnapshot:
        """A frozen copy of the current totals."""
        return CostSnapshot(dict(self._categories))

    def reset(self) -> None:
        self._categories.clear()

    def merge(self, other: "CostModel") -> None:
        """Add another model's totals into this one."""
        for category, amount in other._categories.items():
            self.charge(category, amount)

    def as_dict(self) -> Mapping[str, int]:
        return dict(self._categories)

    def __repr__(self) -> str:
        return f"CostModel(total={self.total()}, categories={len(self._categories)})"
