"""Instrumentation: operation-count cost model, per-update metrics, and the
experiment harness."""

from repro.instrumentation.cost_model import STANDARD_CATEGORIES, CostModel, CostSnapshot
from repro.instrumentation.harness import (
    RunResult,
    compare_counters,
    format_table,
    run_config,
    run_counter,
    run_engine,
    run_validated,
    summary_table,
    time_replay,
)
from repro.instrumentation.metrics import (
    MetricsSummary,
    UpdateMetrics,
    UpdateRecord,
    fit_power_law,
    percentile,
)

__all__ = [
    "CostModel",
    "CostSnapshot",
    "STANDARD_CATEGORIES",
    "UpdateMetrics",
    "UpdateRecord",
    "MetricsSummary",
    "percentile",
    "fit_power_law",
    "RunResult",
    "run_config",
    "run_counter",
    "run_engine",
    "run_validated",
    "time_replay",
    "compare_counters",
    "summary_table",
    "format_table",
]
