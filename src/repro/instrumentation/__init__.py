"""Instrumentation: operation-count cost model, per-update metrics, and the
experiment harness."""

from repro.instrumentation.cost_model import STANDARD_CATEGORIES, CostModel, CostSnapshot
from repro.instrumentation.harness import (
    RunResult,
    compare_counters,
    format_table,
    run_counter,
    run_validated,
    summary_table,
)
from repro.instrumentation.metrics import (
    MetricsSummary,
    UpdateMetrics,
    UpdateRecord,
    fit_power_law,
    percentile,
)

__all__ = [
    "CostModel",
    "CostSnapshot",
    "STANDARD_CATEGORIES",
    "UpdateMetrics",
    "UpdateRecord",
    "MetricsSummary",
    "percentile",
    "fit_power_law",
    "RunResult",
    "run_counter",
    "run_validated",
    "compare_counters",
    "summary_table",
    "format_table",
]
