"""Per-update metrics: operation counts and wall-clock time.

The paper's bound is *worst-case per update*, so the interesting statistics are
the maximum and the high percentiles, not just the mean.  :class:`UpdateMetrics`
stores one record per update and exposes the summary statistics the benchmark
harness prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class UpdateRecord:
    """Cost of processing a single update."""

    index: int
    operations: int
    seconds: float
    edge_count: int
    is_insert: bool
    categories: Dict[str, int] = field(default_factory=dict)


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction`` percentile (0..1) of ``values`` by linear interpolation.

    Returns ``0.0`` for an empty sequence (so summaries of empty runs do not
    blow up); raises for fractions outside ``[0, 1]``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


@dataclass
class MetricsSummary:
    """Summary statistics over a run (operations unless noted otherwise)."""

    updates: int
    total_operations: int
    mean_operations: float
    median_operations: float
    p95_operations: float
    p99_operations: float
    max_operations: int
    total_seconds: float
    mean_seconds: float
    max_seconds: float
    final_edge_count: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "updates": self.updates,
            "total_operations": self.total_operations,
            "mean_operations": self.mean_operations,
            "median_operations": self.median_operations,
            "p95_operations": self.p95_operations,
            "p99_operations": self.p99_operations,
            "max_operations": self.max_operations,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "max_seconds": self.max_seconds,
            "final_edge_count": self.final_edge_count,
        }


class UpdateMetrics:
    """Collects one :class:`UpdateRecord` per processed update."""

    def __init__(self) -> None:
        self._records: List[UpdateRecord] = []

    def record(self, record: UpdateRecord) -> None:
        self._records.append(record)

    @property
    def records(self) -> List[UpdateRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def operations(self) -> List[int]:
        return [record.operations for record in self._records]

    def seconds(self) -> List[float]:
        return [record.seconds for record in self._records]

    def worst_case_operations(self) -> int:
        """The maximum per-update operation count (the paper's figure of merit)."""
        if not self._records:
            return 0
        return max(record.operations for record in self._records)

    def amortized_operations(self) -> float:
        """Mean per-update operation count."""
        if not self._records:
            return 0.0
        return sum(record.operations for record in self._records) / len(self._records)

    def summary(self) -> MetricsSummary:
        operations = self.operations()
        seconds = self.seconds()
        final_edges = self._records[-1].edge_count if self._records else 0
        return MetricsSummary(
            updates=len(self._records),
            total_operations=sum(operations),
            mean_operations=(sum(operations) / len(operations)) if operations else 0.0,
            median_operations=percentile(operations, 0.5),
            p95_operations=percentile(operations, 0.95),
            p99_operations=percentile(operations, 0.99),
            max_operations=max(operations) if operations else 0,
            total_seconds=sum(seconds),
            mean_seconds=(sum(seconds) / len(seconds)) if seconds else 0.0,
            max_seconds=max(seconds) if seconds else 0.0,
            final_edge_count=final_edges,
        )

    def bucketed_by_edge_count(self, bucket_width: int) -> Dict[int, float]:
        """Mean operations grouped by ``edge_count // bucket_width`` buckets.

        Used by the scaling experiment (E5) to plot cost against ``m``.
        """
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        sums: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for record in self._records:
            bucket = record.edge_count // bucket_width
            sums[bucket] = sums.get(bucket, 0) + record.operations
            counts[bucket] = counts.get(bucket, 0) + 1
        return {bucket: sums[bucket] / counts[bucket] for bucket in sums}


def fit_power_law(edge_counts: Sequence[int], costs: Sequence[float]) -> Optional[float]:
    """Least-squares slope of ``log(cost)`` against ``log(m)``.

    Returns the fitted exponent, or ``None`` when there are fewer than two
    usable points.  Used by the scaling benchmark to estimate the empirical
    update-cost exponent and compare it with the theoretical one.
    """
    points = [
        (math.log(m), math.log(cost))
        for m, cost in zip(edge_counts, costs)
        if m > 0 and cost > 0
    ]
    if len(points) < 2:
        return None
    mean_x = sum(x for x, _ in points) / len(points)
    mean_y = sum(y for _, y in points) / len(points)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in points)
    denominator = sum((x - mean_x) ** 2 for x, _ in points)
    if denominator == 0:
        return None
    return numerator / denominator
