"""Shard-parallel SpGEMM over row-partitioned CSR operands.

The Gustavson kernel in :mod:`repro.matmul.engine` is single-threaded: one
process walks the row blocks of ``left`` in order.  This module turns that
row seam into a parallel one.  A :class:`ShardPlan` partitions the interned
row-id space into contiguous row blocks balanced by *expansion work* — the
nnz of the expanded intermediate each row produces, not the row count — so a
heavy row costs its shard what it actually costs the kernel.  A
:class:`ShardExecutor` extracts a self-contained, column-compressed view per
shard, fans the per-shard products out over a ``concurrent.futures`` pool
(process pool with pickled shard views, or a thread pool where fork/pickle
overhead would dominate), and merges the per-shard CSR deltas back into one
product deterministically.

Exactness is preserved bit for bit, which the property tests pin against the
serial kernel:

* shards never split a row, so every output row is produced whole by exactly
  one shard;
* per-shard products are integer-exact and key-sorted within each row (the
  kernel's own invariant), and the shard-local -> global column mapping is
  strictly monotone, so mapped rows stay column-sorted;
* exact integer sums are independent of evaluation order, so zero entries
  drop identically;
* shard results are merged in shard index order (``Executor.map`` order, not
  completion order), and shards cover disjoint increasing row ranges, so the
  concatenation *is* the serial CSR layout.

The column compression is the same trick distributed 1D SpGEMM uses to cut
communication: a shard only ships the right-operand rows its left entries
reference, with columns renumbered to the shard's footprint.  Besides
shrinking pickles, this shrinks the kernel's per-block key space, which on
community-structured operands lets the dense-scratch merge run over a few
hundred thousand cells instead of millions — the measured source of the E14
single-host speedup, on top of whatever true parallelism the pool adds.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterator, NamedTuple, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.matmul.engine import CsrMatrix, csr_spgemm
from repro.matmul.omega import CSR_OP_COST, PROCESS_SHARD_OVERHEAD

#: Recognised shard execution policies.  ``auto`` picks per product: inline
#: when the host gives the pool no parallelism, otherwise thread vs process
#: by the cost model below.  ``serial`` forces inline execution of the shard
#: plan (still sharded, still column-compressed — just no pool), which is
#: also the degenerate choice on a single-core host.
SHARD_POLICIES = ("auto", "serial", "thread", "process")

#: Default shards-per-worker factor.  Oversharding keeps the pool busy when
#: shards finish unevenly and shrinks each shard's key space; factor 4 is the
#: measured sweet spot on the E14 community instance (below it the dense
#: scratch stays too large, far above it per-shard overhead creeps back).
DEFAULT_OVERSHARD = 4

#: Smallest expansion work worth a shard of its own.  Below this the plan
#: collapses toward fewer shards, and a product whose *total* work is under
#: the floor short-circuits to the serial kernel outright.
MIN_SHARD_WORK = 1 << 15


class ShardView(NamedTuple):
    """A self-contained, picklable slice of one SpGEMM product.

    ``left_*`` hold the shard's row range of the left operand with columns
    renumbered into the footprint of right rows it references; ``right_*``
    hold exactly those right rows with columns renumbered into the shard's
    output footprint.  ``local_cols`` maps shard-local output columns back to
    global ids; ``row_start`` anchors the shard's rows in the global product.
    """

    row_start: int
    left_indptr: np.ndarray
    left_cols: np.ndarray
    left_data: np.ndarray
    right_indptr: np.ndarray
    right_cols: np.ndarray
    right_data: np.ndarray
    local_cols: np.ndarray


class ShardResult(NamedTuple):
    """One shard's merged product rows, in global column ids."""

    row_start: int
    num_rows: int
    row_lengths: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    work: int


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous row boundaries for one product, balanced by expansion work.

    ``bounds`` has ``num_shards + 1`` entries; shard ``i`` owns rows
    ``bounds[i]:bounds[i + 1]`` of the left operand.  Rows are never split:
    a single row heavier than the even share gets a shard to itself and its
    neighbours rebalance around it.
    """

    bounds: np.ndarray

    @property
    def num_shards(self) -> int:
        return len(self.bounds) - 1

    def ranges(self) -> Iterator[tuple[int, int]]:
        for lo, hi in zip(self.bounds[:-1], self.bounds[1:]):
            yield int(lo), int(hi)

    @classmethod
    def balanced(cls, left: CsrMatrix, right: CsrMatrix, shards: int) -> "ShardPlan":
        """Split ``left``'s rows into at most ``shards`` work-balanced blocks.

        The weight of a row is its expansion size — the summed nnz of the
        right rows its entries select — i.e. exactly the per-row work the
        Gustavson kernel performs.  Boundaries are the positions where the
        cumulative work crosses each even quantile; duplicates collapse, so
        fewer than ``shards`` blocks come back when the matrix is small or
        one row dominates.
        """
        if shards < 1:
            raise ConfigurationError(f"shards must be positive, got {shards}")
        num_rows = left.num_rows
        if num_rows == 0:
            return cls(bounds=np.zeros(1, dtype=np.int64))
        if not left.nnz or shards == 1:
            return cls(bounds=np.array([0, num_rows], dtype=np.int64))
        counts = right.row_lengths()[left.cols]
        expanded = np.zeros(left.nnz + 1, dtype=np.int64)
        np.cumsum(counts, out=expanded[1:])
        work_at_row = expanded[left.indptr]
        targets = work_at_row[-1] * np.arange(1, shards) // shards
        inner = np.searchsorted(work_at_row, targets, side="left")
        bounds = np.unique(
            np.concatenate((np.zeros(1, dtype=np.int64), inner, [num_rows]))
        )
        return cls(bounds=bounds.astype(np.int64, copy=False))


def extract_shard_view(
    left: CsrMatrix,
    right: CsrMatrix,
    lo: int,
    hi: int,
    right_row_lengths: Optional[np.ndarray] = None,
) -> ShardView:
    """Build the column-compressed view of rows ``lo:hi`` of the product.

    Both renumberings go through flag-array lookups (no sorts beyond the
    implicit order of ``np.flatnonzero``), and both are strictly monotone, so
    per-row column order — the kernel invariant the merge relies on — is
    preserved in either direction.
    """
    first, last = int(left.indptr[lo]), int(left.indptr[hi])
    left_cols = left.cols[first:last]
    flags = np.zeros(right.num_rows, dtype=bool)
    flags[left_cols] = True
    needed_rows = np.flatnonzero(flags)
    row_map = np.zeros(right.num_rows, dtype=np.int64)
    row_map[needed_rows] = np.arange(len(needed_rows), dtype=np.int64)
    lengths = (
        right_row_lengths if right_row_lengths is not None else right.row_lengths()
    )[needed_rows]
    sub_indptr = np.zeros(len(needed_rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=sub_indptr[1:])
    total = int(sub_indptr[-1])
    positions = np.repeat(right.indptr[needed_rows] - sub_indptr[:-1], lengths)
    positions += np.arange(total, dtype=np.int64)
    sub_cols = right.cols[positions]
    col_flags = np.zeros(right.num_cols, dtype=bool)
    col_flags[sub_cols] = True
    local_cols = np.flatnonzero(col_flags)
    col_map = np.zeros(right.num_cols, dtype=np.int64)
    col_map[local_cols] = np.arange(len(local_cols), dtype=np.int64)
    return ShardView(
        row_start=lo,
        left_indptr=left.indptr[lo : hi + 1] - first,
        left_cols=row_map[left_cols],
        left_data=left.data[first:last],
        right_indptr=sub_indptr,
        right_cols=col_map[sub_cols],
        right_data=right.data[positions],
        local_cols=local_cols,
    )


def run_shard_task(view: ShardView, block_entries: Optional[int] = None) -> ShardResult:
    """Multiply one shard view through the serial kernel.

    Module-level (not a closure) so process pools can pickle it; the view's
    arrays are the only payload either direction.
    """
    left = CsrMatrix(
        indptr=view.left_indptr,
        cols=view.left_cols,
        data=view.left_data,
        num_cols=len(view.right_indptr) - 1,
    )
    right = CsrMatrix(
        indptr=view.right_indptr,
        cols=view.right_cols,
        data=view.right_data,
        num_cols=len(view.local_cols),
    )
    product, work = csr_spgemm(left, right, block_entries=block_entries)
    return ShardResult(
        row_start=view.row_start,
        num_rows=left.num_rows,
        row_lengths=np.diff(product.indptr),
        cols=view.local_cols[product.cols],
        data=product.data,
        work=work,
    )


def merge_shard_results(
    results: Sequence[ShardResult], num_rows: int, num_cols: int
) -> tuple[CsrMatrix, int]:
    """Concatenate per-shard rows (already in shard index order) into one CSR.

    Deterministic by construction: the caller supplies results in plan
    order, shards cover disjoint increasing row ranges, and each shard's rows
    arrive column-sorted in global ids, so this is the serial kernel's exact
    output layout.
    """
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    lengths = np.concatenate(
        [np.zeros(0, dtype=np.int64)] + [r.row_lengths for r in results]
    )
    np.cumsum(lengths, out=indptr[1:])
    product = CsrMatrix(
        indptr=indptr,
        cols=np.concatenate(
            [np.zeros(0, dtype=np.int64)] + [r.cols for r in results]
        ),
        data=np.concatenate(
            [np.zeros(0, dtype=np.int64)] + [r.data for r in results]
        ),
        num_cols=num_cols,
    )
    return product, int(sum(r.work for r in results))


def available_cores() -> int:
    """Best-effort count of cores this process may use."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class ShardExecutor:
    """Plans, dispatches, and merges shard-parallel SpGEMM products.

    ``workers=1`` (the default everywhere) is an exact pass-through to the
    serial kernel — no planning, no compression, no pool.  With more workers
    the executor builds a :class:`ShardPlan` of ``workers * overshard``
    blocks and runs them under ``policy``:

    * ``auto`` — inline when the host grants the pool no parallelism
      (``effective_parallelism() == 1``); otherwise a process pool when the
      per-shard work amortizes fork + pickle (see
      :data:`repro.matmul.omega.PROCESS_SHARD_OVERHEAD`), and a thread pool
      for smaller products, where the kernel's GIL-releasing numpy passes
      still overlap but nothing pays serialization;
    * ``serial`` / ``thread`` / ``process`` — force that vehicle.

    Pools are created lazily, reused across products, and released by
    :meth:`close` (the executor is also a context manager).  Results merge
    in plan order regardless of completion order, so every policy returns
    bit-identical output — the policy is pure performance.
    """

    def __init__(
        self,
        workers: int = 1,
        policy: str = "auto",
        overshard: int = DEFAULT_OVERSHARD,
        block_entries: Optional[int] = None,
        min_shard_work: int = MIN_SHARD_WORK,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be positive, got {workers}")
        if policy not in SHARD_POLICIES:
            raise ConfigurationError(
                f"unknown shard policy {policy!r}; expected one of {SHARD_POLICIES}"
            )
        if overshard < 1:
            raise ConfigurationError(f"overshard must be positive, got {overshard}")
        self.workers = workers
        self.policy = policy
        self.overshard = overshard
        self.block_entries = block_entries
        self.min_shard_work = min_shard_work
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None

    # -- policy -------------------------------------------------------------

    def effective_parallelism(self) -> int:
        """How many shard tasks can truly run at once on this host."""
        return max(1, min(self.workers, available_cores()))

    def resolve_policy(self, total_work: int, num_shards: int) -> str:
        """Pick the execution vehicle for one product under ``auto``."""
        if self.policy != "auto":
            return self.policy
        if self.workers == 1:
            return "serial"
        if self.effective_parallelism() == 1:
            # A pool cannot help; the shard plan itself (column compression,
            # small dense-scratch merges) is the whole win.
            return "serial"
        per_shard_cost = total_work * CSR_OP_COST / max(num_shards, 1)
        if per_shard_cost < PROCESS_SHARD_OVERHEAD:
            return "thread"
        return "process"

    # -- pools --------------------------------------------------------------

    def _pool(self, kind: str) -> Executor:
        size = self.effective_parallelism()
        if kind == "thread":
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=size, thread_name_prefix="repro-shard"
                )
            return self._thread_pool
        if self._process_pool is None:
            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            self._process_pool = ProcessPoolExecutor(
                max_workers=size, mp_context=context
            )
        return self._process_pool

    def close(self) -> None:
        """Shut down any pools this executor created."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # defensive: don't leak worker processes
        try:
            self.close()
        # repro-lint: broad-except-ok __del__ can run during interpreter
        # teardown, where pool shutdown raises arbitrary errors (RuntimeError
        # from dead executors, TypeError/AttributeError from half-cleared
        # module globals); a destructor must never propagate any of them.
        except Exception:
            pass

    # -- products -----------------------------------------------------------

    def target_shards(self, total_work: int, num_rows: int) -> int:
        """How many shards one product should split into."""
        by_workers = self.workers * self.overshard
        by_work = max(1, total_work // max(self.min_shard_work, 1))
        return max(1, min(by_workers, by_work, num_rows))

    def spgemm(self, left: CsrMatrix, right: CsrMatrix) -> tuple[CsrMatrix, int]:
        """Exact ``left @ right``, bit-identical to :func:`csr_spgemm`."""
        if self.workers == 1 or not left.nnz or not right.nnz:
            return csr_spgemm(left, right, block_entries=self.block_entries)
        total_work = int(right.row_lengths()[left.cols].sum())
        shards = self.target_shards(total_work, left.num_rows)
        if shards <= 1:
            return csr_spgemm(left, right, block_entries=self.block_entries)
        plan = ShardPlan.balanced(left, right, shards)
        if plan.num_shards <= 1:
            return csr_spgemm(left, right, block_entries=self.block_entries)
        policy = self.resolve_policy(total_work, plan.num_shards)
        lengths = right.row_lengths()
        views = [
            extract_shard_view(left, right, lo, hi, right_row_lengths=lengths)
            for lo, hi in plan.ranges()
        ]
        if policy == "serial":
            results = [run_shard_task(view, self.block_entries) for view in views]
        else:
            pool = self._pool(policy)
            # Executor.map preserves submission order, making the merge
            # deterministic even when shards finish out of order.
            results = list(
                pool.map(run_shard_task, views, [self.block_entries] * len(views))
            )
        return merge_shard_results(results, left.num_rows, right.num_cols)
