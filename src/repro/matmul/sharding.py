"""Shard-parallel SpGEMM over row-partitioned CSR operands.

The Gustavson kernel in :mod:`repro.matmul.engine` is single-threaded: one
process walks the row blocks of ``left`` in order.  This module turns that
row seam into a parallel one.  A :class:`ShardPlan` partitions the interned
row-id space into contiguous row blocks balanced by *expansion work* — the
nnz of the expanded intermediate each row produces, not the row count — so a
heavy row costs its shard what it actually costs the kernel.  A
:class:`ShardExecutor` extracts a self-contained, column-compressed view per
shard, fans the per-shard products out over a ``concurrent.futures`` pool
(process pool with pickled shard views, or a thread pool where fork/pickle
overhead would dominate), and merges the per-shard CSR deltas back into one
product deterministically.

Exactness is preserved bit for bit, which the property tests pin against the
serial kernel:

* shards never split a row, so every output row is produced whole by exactly
  one shard;
* per-shard products are integer-exact and key-sorted within each row (the
  kernel's own invariant), and the shard-local -> global column mapping is
  strictly monotone, so mapped rows stay column-sorted;
* exact integer sums are independent of evaluation order, so zero entries
  drop identically;
* shard results are merged in shard index order (``Executor.map`` order, not
  completion order), and shards cover disjoint increasing row ranges, so the
  concatenation *is* the serial CSR layout.

The column compression is the same trick distributed 1D SpGEMM uses to cut
communication: a shard only ships the right-operand rows its left entries
reference, with columns renumbered to the shard's footprint.  Besides
shrinking pickles, this shrinks the kernel's per-block key space, which on
community-structured operands lets the dense-scratch merge run over a few
hundred thousand cells instead of millions — the measured source of the E14
single-host speedup, on top of whatever true parallelism the pool adds.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, InjectedTransientError
from repro.faults.injector import (
    ACTION_KILL_WORKER,
    ACTION_STALL,
    ACTION_TRANSIENT_ERROR,
    SITE_EXECUTOR_TASK,
    FaultInjector,
)
from repro.matmul.engine import CsrMatrix, csr_spgemm
from repro.matmul.omega import CSR_OP_COST, PROCESS_SHARD_OVERHEAD

#: Recognised shard execution policies.  ``auto`` picks per product: inline
#: when the host gives the pool no parallelism, otherwise thread vs process
#: by the cost model below.  ``serial`` forces inline execution of the shard
#: plan (still sharded, still column-compressed — just no pool), which is
#: also the degenerate choice on a single-core host.
SHARD_POLICIES = ("auto", "serial", "thread", "process")

#: Default shards-per-worker factor.  Oversharding keeps the pool busy when
#: shards finish unevenly and shrinks each shard's key space; factor 4 is the
#: measured sweet spot on the E14 community instance (below it the dense
#: scratch stays too large, far above it per-shard overhead creeps back).
DEFAULT_OVERSHARD = 4

#: Smallest expansion work worth a shard of its own.  Below this the plan
#: collapses toward fewer shards, and a product whose *total* work is under
#: the floor short-circuits to the serial kernel outright.
MIN_SHARD_WORK = 1 << 15


class ShardView(NamedTuple):
    """A self-contained, picklable slice of one SpGEMM product.

    ``left_*`` hold the shard's row range of the left operand with columns
    renumbered into the footprint of right rows it references; ``right_*``
    hold exactly those right rows with columns renumbered into the shard's
    output footprint.  ``local_cols`` maps shard-local output columns back to
    global ids; ``row_start`` anchors the shard's rows in the global product.
    """

    row_start: int
    left_indptr: np.ndarray
    left_cols: np.ndarray
    left_data: np.ndarray
    right_indptr: np.ndarray
    right_cols: np.ndarray
    right_data: np.ndarray
    local_cols: np.ndarray


class ShardResult(NamedTuple):
    """One shard's merged product rows, in global column ids."""

    row_start: int
    num_rows: int
    row_lengths: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    work: int


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous row boundaries for one product, balanced by expansion work.

    ``bounds`` has ``num_shards + 1`` entries; shard ``i`` owns rows
    ``bounds[i]:bounds[i + 1]`` of the left operand.  Rows are never split:
    a single row heavier than the even share gets a shard to itself and its
    neighbours rebalance around it.
    """

    bounds: np.ndarray

    @property
    def num_shards(self) -> int:
        return len(self.bounds) - 1

    def ranges(self) -> Iterator[tuple[int, int]]:
        for lo, hi in zip(self.bounds[:-1], self.bounds[1:]):
            yield int(lo), int(hi)

    @classmethod
    def balanced(cls, left: CsrMatrix, right: CsrMatrix, shards: int) -> "ShardPlan":
        """Split ``left``'s rows into at most ``shards`` work-balanced blocks.

        The weight of a row is its expansion size — the summed nnz of the
        right rows its entries select — i.e. exactly the per-row work the
        Gustavson kernel performs.  Boundaries are the positions where the
        cumulative work crosses each even quantile; duplicates collapse, so
        fewer than ``shards`` blocks come back when the matrix is small or
        one row dominates.
        """
        if shards < 1:
            raise ConfigurationError(f"shards must be positive, got {shards}")
        num_rows = left.num_rows
        if num_rows == 0:
            return cls(bounds=np.zeros(1, dtype=np.int64))
        if not left.nnz or shards == 1:
            return cls(bounds=np.array([0, num_rows], dtype=np.int64))
        counts = right.row_lengths()[left.cols]
        expanded = np.zeros(left.nnz + 1, dtype=np.int64)
        np.cumsum(counts, out=expanded[1:])
        work_at_row = expanded[left.indptr]
        targets = work_at_row[-1] * np.arange(1, shards) // shards
        inner = np.searchsorted(work_at_row, targets, side="left")
        bounds = np.unique(
            np.concatenate((np.zeros(1, dtype=np.int64), inner, [num_rows]))
        )
        return cls(bounds=bounds.astype(np.int64, copy=False))


def extract_shard_view(
    left: CsrMatrix,
    right: CsrMatrix,
    lo: int,
    hi: int,
    right_row_lengths: Optional[np.ndarray] = None,
) -> ShardView:
    """Build the column-compressed view of rows ``lo:hi`` of the product.

    Both renumberings go through flag-array lookups (no sorts beyond the
    implicit order of ``np.flatnonzero``), and both are strictly monotone, so
    per-row column order — the kernel invariant the merge relies on — is
    preserved in either direction.
    """
    first, last = int(left.indptr[lo]), int(left.indptr[hi])
    left_cols = left.cols[first:last]
    flags = np.zeros(right.num_rows, dtype=bool)
    flags[left_cols] = True
    needed_rows = np.flatnonzero(flags)
    row_map = np.zeros(right.num_rows, dtype=np.int64)
    row_map[needed_rows] = np.arange(len(needed_rows), dtype=np.int64)
    lengths = (
        right_row_lengths if right_row_lengths is not None else right.row_lengths()
    )[needed_rows]
    sub_indptr = np.zeros(len(needed_rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=sub_indptr[1:])
    total = int(sub_indptr[-1])
    positions = np.repeat(right.indptr[needed_rows] - sub_indptr[:-1], lengths)
    positions += np.arange(total, dtype=np.int64)
    sub_cols = right.cols[positions]
    col_flags = np.zeros(right.num_cols, dtype=bool)
    col_flags[sub_cols] = True
    local_cols = np.flatnonzero(col_flags)
    col_map = np.zeros(right.num_cols, dtype=np.int64)
    col_map[local_cols] = np.arange(len(local_cols), dtype=np.int64)
    return ShardView(
        row_start=lo,
        left_indptr=left.indptr[lo : hi + 1] - first,
        left_cols=row_map[left_cols],
        left_data=left.data[first:last],
        right_indptr=sub_indptr,
        right_cols=col_map[sub_cols],
        right_data=right.data[positions],
        local_cols=local_cols,
    )


def run_shard_task(view: ShardView, block_entries: Optional[int] = None) -> ShardResult:
    """Multiply one shard view through the serial kernel.

    Module-level (not a closure) so process pools can pickle it; the view's
    arrays are the only payload either direction.
    """
    left = CsrMatrix(
        indptr=view.left_indptr,
        cols=view.left_cols,
        data=view.left_data,
        num_cols=len(view.right_indptr) - 1,
    )
    right = CsrMatrix(
        indptr=view.right_indptr,
        cols=view.right_cols,
        data=view.right_data,
        num_cols=len(view.local_cols),
    )
    product, work = csr_spgemm(left, right, block_entries=block_entries)
    return ShardResult(
        row_start=view.row_start,
        num_rows=left.num_rows,
        row_lengths=np.diff(product.indptr),
        cols=view.local_cols[product.cols],
        data=product.data,
        work=work,
    )


def merge_shard_results(
    results: Sequence[ShardResult], num_rows: int, num_cols: int
) -> tuple[CsrMatrix, int]:
    """Concatenate per-shard rows (already in shard index order) into one CSR.

    Deterministic by construction: the caller supplies results in plan
    order, shards cover disjoint increasing row ranges, and each shard's rows
    arrive column-sorted in global ids, so this is the serial kernel's exact
    output layout.
    """
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    lengths = np.concatenate(
        [np.zeros(0, dtype=np.int64)] + [r.row_lengths for r in results]
    )
    np.cumsum(lengths, out=indptr[1:])
    product = CsrMatrix(
        indptr=indptr,
        cols=np.concatenate(
            [np.zeros(0, dtype=np.int64)] + [r.cols for r in results]
        ),
        data=np.concatenate(
            [np.zeros(0, dtype=np.int64)] + [r.data for r in results]
        ),
        num_cols=num_cols,
    )
    return product, int(sum(r.work for r in results))


def run_faulty_shard_task(
    view: ShardView,
    block_entries: Optional[int],
    action: str,
    payload: dict,
) -> ShardResult:
    """:func:`run_shard_task` with an injected fault acted out first.

    Module-level so process pools can pickle it (REP104); the fault's action
    and payload travel as plain values.  ``kill-worker`` dies the hard way
    (``os._exit`` skips cleanup handlers, exactly like a SIGKILLed worker),
    ``stall`` sleeps long enough for the parent's task timeout to fire, and
    ``transient-error`` raises a typed, retryable exception.
    """
    if action == ACTION_KILL_WORKER:
        os._exit(1)
    if action == ACTION_TRANSIENT_ERROR:
        raise InjectedTransientError(
            f"injected transient failure in shard task (row_start={view.row_start})"
        )
    if action == ACTION_STALL:
        time.sleep(float(payload.get("seconds", 0.2)))
        return run_shard_task(view, block_entries)
    raise ConfigurationError(  # pragma: no cover - Fault validation pins pairs
        f"fault action {action!r} is not implemented for shard tasks"
    )


def available_cores() -> int:
    """Best-effort count of cores this process may use."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class ShardExecutor:
    """Plans, dispatches, and merges shard-parallel SpGEMM products.

    ``workers=1`` (the default everywhere) is an exact pass-through to the
    serial kernel — no planning, no compression, no pool.  With more workers
    the executor builds a :class:`ShardPlan` of ``workers * overshard``
    blocks and runs them under ``policy``:

    * ``auto`` — inline when the host grants the pool no parallelism
      (``effective_parallelism() == 1``); otherwise a process pool when the
      per-shard work amortizes fork + pickle (see
      :data:`repro.matmul.omega.PROCESS_SHARD_OVERHEAD`), and a thread pool
      for smaller products, where the kernel's GIL-releasing numpy passes
      still overlap but nothing pays serialization;
    * ``serial`` / ``thread`` / ``process`` — force that vehicle.

    Pools are created lazily, reused across products, and released by
    :meth:`close` (the executor is also a context manager).  Results merge
    in plan order regardless of completion order, so every policy returns
    bit-identical output — the policy is pure performance.

    Fault tolerance: a dispatch that dies (worker killed, pool broken, task
    timeout, transient task error) is retried up to ``max_retries`` times on a
    fresh pool with seeded exponential backoff; when the vehicle keeps
    failing it *degrades* — process pool to thread pool to inline serial —
    recording each step in :attr:`degradations` and notifying ``on_degrade``
    (the engine turns that into an ``executor-degraded`` event).  Because
    every vehicle is bit-identical, degradation trades throughput for
    progress and never touches the result.  ``task_timeout`` bounds how long
    the parent *waits* for each shard result, not the task itself: a
    timed-out pool is abandoned, but a started thread task cannot be
    cancelled and keeps its non-daemon thread until it returns (process-pool
    workers can at least be joined once dead) — :meth:`close` gives every
    abandoned pool a final shutdown pass.  ``injector`` threads a
    :class:`~repro.faults.FaultInjector` through task dispatch for the chaos
    suite; ``None`` costs one attribute check per task.
    """

    #: Failover ladder: who takes over when a vehicle keeps failing.
    _DEGRADE: Dict[str, str] = {"process": "thread", "thread": "serial"}

    #: Dispatch failures that are worth a retry / degradation rather than a
    #: propagated error: a broken pool, a task timeout, OS-level resource
    #: exhaustion (fork/pipe failures surface as OSError), and injected
    #: transient task errors.
    _RETRYABLE = (BrokenExecutor, FuturesTimeoutError, OSError, InjectedTransientError)

    def __init__(
        self,
        workers: int = 1,
        policy: str = "auto",
        overshard: int = DEFAULT_OVERSHARD,
        block_entries: Optional[int] = None,
        min_shard_work: int = MIN_SHARD_WORK,
        max_retries: int = 2,
        task_timeout: Optional[float] = None,
        backoff_base: float = 0.02,
        retry_seed: int = 0,
        injector: Optional[FaultInjector] = None,
        on_degrade: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be positive, got {workers}")
        if policy not in SHARD_POLICIES:
            raise ConfigurationError(
                f"unknown shard policy {policy!r}; expected one of {SHARD_POLICIES}"
            )
        if overshard < 1:
            raise ConfigurationError(f"overshard must be positive, got {overshard}")
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        if task_timeout is not None and task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive or None, got {task_timeout}"
            )
        self.workers = workers
        self.policy = policy
        self.overshard = overshard
        self.block_entries = block_entries
        self.min_shard_work = min_shard_work
        self.max_retries = max_retries
        self.task_timeout = task_timeout
        self.backoff_base = backoff_base
        self.injector = injector
        self.on_degrade = on_degrade
        #: Every degradation step taken, oldest first:
        #: ``{"from": ..., "to": ..., "reason": ...}``.
        self.degradations: List[Dict[str, str]] = []
        self._retry_rng = random.Random(retry_seed)
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        #: Pools dropped on the failure path without waiting.  Their in-flight
        #: tasks may still be running (a timeout cannot cancel a started
        #: thread task), so :meth:`close` gives each a final shutdown pass
        #: instead of leaking them.
        self._abandoned_pools: List[Executor] = []

    # -- policy -------------------------------------------------------------

    def effective_parallelism(self) -> int:
        """How many shard tasks can truly run at once on this host."""
        return max(1, min(self.workers, available_cores()))

    def resolve_policy(self, total_work: int, num_shards: int) -> str:
        """Pick the execution vehicle for one product under ``auto``."""
        if self.policy != "auto":
            return self.policy
        if self.workers == 1:
            return "serial"
        if self.effective_parallelism() == 1:
            # A pool cannot help; the shard plan itself (column compression,
            # small dense-scratch merges) is the whole win.
            return "serial"
        per_shard_cost = total_work * CSR_OP_COST / max(num_shards, 1)
        if per_shard_cost < PROCESS_SHARD_OVERHEAD:
            return "thread"
        return "process"

    # -- pools --------------------------------------------------------------

    def _pool(self, kind: str) -> Executor:
        size = self.effective_parallelism()
        if kind == "thread":
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=size, thread_name_prefix="repro-shard"
                )
            return self._thread_pool
        if self._process_pool is None:
            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            self._process_pool = ProcessPoolExecutor(
                max_workers=size, mp_context=context
            )
        return self._process_pool

    def _discard_pool(self, kind: str, wait: bool = False) -> None:
        """Drop one pool so the next dispatch builds a fresh one.

        Used on the failure path (a broken or timed-out pool is never reused)
        and by :meth:`close`; shutdown errors are swallowed because a pool
        that already broke may refuse even to shut down, and the discard must
        still happen.
        """
        if kind == "thread":
            pool, self._thread_pool = self._thread_pool, None
        elif kind == "process":
            pool, self._process_pool = self._process_pool, None
        else:
            return
        if pool is None:
            return
        try:
            pool.shutdown(wait=wait, cancel_futures=not wait)
        # repro-lint: broad-except-ok shutting down a pool whose workers died
        # can raise arbitrary errors (BrokenProcessPool bookkeeping,
        # OSError on dead pipes); discarding must succeed regardless.
        except Exception:
            pass
        if not wait:
            # The pool may still have tasks running — a shutdown(wait=False)
            # cannot cancel started work, only pending futures.  Keep a
            # reference so close() can try again once the work has (likely)
            # drained, rather than leaking live threads/processes.
            self._abandoned_pools.append(pool)

    def close(self) -> None:
        """Shut down any pools this executor created.

        Idempotent, and safe to call after a pool broke mid-task: a shutdown
        that raises still leaves the pool discarded, so no worker processes
        leak and a later :meth:`spgemm` builds fresh pools.  Pools abandoned
        on the failure path get a final shutdown pass: process pools are
        joined (their workers may already be dead), thread pools get a
        non-blocking cancel — Python offers no way to kill a thread, so a
        genuinely hung thread task keeps its non-daemon thread alive until it
        returns (see ``task_timeout``).
        """
        self._discard_pool("thread", wait=True)
        self._discard_pool("process", wait=True)
        abandoned, self._abandoned_pools = self._abandoned_pools, []
        for pool in abandoned:
            try:
                pool.shutdown(
                    wait=isinstance(pool, ProcessPoolExecutor), cancel_futures=True
                )
            # repro-lint: broad-except-ok same as _discard_pool: a broken
            # pool may refuse even to shut down, and close() must not raise.
            except Exception:
                pass

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # defensive: don't leak worker processes
        try:
            self.close()
        # repro-lint: broad-except-ok __del__ can run during interpreter
        # teardown, where pool shutdown raises arbitrary errors (RuntimeError
        # from dead executors, TypeError/AttributeError from half-cleared
        # module globals); a destructor must never propagate any of them.
        except Exception:
            pass

    # -- products -----------------------------------------------------------

    def target_shards(self, total_work: int, num_rows: int) -> int:
        """How many shards one product should split into."""
        by_workers = self.workers * self.overshard
        by_work = max(1, total_work // max(self.min_shard_work, 1))
        return max(1, min(by_workers, by_work, num_rows))

    def spgemm(self, left: CsrMatrix, right: CsrMatrix) -> tuple[CsrMatrix, int]:
        """Exact ``left @ right``, bit-identical to :func:`csr_spgemm`."""
        if self.workers == 1 or not left.nnz or not right.nnz:
            return csr_spgemm(left, right, block_entries=self.block_entries)
        total_work = int(right.row_lengths()[left.cols].sum())
        shards = self.target_shards(total_work, left.num_rows)
        if shards <= 1:
            return csr_spgemm(left, right, block_entries=self.block_entries)
        plan = ShardPlan.balanced(left, right, shards)
        if plan.num_shards <= 1:
            return csr_spgemm(left, right, block_entries=self.block_entries)
        policy = self.resolve_policy(total_work, plan.num_shards)
        lengths = right.row_lengths()
        views = [
            extract_shard_view(left, right, lo, hi, right_row_lengths=lengths)
            for lo, hi in plan.ranges()
        ]
        results = self._run_views(views, policy)
        return merge_shard_results(results, left.num_rows, right.num_cols)

    # -- fault-tolerant dispatch ---------------------------------------------

    def _run_views(self, views: Sequence[ShardView], policy: str) -> List[ShardResult]:
        """Dispatch the shard views, retrying and degrading on failure.

        Each vehicle gets ``max_retries`` fresh-pool retries with seeded
        exponential backoff before the ladder steps down; inline serial is the
        floor — when even it keeps failing, the error propagates.
        """
        vehicle = policy
        while True:
            attempt = 0
            while True:
                try:
                    return self._dispatch(views, vehicle)
                except self._RETRYABLE as error:
                    self._discard_pool(vehicle)
                    attempt += 1
                    if attempt <= self.max_retries:
                        self._backoff(attempt)
                        continue
                    successor = self._DEGRADE.get(vehicle)
                    if successor is None:
                        raise
                    self._note_degrade(vehicle, successor, error)
                    vehicle = successor
                    break

    def _dispatch(self, views: Sequence[ShardView], vehicle: str) -> List[ShardResult]:
        """One attempt: run every view on ``vehicle``, in plan order.

        Futures are collected via ``submit`` and resolved in submission order
        (not completion order), preserving the deterministic merge; each
        ``result`` call carries the task timeout.
        """
        if vehicle == "serial":
            results = []
            for view in views:
                fault = self._task_fault(vehicle)
                if fault is None:
                    results.append(run_shard_task(view, self.block_entries))
                else:
                    results.append(
                        run_faulty_shard_task(
                            view, self.block_entries, fault.action, dict(fault.payload)
                        )
                    )
            return results
        pool = self._pool(vehicle)
        futures = []
        for view in views:
            fault = self._task_fault(vehicle)
            if fault is None:
                futures.append(pool.submit(run_shard_task, view, self.block_entries))
            else:
                futures.append(
                    pool.submit(
                        run_faulty_shard_task,
                        view,
                        self.block_entries,
                        fault.action,
                        dict(fault.payload),
                    )
                )
        return [future.result(timeout=self.task_timeout) for future in futures]

    def _task_fault(self, vehicle: str):
        """The injected fault due for this task dispatch, if any.

        ``kill-worker`` only makes sense inside a process pool; on the thread
        and serial vehicles it is downgraded to a transient error, because
        ``os._exit`` there would kill the engine process, not a worker.
        """
        if self.injector is None:
            return None
        fault = self.injector.check(SITE_EXECUTOR_TASK)
        if fault is None:
            return None
        if fault.action == ACTION_KILL_WORKER and vehicle != "process":
            fault = replace(fault, action=ACTION_TRANSIENT_ERROR)
        return fault

    def _backoff(self, attempt: int) -> None:
        """Seeded exponential backoff with jitter before a same-vehicle retry."""
        delay = self.backoff_base * (2 ** (attempt - 1)) * (0.5 + self._retry_rng.random())
        if delay > 0:
            time.sleep(delay)

    def _note_degrade(self, from_vehicle: str, to_vehicle: str, error: BaseException) -> None:
        entry = {
            "from": from_vehicle,
            "to": to_vehicle,
            "reason": f"{type(error).__name__}: {error}",
        }
        self.degradations.append(entry)
        if self.on_degrade is not None:
            self.on_degrade(from_vehicle, to_vehicle, entry["reason"])
