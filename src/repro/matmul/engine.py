"""Matrix representations and multiplication backends.

The algorithms of the paper manipulate two kinds of matrices:

* the 0/1 relation matrices ``A``, ``B``, ``C`` (and their class-restricted
  submatrices such as ``A^{H*}`` or ``B_{i,DD}``), and
* integer *count* matrices such as ``A^{*S} · B^{S*}`` (wedge counts) or
  ``A^{HS} · B^{SS} · C^{SH}`` (3-path counts).

Both are naturally sparse and indexed by vertex labels rather than integer
positions, so the workhorse representation here is :class:`CountMatrix` — a
dictionary-of-dictionaries sparse integer matrix keyed by arbitrary hashable
labels.  It supports the operations the counters need: point updates, row and
column access, addition (used for the "negative edge" trick of Section 3.3),
and multiplication.

Multiplication can run on two backends:

* :class:`SparseBackend` — dictionary-based sparse-sparse product, cheap when
  the operands are sparse (new-phase / per-chunk matrices).
* :class:`DenseBackend` — converts to dense ``numpy`` arrays and uses BLAS.
  This plays the role of *fast matrix multiplication* for the old-phase
  products; the asymptotic exponent is modelled separately in
  :mod:`repro.matmul.omega`.

:class:`MatmulEngine` picks a backend (or honours an explicit choice) and
reports the work it performed to an optional cost callback, which the
instrumentation layer uses to account matrix work against the phase budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError

Label = Hashable


class CountMatrix:
    """A sparse integer matrix keyed by arbitrary row/column labels.

    Entries with value zero are removed eagerly so iteration only touches
    non-zeros; this matters because the counters add and subtract contributions
    (insertions and deletions) and most entries cancel over time.
    """

    __slots__ = ("_rows", "_nnz")

    def __init__(self, entries: Mapping[tuple[Label, Label], int] | None = None) -> None:
        self._rows: Dict[Label, Dict[Label, int]] = {}
        self._nnz = 0
        if entries:
            for (row, column), value in entries.items():
                self.add(row, column, value)

    # -- point access --------------------------------------------------------
    def get(self, row: Label, column: Label) -> int:
        """The entry at ``(row, column)``; zero when absent."""
        return self._rows.get(row, _EMPTY_DICT).get(column, 0)

    def add(self, row: Label, column: Label, delta: int) -> None:
        """Add ``delta`` to the entry at ``(row, column)``.

        Entries that become zero are deleted, keeping the matrix sparse.
        """
        if delta == 0:
            return
        row_map = self._rows.get(row)
        if row_map is None:
            row_map = {}
            self._rows[row] = row_map
        current = row_map.get(column, 0)
        updated = current + delta
        if current == 0:
            self._nnz += 1
        if updated == 0:
            del row_map[column]
            self._nnz -= 1
            if not row_map:
                del self._rows[row]
        else:
            row_map[column] = updated

    def set(self, row: Label, column: Label, value: int) -> None:
        """Set the entry at ``(row, column)`` to ``value``."""
        self.add(row, column, value - self.get(row, column))

    # -- bulk access ----------------------------------------------------------
    def row(self, row: Label) -> Mapping[Label, int]:
        """The non-zero entries of one row (live view; do not mutate)."""
        return self._rows.get(row, _EMPTY_DICT)

    def rows(self) -> Iterator[tuple[Label, Mapping[Label, int]]]:
        """Iterate over ``(row_label, row_mapping)`` pairs."""
        return iter(self._rows.items())

    def items(self) -> Iterator[tuple[Label, Label, int]]:
        """Iterate over all non-zero entries as ``(row, column, value)``."""
        for row, row_map in self._rows.items():
            for column, value in row_map.items():
                yield (row, column, value)

    def row_labels(self) -> set[Label]:
        return set(self._rows)

    def column_labels(self) -> set[Label]:
        labels: set[Label] = set()
        for row_map in self._rows.values():
            labels.update(row_map)
        return labels

    @property
    def nnz(self) -> int:
        """Number of non-zero entries."""
        return self._nnz

    def __bool__(self) -> bool:
        return self._nnz > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CountMatrix):
            return self._rows == other._rows
        return NotImplemented

    def __repr__(self) -> str:
        return f"CountMatrix(nnz={self._nnz})"

    # -- linear-algebra style operations --------------------------------------
    def copy(self) -> "CountMatrix":
        clone = CountMatrix()
        clone._rows = {row: dict(row_map) for row, row_map in self._rows.items()}
        clone._nnz = self._nnz
        return clone

    def add_matrix(self, other: "CountMatrix", scale: int = 1) -> None:
        """In-place ``self += scale * other``.

        This is the aggregation step of the warm-up algorithm: once the data
        structure of chunk ``B_{i-1}`` is computed it is added to the running
        sum for ``B_{<i-1}`` (Section 3.2), with deletions represented as
        negative entries.
        """
        for row, column, value in other.items():
            self.add(row, column, scale * value)

    def transpose(self) -> "CountMatrix":
        result = CountMatrix()
        for row, column, value in self.items():
            result.add(column, row, value)
        return result

    def to_dense(
        self, row_order: list[Label], column_order: list[Label], dtype=np.int64
    ) -> np.ndarray:
        """Densify using explicit row/column orders."""
        row_index = {label: position for position, label in enumerate(row_order)}
        column_index = {label: position for position, label in enumerate(column_order)}
        dense = np.zeros((len(row_order), len(column_order)), dtype=dtype)
        for row, column, value in self.items():
            i = row_index.get(row)
            j = column_index.get(column)
            if i is not None and j is not None:
                dense[i, j] = value
        return dense

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        row_order: Sequence[Label],
        column_order: Optional[Sequence[Label]] = None,
    ) -> "CountMatrix":
        """Build a sparse matrix from a dense array and its label orders.

        ``column_order`` defaults to ``row_order`` (square matrices).  Rows
        are populated directly from the nonzero mask in one pass, so the
        batched counters can promote a vectorized rebuild into the
        label-indexed representation without per-entry ``add`` overhead.
        """
        if column_order is None:
            column_order = row_order
        result = cls()
        nonzero_rows, nonzero_columns = np.nonzero(dense)
        values = dense[nonzero_rows, nonzero_columns]
        rows = result._rows
        for i, j, value in zip(
            nonzero_rows.tolist(), nonzero_columns.tolist(), values.tolist()
        ):
            row_label = row_order[i]
            row_map = rows.get(row_label)
            if row_map is None:
                row_map = {}
                rows[row_label] = row_map
            row_map[column_order[j]] = int(value)
        result._nnz = int(len(values))
        return result

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Label, Label]], value: int = 1) -> "CountMatrix":
        """Build a 0/1 (or constant-valued) matrix from an iterable of pairs."""
        result = cls()
        for row, column in pairs:
            result.add(row, column, value)
        return result


@dataclass
class MultiplyStats:
    """Work accounting for one matrix product."""

    backend: str
    left_shape: tuple[int, int]
    right_shape: tuple[int, int]
    multiplications: int
    output_nnz: int


class SparseBackend:
    """Dictionary-based sparse-sparse multiplication.

    Cost is proportional to ``sum over non-zeros (i, k) of left of
    nnz(row k of right)``, which is exactly the combinatorial cost the paper's
    "iterate over neighbors" arguments charge.
    """

    name = "sparse"

    def multiply(self, left: CountMatrix, right: CountMatrix) -> tuple[CountMatrix, MultiplyStats]:
        result = CountMatrix()
        multiplications = 0
        for row, row_map in left.rows():
            for middle, left_value in row_map.items():
                right_row = right.row(middle)
                multiplications += len(right_row)
                for column, right_value in right_row.items():
                    result.add(row, column, left_value * right_value)
        stats = MultiplyStats(
            backend=self.name,
            left_shape=(len(left.row_labels()), len(left.column_labels())),
            right_shape=(len(right.row_labels()), len(right.column_labels())),
            multiplications=multiplications,
            output_nnz=result.nnz,
        )
        return result, stats


class DenseBackend:
    """Dense ``numpy``/BLAS multiplication over the trimmed label sets.

    The label universe is trimmed to rows/columns that actually appear, the
    analogue of the paper's observation (Claim 3.4) that zero rows and columns
    "effectively reduce the dimension for computational purposes".
    """

    name = "dense"

    def multiply(self, left: CountMatrix, right: CountMatrix) -> tuple[CountMatrix, MultiplyStats]:
        row_order = sorted(left.row_labels(), key=repr)
        middle_order = sorted(left.column_labels() | right.row_labels(), key=repr)
        column_order = sorted(right.column_labels(), key=repr)
        if not row_order or not middle_order or not column_order:
            stats = MultiplyStats(
                backend=self.name,
                left_shape=(len(row_order), len(middle_order)),
                right_shape=(len(middle_order), len(column_order)),
                multiplications=0,
                output_nnz=0,
            )
            return CountMatrix(), stats
        left_dense = left.to_dense(row_order, middle_order)
        right_dense = right.to_dense(middle_order, column_order)
        product = left_dense @ right_dense
        result = CountMatrix.from_dense(product, row_order, column_order)
        stats = MultiplyStats(
            backend=self.name,
            left_shape=left_dense.shape,
            right_shape=right_dense.shape,
            multiplications=len(row_order) * len(middle_order) * len(column_order),
            output_nnz=result.nnz,
        )
        return result, stats


CostCallback = Callable[[MultiplyStats], None]


@dataclass
class MatmulEngine:
    """Facade that selects a backend and reports work to a cost callback.

    ``dense_threshold`` controls the automatic choice: when the estimated
    sparse cost exceeds the dense cost times this factor the dense (FMM-proxy)
    backend is used.  The counters pass ``backend="dense"`` explicitly for the
    old-phase products — the whole point of the paper is that those products
    go through fast matrix multiplication.
    """

    dense_threshold: float = 1.0
    cost_callback: Optional[CostCallback] = None
    _sparse: SparseBackend = field(default_factory=SparseBackend)
    _dense: DenseBackend = field(default_factory=DenseBackend)

    def multiply(
        self, left: CountMatrix, right: CountMatrix, backend: str = "auto"
    ) -> CountMatrix:
        """Multiply two count matrices and return the product."""
        chosen = self._choose_backend(left, right, backend)
        result, stats = chosen.multiply(left, right)
        if self.cost_callback is not None:
            self.cost_callback(stats)
        return result

    def multiply_chain(self, matrices: list[CountMatrix], backend: str = "auto") -> CountMatrix:
        """Multiply a chain of matrices left to right (e.g. ``A · B · C``)."""
        if not matrices:
            raise ConfigurationError("multiply_chain requires at least one matrix")
        result = matrices[0]
        for matrix in matrices[1:]:
            result = self.multiply(result, matrix, backend=backend)
        return result

    def _choose_backend(self, left: CountMatrix, right: CountMatrix, backend: str):
        if backend == "sparse":
            return self._sparse
        if backend == "dense":
            return self._dense
        if backend != "auto":
            raise ConfigurationError(
                f"backend must be 'auto', 'sparse' or 'dense', got {backend!r}"
            )
        sparse_cost = self._estimate_sparse_cost(left, right)
        dense_cost = self._estimate_dense_cost(left, right)
        if dense_cost == 0:
            return self._sparse
        if sparse_cost > self.dense_threshold * dense_cost:
            return self._dense
        return self._sparse

    @staticmethod
    def _estimate_sparse_cost(left: CountMatrix, right: CountMatrix) -> int:
        right_row_sizes = {row: len(row_map) for row, row_map in right.rows()}
        cost = 0
        for _, row_map in left.rows():
            for middle in row_map:
                cost += right_row_sizes.get(middle, 0)
        return cost

    @staticmethod
    def _estimate_dense_cost(left: CountMatrix, right: CountMatrix) -> int:
        rows = len(left.row_labels())
        middles = len(left.column_labels() | right.row_labels())
        columns = len(right.column_labels())
        return rows * middles * columns


def multiply_dense_arrays(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Multiply two dense arrays with shape validation.

    A small helper for code paths that already hold dense arrays (the
    brute-force counter, the phase scheduler's row blocks).
    """
    if left.ndim != 2 or right.ndim != 2:
        raise DimensionMismatchError(
            f"expected 2-D arrays, got shapes {left.shape} and {right.shape}"
        )
    if left.shape[1] != right.shape[0]:
        raise DimensionMismatchError(
            f"cannot multiply shapes {left.shape} and {right.shape}"
        )
    return left @ right


#: Shared immutable empty mapping returned for absent rows.
_EMPTY_DICT: Dict[Label, int] = {}
