"""Matrix representations and multiplication backends.

The algorithms of the paper manipulate two kinds of matrices:

* the 0/1 relation matrices ``A``, ``B``, ``C`` (and their class-restricted
  submatrices such as ``A^{H*}`` or ``B_{i,DD}``), and
* integer *count* matrices such as ``A^{*S} · B^{S*}`` (wedge counts) or
  ``A^{HS} · B^{SS} · C^{SH}`` (3-path counts).

Both are naturally sparse and indexed by vertex labels rather than integer
positions, so the workhorse representation here is :class:`CountMatrix` — a
dictionary-of-dictionaries sparse integer matrix keyed by arbitrary hashable
labels.  It supports the operations the counters need: point updates, row and
column access, addition (used for the "negative edge" trick of Section 3.3),
and multiplication.

Multiplication can run on two backends:

* :class:`SparseBackend` — dictionary-based sparse-sparse product, cheap when
  the operands are sparse (new-phase / per-chunk matrices).
* :class:`DenseBackend` — converts to dense ``numpy`` arrays and uses BLAS.
  This plays the role of *fast matrix multiplication* for the old-phase
  products; the asymptotic exponent is modelled separately in
  :mod:`repro.matmul.omega`.

:class:`MatmulEngine` picks a backend (or honours an explicit choice) and
reports the work it performed to an optional cost callback, which the
instrumentation layer uses to account matrix work against the phase budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError

Label = Hashable


def expand_csr_rows(indptr: np.ndarray, rows: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-entry row indices for a CSR structure.

    Expands ``indptr`` into one row index per stored entry — the shared core
    of every CSR-to-dense scatter (graph adjacency exports and the cached
    dense backend).  ``rows`` remaps row positions (defaults to
    ``0..len(indptr)-2``, the identity).
    """
    if rows is None:
        rows = np.arange(len(indptr) - 1, dtype=np.int64)
    return np.repeat(rows, np.diff(indptr))


@dataclass(frozen=True)
class CountMatrixCSR:
    """An interned CSR snapshot of a :class:`CountMatrix`.

    ``row_order``/``col_order`` give each distinct label a contiguous integer
    position (insertion order — no repr sorting); ``col_ids`` holds, for every
    stored entry, the *position* of its column label, so dense exports become
    one vectorized scatter instead of two dict lookups per entry.  The
    snapshot is cached on the matrix and keyed to its mutation version: it is
    built at most once between mutations and reused across every multiply in a
    chain (see :class:`DenseBackend`).
    """

    version: int
    row_order: list
    col_order: list
    col_index: Dict[Label, int]
    indptr: np.ndarray
    col_ids: np.ndarray
    data: np.ndarray


class CountMatrix:
    """A sparse integer matrix keyed by arbitrary row/column labels.

    Entries with value zero are removed eagerly so iteration only touches
    non-zeros; this matters because the counters add and subtract contributions
    (insertions and deletions) and most entries cancel over time.

    The matrix maintains a per-column row count alongside the entries (so
    :meth:`column_labels` never rescans the rows) and a mutation version that
    keys the cached interned CSR export of :meth:`csr` — any mutation
    invalidates the cache, any number of reads between mutations share it.
    """

    __slots__ = ("_rows", "_nnz", "_col_counts", "_version", "_csr_cache")

    def __init__(self, entries: Mapping[tuple[Label, Label], int] | None = None) -> None:
        self._rows: Dict[Label, Dict[Label, int]] = {}
        self._nnz = 0
        #: For every column label, the number of rows with a non-zero there.
        self._col_counts: Dict[Label, int] = {}
        self._version = 0
        self._csr_cache: Optional[CountMatrixCSR] = None
        if entries:
            for (row, column), value in entries.items():
                self.add(row, column, value)

    # -- point access --------------------------------------------------------
    def get(self, row: Label, column: Label) -> int:
        """The entry at ``(row, column)``; zero when absent."""
        return self._rows.get(row, _EMPTY_DICT).get(column, 0)

    def add(self, row: Label, column: Label, delta: int) -> None:
        """Add ``delta`` to the entry at ``(row, column)``.

        Entries that become zero are deleted, keeping the matrix sparse.
        """
        if delta == 0:
            return
        self._version += 1
        row_map = self._rows.get(row)
        if row_map is None:
            row_map = {}
            self._rows[row] = row_map
        current = row_map.get(column, 0)
        updated = current + delta
        if current == 0:
            self._nnz += 1
            self._col_counts[column] = self._col_counts.get(column, 0) + 1
        if updated == 0:
            del row_map[column]
            self._nnz -= 1
            remaining = self._col_counts[column] - 1
            if remaining:
                self._col_counts[column] = remaining
            else:
                del self._col_counts[column]
            if not row_map:
                del self._rows[row]
        else:
            row_map[column] = updated

    def set(self, row: Label, column: Label, value: int) -> None:
        """Set the entry at ``(row, column)`` to ``value``."""
        self.add(row, column, value - self.get(row, column))

    # -- bulk access ----------------------------------------------------------
    def row(self, row: Label) -> Mapping[Label, int]:
        """The non-zero entries of one row (live view; do not mutate)."""
        return self._rows.get(row, _EMPTY_DICT)

    def rows(self) -> Iterator[tuple[Label, Mapping[Label, int]]]:
        """Iterate over ``(row_label, row_mapping)`` pairs."""
        return iter(self._rows.items())

    def items(self) -> Iterator[tuple[Label, Label, int]]:
        """Iterate over all non-zero entries as ``(row, column, value)``."""
        for row, row_map in self._rows.items():
            for column, value in row_map.items():
                yield (row, column, value)

    def row_labels(self) -> set[Label]:
        return set(self._rows)

    def column_labels(self) -> set[Label]:
        """Labels with at least one non-zero column entry.

        Served from the maintained per-column counts — O(distinct columns)
        instead of a scan over every stored entry.
        """
        return set(self._col_counts)

    @property
    def num_row_labels(self) -> int:
        """Number of distinct row labels (without materializing the set)."""
        return len(self._rows)

    @property
    def num_column_labels(self) -> int:
        """Number of distinct column labels (without materializing the set)."""
        return len(self._col_counts)

    @property
    def nnz(self) -> int:
        """Number of non-zero entries."""
        return self._nnz

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever any entry changes."""
        return self._version

    def csr(self) -> CountMatrixCSR:
        """The cached interned CSR snapshot of the current contents.

        Built lazily on first use after a mutation and shared by every reader
        until the next mutation; the dense multiply backend keys its exports
        on it so a ``multiply_chain`` re-uses each operand's interning instead
        of re-walking label dicts per product.
        """
        cache = self._csr_cache
        if cache is not None and cache.version == self._version:
            return cache
        row_order = list(self._rows)
        col_order = list(self._col_counts)
        col_index = {label: position for position, label in enumerate(col_order)}
        indptr = np.zeros(len(row_order) + 1, dtype=np.int64)
        col_ids = np.empty(self._nnz, dtype=np.int64)
        data = np.empty(self._nnz, dtype=np.int64)
        cursor = 0
        for position, row_map in enumerate(self._rows.values()):
            for column, value in row_map.items():
                col_ids[cursor] = col_index[column]
                data[cursor] = value
                cursor += 1
            indptr[position + 1] = cursor
        cache = CountMatrixCSR(
            version=self._version,
            row_order=row_order,
            col_order=col_order,
            col_index=col_index,
            indptr=indptr,
            col_ids=col_ids,
            data=data,
        )
        self._csr_cache = cache
        return cache

    def __bool__(self) -> bool:
        return self._nnz > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CountMatrix):
            return self._rows == other._rows
        return NotImplemented

    def __repr__(self) -> str:
        return f"CountMatrix(nnz={self._nnz})"

    # -- linear-algebra style operations --------------------------------------
    def copy(self) -> "CountMatrix":
        clone = CountMatrix()
        clone._rows = {row: dict(row_map) for row, row_map in self._rows.items()}
        clone._nnz = self._nnz
        clone._col_counts = dict(self._col_counts)
        return clone

    def add_matrix(self, other: "CountMatrix", scale: int = 1) -> None:
        """In-place ``self += scale * other``.

        This is the aggregation step of the warm-up algorithm: once the data
        structure of chunk ``B_{i-1}`` is computed it is added to the running
        sum for ``B_{<i-1}`` (Section 3.2), with deletions represented as
        negative entries.
        """
        for row, column, value in other.items():
            self.add(row, column, scale * value)

    def transpose(self) -> "CountMatrix":
        result = CountMatrix()
        for row, column, value in self.items():
            result.add(column, row, value)
        return result

    def to_dense(
        self, row_order: list[Label], column_order: list[Label], dtype=np.int64
    ) -> np.ndarray:
        """Densify using explicit row/column orders."""
        row_index = {label: position for position, label in enumerate(row_order)}
        column_index = {label: position for position, label in enumerate(column_order)}
        dense = np.zeros((len(row_order), len(column_order)), dtype=dtype)
        for row, column, value in self.items():
            i = row_index.get(row)
            j = column_index.get(column)
            if i is not None and j is not None:
                dense[i, j] = value
        return dense

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        row_order: Sequence[Label],
        column_order: Optional[Sequence[Label]] = None,
    ) -> "CountMatrix":
        """Build a sparse matrix from a dense array and its label orders.

        ``column_order`` defaults to ``row_order`` (square matrices).  Rows
        are populated one ``dict(zip(...))`` per non-empty row from the
        row-major nonzero mask (``np.nonzero`` yields row-sorted indices), so
        the batched counters can promote a vectorized rebuild into the
        label-indexed representation without per-entry ``add`` overhead.
        """
        if column_order is None:
            column_order = row_order
        result = cls()
        nonzero_rows, nonzero_columns = np.nonzero(dense)
        if not len(nonzero_rows):
            return result
        values = dense[nonzero_rows, nonzero_columns]
        if len(set(row_order)) != len(row_order) or len(set(column_order)) != len(
            column_order
        ):
            # Rare degenerate input: duplicate labels collide, so colliding
            # entries must *sum* (add() semantics) and the bookkeeping must
            # reflect the merged result — take the slow exact path.
            for i, j, value in zip(
                nonzero_rows.tolist(), nonzero_columns.tolist(), values.tolist()
            ):
                result.add(row_order[i], column_order[j], int(value))
            return result
        column_labels = np.empty(len(column_order), dtype=object)
        column_labels[:] = list(column_order)
        entry_labels = column_labels[nonzero_columns]
        value_list = values.tolist()
        if values.dtype.kind not in "iu":  # coerce exotic dtypes like add() would
            value_list = [int(value) for value in value_list]
        distinct_rows, starts = np.unique(nonzero_rows, return_index=True)
        boundaries = starts.tolist() + [len(nonzero_rows)]
        rows = result._rows
        for position, i in enumerate(distinct_rows.tolist()):
            begin, end = boundaries[position], boundaries[position + 1]
            rows[row_order[i]] = dict(
                zip(entry_labels[begin:end].tolist(), value_list[begin:end])
            )
        result._nnz = int(len(values))
        distinct_columns, per_column = np.unique(nonzero_columns, return_counts=True)
        result._col_counts = {
            column_order[j]: int(count)
            for j, count in zip(distinct_columns.tolist(), per_column.tolist())
        }
        return result

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Label, Label]], value: int = 1) -> "CountMatrix":
        """Build a 0/1 (or constant-valued) matrix from an iterable of pairs."""
        result = cls()
        for row, column in pairs:
            result.add(row, column, value)
        return result


@dataclass
class MultiplyStats:
    """Work accounting for one matrix product."""

    backend: str
    left_shape: tuple[int, int]
    right_shape: tuple[int, int]
    multiplications: int
    output_nnz: int


class SparseBackend:
    """Dictionary-based sparse-sparse multiplication.

    Cost is proportional to ``sum over non-zeros (i, k) of left of
    nnz(row k of right)``, which is exactly the combinatorial cost the paper's
    "iterate over neighbors" arguments charge.
    """

    name = "sparse"

    def multiply(self, left: CountMatrix, right: CountMatrix) -> tuple[CountMatrix, MultiplyStats]:
        result = CountMatrix()
        multiplications = 0
        for row, row_map in left.rows():
            for middle, left_value in row_map.items():
                right_row = right.row(middle)
                multiplications += len(right_row)
                for column, right_value in right_row.items():
                    result.add(row, column, left_value * right_value)
        stats = MultiplyStats(
            backend=self.name,
            left_shape=(left.num_row_labels, left.num_column_labels),
            right_shape=(right.num_row_labels, right.num_column_labels),
            multiplications=multiplications,
            output_nnz=result.nnz,
        )
        return result, stats


class DenseBackend:
    """Dense ``numpy``/BLAS multiplication over the trimmed label sets.

    The label universe is trimmed to rows/columns that actually appear, the
    analogue of the paper's observation (Claim 3.4) that zero rows and columns
    "effectively reduce the dimension for computational purposes".

    With ``use_csr_cache=True`` (the default) the dense operands are built
    from each matrix's cached interned CSR snapshot (:meth:`CountMatrix.csr`):
    label interning happens once per matrix per mutation, the middle axis is
    aligned by remapping the (few) distinct labels rather than every entry,
    and the scatter into the dense arrays is vectorized.  A ``multiply_chain``
    therefore skips the per-entry label->position dict round-trips of the
    scalar path entirely.  ``use_csr_cache=False`` keeps the original
    label-dict export (used by the E11 benchmark as the scalar baseline).
    """

    name = "dense"

    def __init__(self, use_csr_cache: bool = True) -> None:
        self.use_csr_cache = use_csr_cache

    def multiply(self, left: CountMatrix, right: CountMatrix) -> tuple[CountMatrix, MultiplyStats]:
        if self.use_csr_cache:
            return self._multiply_cached(left, right)
        return self._multiply_scalar(left, right)

    def _empty_stats(self, rows: int, middles: int, columns: int) -> MultiplyStats:
        return MultiplyStats(
            backend=self.name,
            left_shape=(rows, middles),
            right_shape=(middles, columns),
            multiplications=0,
            output_nnz=0,
        )

    def _multiply_cached(
        self, left: CountMatrix, right: CountMatrix
    ) -> tuple[CountMatrix, MultiplyStats]:
        left_csr = left.csr()
        right_csr = right.csr()
        row_order = left_csr.row_order
        column_order = right_csr.col_order
        # Align the middle axis: left columns first, then right rows that are
        # new — only distinct labels are remapped, never individual entries.
        middle_index = dict(left_csr.col_index)
        for label in right_csr.row_order:
            if label not in middle_index:
                middle_index[label] = len(middle_index)
        middles = len(middle_index)
        if not row_order or not middles or not column_order:
            return CountMatrix(), self._empty_stats(len(row_order), middles, len(column_order))
        left_dense = np.zeros((len(row_order), middles), dtype=np.int64)
        if left_csr.data.size:
            left_dense[expand_csr_rows(left_csr.indptr), left_csr.col_ids] = left_csr.data
        right_dense = np.zeros((middles, len(column_order)), dtype=np.int64)
        if right_csr.data.size:
            row_map = np.fromiter(
                (middle_index[label] for label in right_csr.row_order),
                dtype=np.int64,
                count=len(right_csr.row_order),
            )
            rows = expand_csr_rows(right_csr.indptr, row_map)
            right_dense[rows, right_csr.col_ids] = right_csr.data
        product = exact_integer_matmul(left_dense, right_dense)
        result = CountMatrix.from_dense(product, row_order, column_order)
        stats = MultiplyStats(
            backend=self.name,
            left_shape=left_dense.shape,
            right_shape=right_dense.shape,
            multiplications=len(row_order) * middles * len(column_order),
            output_nnz=result.nnz,
        )
        return result, stats

    def _multiply_scalar(
        self, left: CountMatrix, right: CountMatrix
    ) -> tuple[CountMatrix, MultiplyStats]:
        row_order = sorted(left.row_labels(), key=repr)
        middle_order = sorted(left.column_labels() | right.row_labels(), key=repr)
        column_order = sorted(right.column_labels(), key=repr)
        if not row_order or not middle_order or not column_order:
            return CountMatrix(), self._empty_stats(
                len(row_order), len(middle_order), len(column_order)
            )
        left_dense = left.to_dense(row_order, middle_order)
        right_dense = right.to_dense(middle_order, column_order)
        product = left_dense @ right_dense
        result = CountMatrix.from_dense(product, row_order, column_order)
        stats = MultiplyStats(
            backend=self.name,
            left_shape=left_dense.shape,
            right_shape=right_dense.shape,
            multiplications=len(row_order) * len(middle_order) * len(column_order),
            output_nnz=result.nnz,
        )
        return result, stats


CostCallback = Callable[[MultiplyStats], None]


@dataclass
class MatmulEngine:
    """Facade that selects a backend and reports work to a cost callback.

    ``dense_threshold`` controls the automatic choice: when the estimated
    sparse cost exceeds the dense cost times this factor the dense (FMM-proxy)
    backend is used.  The counters pass ``backend="dense"`` explicitly for the
    old-phase products — the whole point of the paper is that those products
    go through fast matrix multiplication.
    """

    dense_threshold: float = 1.0
    cost_callback: Optional[CostCallback] = None
    _sparse: SparseBackend = field(default_factory=SparseBackend)
    _dense: DenseBackend = field(default_factory=DenseBackend)

    def multiply(
        self, left: CountMatrix, right: CountMatrix, backend: str = "auto"
    ) -> CountMatrix:
        """Multiply two count matrices and return the product."""
        chosen = self._choose_backend(left, right, backend)
        result, stats = chosen.multiply(left, right)
        if self.cost_callback is not None:
            self.cost_callback(stats)
        return result

    def multiply_chain(self, matrices: list[CountMatrix], backend: str = "auto") -> CountMatrix:
        """Multiply a chain of matrices left to right (e.g. ``A · B · C``)."""
        if not matrices:
            raise ConfigurationError("multiply_chain requires at least one matrix")
        result = matrices[0]
        for matrix in matrices[1:]:
            result = self.multiply(result, matrix, backend=backend)
        return result

    def _choose_backend(self, left: CountMatrix, right: CountMatrix, backend: str):
        if backend == "sparse":
            return self._sparse
        if backend == "dense":
            return self._dense
        if backend != "auto":
            raise ConfigurationError(
                f"backend must be 'auto', 'sparse' or 'dense', got {backend!r}"
            )
        sparse_cost = self._estimate_sparse_cost(left, right)
        dense_cost = self._estimate_dense_cost(left, right)
        if dense_cost == 0:
            return self._sparse
        if sparse_cost > self.dense_threshold * dense_cost:
            return self._dense
        return self._sparse

    @staticmethod
    def _estimate_sparse_cost(left: CountMatrix, right: CountMatrix) -> int:
        right_row_sizes = {row: len(row_map) for row, row_map in right.rows()}
        cost = 0
        for _, row_map in left.rows():
            for middle in row_map:
                cost += right_row_sizes.get(middle, 0)
        return cost

    @staticmethod
    def _estimate_dense_cost(left: CountMatrix, right: CountMatrix) -> int:
        rows = len(left.row_labels())
        middles = len(left.column_labels() | right.row_labels())
        columns = len(right.column_labels())
        return rows * middles * columns


#: Largest magnitude a float64 represents exactly (2^53); dot products whose
#: worst case stays strictly below it cannot round.
_FLOAT64_EXACT_BOUND = float(2**53)


def exact_integer_matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Multiply two integer matrices exactly, through BLAS when provably safe.

    numpy routes integer ``@`` through a generic non-BLAS inner loop, which is
    roughly an order of magnitude slower than the float64 GEMM at the sizes
    the batched kernels use.  When every possible dot product is bounded below
    ``2^53`` (``max|left| * max|right| * inner_dim``), the float64 product is
    exact, so it is computed there and cast back; otherwise the integer loop
    is used.  All vectorized counter kernels and the cached dense backend
    funnel their products through this helper.
    """
    if left.size == 0 or right.size == 0:
        return left @ right
    left_max = int(np.abs(left).max())
    right_max = int(np.abs(right).max())
    worst_case = float(left_max) * float(right_max) * max(left.shape[1], 1)
    if worst_case < _FLOAT64_EXACT_BOUND:
        product = left.astype(np.float64) @ right.astype(np.float64)
        return np.rint(product).astype(np.int64)
    return left @ right


def multiply_dense_arrays(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Multiply two dense arrays with shape validation.

    A small helper for code paths that already hold dense arrays (the
    brute-force counter, the phase scheduler's row blocks).
    """
    if left.ndim != 2 or right.ndim != 2:
        raise DimensionMismatchError(
            f"expected 2-D arrays, got shapes {left.shape} and {right.shape}"
        )
    if left.shape[1] != right.shape[0]:
        raise DimensionMismatchError(
            f"cannot multiply shapes {left.shape} and {right.shape}"
        )
    return left @ right


#: Shared immutable empty mapping returned for absent rows.
_EMPTY_DICT: Dict[Label, int] = {}
