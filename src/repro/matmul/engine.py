"""Matrix representations and multiplication backends.

The algorithms of the paper manipulate two kinds of matrices:

* the 0/1 relation matrices ``A``, ``B``, ``C`` (and their class-restricted
  submatrices such as ``A^{H*}`` or ``B_{i,DD}``), and
* integer *count* matrices such as ``A^{*S} · B^{S*}`` (wedge counts) or
  ``A^{HS} · B^{SS} · C^{SH}`` (3-path counts).

Both are naturally sparse and indexed by vertex labels rather than integer
positions, so the workhorse representation here is :class:`CountMatrix` — a
dictionary-of-dictionaries sparse integer matrix keyed by arbitrary hashable
labels.  It supports the operations the counters need: point updates, row and
column access, addition (used for the "negative edge" trick of Section 3.3),
and multiplication.

Multiplication can run on three backends:

* :class:`SparseBackend` — dictionary-based sparse-sparse product, cheap when
  the operands are tiny (a handful of non-zeros, where numpy call overhead
  dominates).
* :class:`CsrBackend` — vectorized integer CSR×CSR SpGEMM (Gustavson-style
  row-block expansion over numpy gathers with sort-reduce merges; exact int64
  accumulation, no scipy).  This is the workhorse for sparse operands: cost is
  proportional to the same combinatorial quantity as the dict backend but the
  per-operation constant is numpy's, not the interpreter's.
* :class:`DenseBackend` — converts to dense ``numpy`` arrays and uses BLAS.
  This plays the role of *fast matrix multiplication* for the old-phase
  products; the asymptotic exponent is modelled separately in
  :mod:`repro.matmul.omega`.

The positional (integer-indexed) :class:`CsrMatrix` value type and the
:func:`csr_spgemm` kernel underneath :class:`CsrBackend` are also used
directly by the counters' batched rebuild hooks, which dispatch between the
dense and CSR kernels through
:class:`repro.matmul.scheduler.ProductDispatcher`.

:class:`MatmulEngine` picks a backend (or honours an explicit choice) and
reports the work it performed to an optional cost callback, which the
instrumentation layer uses to account matrix work against the phase budget.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.kernels import (
    CsrMatrix,
    _FLOAT64_EXACT_BOUND,
    _coalesce_keys,
    _indptr_from_rows,
    csr_linear_combination,
    exact_integer_matmul,
    expand_csr_rows,
)

Label = Hashable


def spgemm_work(left: CsrMatrix, right: CsrMatrix) -> int:
    """The exact expansion size of ``left · right``.

    ``sum over stored entries (i, k) of left of nnz(row k of right)`` — the
    same combinatorial cost the dict backend pays and the paper's
    "iterate over neighbors" arguments charge.  O(nnz(left)) to compute.
    """
    if not left.nnz:
        return 0
    return int(right.row_lengths()[left.cols].sum())


def _block_entries_from_env(default: int = 1 << 22) -> int:
    """Resolve the block-entry budget, honouring ``REPRO_SPGEMM_BLOCK_ENTRIES``.

    The env var lets benchmarks tune block sizing together with shard sizing
    without code changes; EngineConfig's ``block_entries`` field overrides it
    per engine.  A set-but-invalid value raises
    :class:`~repro.exceptions.ConfigurationError` naming the variable — a
    silent fallback would bench the wrong block size and report it as tuned.
    """
    raw = os.environ.get("REPRO_SPGEMM_BLOCK_ENTRIES")
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SPGEMM_BLOCK_ENTRIES must be an integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(
            f"REPRO_SPGEMM_BLOCK_ENTRIES must be positive, got {value}"
        )
    return value


#: Default bound on the expanded-intermediate size of one SpGEMM row block
#: (entries, i.e. ~8 bytes each across a handful of scratch arrays).  Peak
#: memory of the kernel stays proportional to this regardless of the product's
#: total work; 1<<22 entries keeps the scratch well under ~200 MB.  Override
#: via the ``REPRO_SPGEMM_BLOCK_ENTRIES`` environment variable (read once at
#: import) or per engine through ``EngineConfig(block_entries=...)``.
SPGEMM_BLOCK_ENTRIES = _block_entries_from_env()

#: Largest key space (block rows x columns) merged through the dense-scratch
#: ``np.bincount`` accumulator instead of the sort-reduce pass (1<<22 float64
#: cells = 32 MB scratch).
SPGEMM_DENSE_MERGE_CELLS = 1 << 22

#: See :data:`repro.kernels._FLOAT64_EXACT_BOUND`: a bincount merge is
#: only taken when every per-cell accumulation is provably below 2^53.
_BINCOUNT_EXACT_BOUND = float(2**53)


#: Exclusive ceiling for the int32 index fast path inside the block loop:
#: positions index into ``right``'s entry arrays and keys live in the
#: block-local ``rows x num_cols`` space, so when both fit in int32 the
#: expansion runs at half the memory bandwidth with identical integer results.
_INT32_LIMIT = np.iinfo(np.int32).max


def csr_spgemm(
    left: CsrMatrix, right: CsrMatrix, block_entries: Optional[int] = None
) -> tuple[CsrMatrix, int]:
    """Exact integer SpGEMM ``left · right``; returns ``(product, work)``.

    Gustavson's algorithm vectorized per *row block*: for a contiguous block
    of left rows, every partial product is materialized at once — the right
    rows selected by the block's entries are gathered with ``np.repeat``
    arithmetic and multiplied against the repeated left values — then merged
    by coordinate key ``row * num_cols + column``.  Two merge strategies,
    chosen per block:

    * **dense-scratch** — one ``np.bincount`` over a per-block accumulator of
      ``block_rows * num_cols`` float64 cells, taken when the key space fits
      :data:`SPGEMM_DENSE_MERGE_CELLS`, the expansion is dense enough in it to
      amortize the scan, and every per-cell sum is provably below ``2^53`` (so
      the float64 accumulation is exact — the same argument as
      :func:`exact_integer_matmul`);
    * **sort-reduce** — ``np.argsort`` + ``np.add.reduceat`` in pure int64,
      always exact, used everywhere else.

    Blocks are sized so the expanded intermediate stays under
    ``block_entries`` (and the dense scratch under its cell budget), bounding
    peak memory; a single row never splits.  ``work`` is the total expansion
    size, the backend-independent multiplication count reported in
    :class:`MultiplyStats`.
    """
    if left.num_cols != right.num_rows:
        raise DimensionMismatchError(
            f"cannot multiply {left.num_rows}x{left.num_cols} "
            f"by {right.num_rows}x{right.num_cols}"
        )
    num_rows, num_cols = left.num_rows, right.num_cols
    if not left.nnz or not right.nnz:
        return CsrMatrix.empty(num_rows, num_cols), 0
    if block_entries is None:
        block_entries = SPGEMM_BLOCK_ENTRIES
    if block_entries < 1:
        raise ConfigurationError(f"block_entries must be positive, got {block_entries}")
    entry_counts = right.row_lengths()[left.cols]
    expanded = np.zeros(left.nnz + 1, dtype=np.int64)
    np.cumsum(entry_counts, out=expanded[1:])
    work_at_row = expanded[left.indptr]
    total_work = int(expanded[-1])
    # 0/1 operands (adjacency products — the counters' dominant case) need no
    # value expansion at all: every partial product is 1, so merging reduces
    # to *counting* coordinate keys.
    unit_values = bool((left.data == 1).all()) and bool((right.data == 1).all())
    # Worst-case per-cell accumulation magnitude; bounds every block because a
    # block's expansion never exceeds the total.
    magnitude_bound = (
        float(np.abs(left.data).max()) * float(np.abs(right.data).max()) * float(total_work)
    )
    scratch_rows = SPGEMM_DENSE_MERGE_CELLS // max(num_cols, 1)
    dense_merge_possible = unit_values or magnitude_bound < _BINCOUNT_EXACT_BOUND
    # Narrow index fast path: positions index right's entry arrays and keys
    # live in the block-local ``rows * num_cols`` space, so when both bounds
    # fit in int32 the expansion arrays (the kernel's dominant memory
    # traffic) are built at half width.  Integer arithmetic is exact in both
    # widths, so results are bit-identical; the right-column cast is done
    # lazily on the first eligible block.
    int32_eligible = right.nnz < _INT32_LIMIT and num_cols <= _INT32_LIMIT
    right_cols32: Optional[np.ndarray] = None
    out_rows: list[np.ndarray] = []
    out_cols: list[np.ndarray] = []
    out_data: list[np.ndarray] = []
    start = 0
    while start < num_rows:
        stop = int(np.searchsorted(work_at_row, work_at_row[start] + block_entries, "right")) - 1
        if scratch_rows and dense_merge_possible and stop > start + scratch_rows:
            # Shrink to the dense-scratch row budget only when the capped
            # block would actually be dense enough in its key space to take
            # the bincount merge — otherwise the sort-reduce path runs, and
            # capping it would just multiply the per-block overhead.
            capped = start + scratch_rows
            capped_size = int(work_at_row[capped] - work_at_row[start])
            if 4 * capped_size >= scratch_rows * num_cols:
                stop = capped
        stop = min(max(stop, start + 1), num_rows)
        first, last = int(left.indptr[start]), int(left.indptr[stop])
        block_size = int(work_at_row[stop] - work_at_row[start])
        start, block_start = stop, start
        if block_size == 0:
            continue
        mids = left.cols[first:last]
        counts = entry_counts[first:last]
        ends = np.cumsum(counts)
        entry_rows = expand_csr_rows(left.indptr[block_start:stop + 1] - first)
        cells = (stop - block_start) * num_cols
        # Positions into the right entry arrays: for each left entry, the
        # contiguous run right.indptr[mid] .. right.indptr[mid + 1], expressed
        # as one fused repeat of the run starts plus a global ramp.
        if int32_eligible and block_size < _INT32_LIMIT and cells < _INT32_LIMIT:
            if right_cols32 is None:
                right_cols32 = right.cols.astype(np.int32)
            starts32 = (right.indptr[mids] - (ends - counts)).astype(np.int32)
            positions = np.repeat(starts32, counts)
            positions += np.arange(block_size, dtype=np.int32)
            keys = np.repeat((entry_rows * num_cols).astype(np.int32), counts)
            keys += right_cols32[positions]
        else:
            positions = np.repeat(right.indptr[mids] - (ends - counts), counts)
            positions += np.arange(block_size, dtype=np.int64)
            keys = np.repeat(entry_rows * np.int64(num_cols), counts) + right.cols[positions]
        values = (
            None
            if unit_values
            else np.repeat(left.data[first:last], counts) * right.data[positions]
        )
        if cells <= SPGEMM_DENSE_MERGE_CELLS and (
            4 * block_size >= cells and dense_merge_possible
        ):
            # Dense-scratch merge; the weighted variant is exact in float64
            # under the proven bound, the unweighted one is integer counting.
            sums = np.bincount(keys, weights=values, minlength=cells)
            keys = np.flatnonzero(sums)
            sums = sums[keys] if unit_values else np.rint(sums[keys]).astype(np.int64)
        elif unit_values:
            keys = np.sort(keys)
            boundaries = np.flatnonzero(keys[1:] != keys[:-1]) + 1
            starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
            sums = np.diff(np.concatenate((starts, [len(keys)])))
            keys = keys[starts]
        else:
            keys, sums = _coalesce_keys(keys, values)
        # Post-merge arrays are small (one entry per distinct coordinate);
        # widen back to int64 so block outputs concatenate uniformly.
        keys = keys.astype(np.int64, copy=False)
        rows = keys // num_cols
        out_rows.append(rows + block_start)
        out_cols.append(keys - rows * num_cols)
        out_data.append(sums)
    if not out_rows:
        return CsrMatrix.empty(num_rows, num_cols), total_work
    rows = np.concatenate(out_rows)
    indptr = _indptr_from_rows(rows, num_rows)
    # Blocks cover disjoint, increasing row ranges and each block is key-sorted,
    # so the concatenation is already in CSR order.
    product = CsrMatrix(
        indptr=indptr,
        cols=np.concatenate(out_cols),
        data=np.concatenate(out_data),
        num_cols=num_cols,
    )
    return product, total_work


@dataclass(frozen=True)
class CountMatrixCSR:
    """An interned CSR snapshot of a :class:`CountMatrix`.

    ``row_order``/``col_order`` give each distinct label a contiguous integer
    position (insertion order — no repr sorting); ``col_ids`` holds, for every
    stored entry, the *position* of its column label, so dense exports become
    one vectorized scatter instead of two dict lookups per entry.  The
    snapshot is cached on the matrix and keyed to its mutation version: it is
    built at most once between mutations and reused across every multiply in a
    chain (see :class:`DenseBackend`).
    """

    version: int
    row_order: list
    col_order: list
    col_index: Dict[Label, int]
    indptr: np.ndarray
    col_ids: np.ndarray
    data: np.ndarray


class CountMatrix:
    """A sparse integer matrix keyed by arbitrary row/column labels.

    Entries with value zero are removed eagerly so iteration only touches
    non-zeros; this matters because the counters add and subtract contributions
    (insertions and deletions) and most entries cancel over time.

    The matrix maintains a per-column row count alongside the entries (so
    :meth:`column_labels` never rescans the rows) and a mutation version that
    keys the cached interned CSR export of :meth:`csr` — any mutation
    invalidates the cache, any number of reads between mutations share it.
    """

    __slots__ = ("_rows", "_nnz", "_col_counts", "_version", "_csr_cache")

    def __init__(self, entries: Mapping[tuple[Label, Label], int] | None = None) -> None:
        self._rows: Dict[Label, Dict[Label, int]] = {}
        self._nnz = 0
        #: For every column label, the number of rows with a non-zero there.
        self._col_counts: Dict[Label, int] = {}
        self._version = 0
        self._csr_cache: Optional[CountMatrixCSR] = None
        if entries:
            for (row, column), value in entries.items():
                self.add(row, column, value)

    # -- point access --------------------------------------------------------
    def get(self, row: Label, column: Label) -> int:
        """The entry at ``(row, column)``; zero when absent."""
        return self._rows.get(row, _EMPTY_DICT).get(column, 0)

    def add(self, row: Label, column: Label, delta: int) -> None:
        """Add ``delta`` to the entry at ``(row, column)``.

        Entries that become zero are deleted, keeping the matrix sparse.
        """
        if delta == 0:
            return
        self._version += 1
        row_map = self._rows.get(row)
        if row_map is None:
            row_map = {}
            self._rows[row] = row_map
        current = row_map.get(column, 0)
        updated = current + delta
        if current == 0:
            self._nnz += 1
            self._col_counts[column] = self._col_counts.get(column, 0) + 1
        if updated == 0:
            del row_map[column]
            self._nnz -= 1
            remaining = self._col_counts[column] - 1
            if remaining:
                self._col_counts[column] = remaining
            else:
                del self._col_counts[column]
            if not row_map:
                del self._rows[row]
        else:
            row_map[column] = updated

    def set(self, row: Label, column: Label, value: int) -> None:
        """Set the entry at ``(row, column)`` to ``value``."""
        self.add(row, column, value - self.get(row, column))

    def add_row(self, row: Label, columns: Sequence[Label], deltas) -> None:
        """Bulk ``self[row, columns[k]] += deltas[k]`` over one row.

        ``deltas`` is a per-column sequence or a single int applied to every
        column.  Semantically identical to calling :meth:`add` per pair, but
        the row dict, the nnz/column bookkeeping, and the version bump are
        handled once per call instead of once per entry — the single-update
        hot paths (wedge maintenance) and the incremental batch hooks apply
        whole delta rows through this.
        """
        if not columns:
            return
        if isinstance(deltas, int):
            if deltas == 0:
                return
            deltas = [deltas] * len(columns)
        self._version += 1
        row_map = self._rows.get(row)
        if row_map is None:
            row_map = {}
            self._rows[row] = row_map
        col_counts = self._col_counts
        get_current = row_map.get
        nnz_delta = 0
        for column, delta in zip(columns, deltas):
            if delta == 0:
                continue
            current = get_current(column, 0)
            updated = current + delta
            if current == 0:
                nnz_delta += 1
                col_counts[column] = col_counts.get(column, 0) + 1
            if updated == 0:
                del row_map[column]
                nnz_delta -= 1
                remaining = col_counts[column] - 1
                if remaining:
                    col_counts[column] = remaining
                else:
                    del col_counts[column]
            else:
                row_map[column] = updated
        self._nnz += nnz_delta
        if not row_map:
            del self._rows[row]

    # -- bulk access ----------------------------------------------------------
    def row(self, row: Label) -> Mapping[Label, int]:
        """The non-zero entries of one row (live view; do not mutate)."""
        return self._rows.get(row, _EMPTY_DICT)

    def rows(self) -> Iterator[tuple[Label, Mapping[Label, int]]]:
        """Iterate over ``(row_label, row_mapping)`` pairs."""
        return iter(self._rows.items())

    def items(self) -> Iterator[tuple[Label, Label, int]]:
        """Iterate over all non-zero entries as ``(row, column, value)``."""
        for row, row_map in self._rows.items():
            for column, value in row_map.items():
                yield (row, column, value)

    def row_labels(self) -> set[Label]:
        return set(self._rows)

    def column_labels(self) -> set[Label]:
        """Labels with at least one non-zero column entry.

        Served from the maintained per-column counts — O(distinct columns)
        instead of a scan over every stored entry.
        """
        return set(self._col_counts)

    @property
    def num_row_labels(self) -> int:
        """Number of distinct row labels (without materializing the set)."""
        return len(self._rows)

    @property
    def num_column_labels(self) -> int:
        """Number of distinct column labels (without materializing the set)."""
        return len(self._col_counts)

    @property
    def nnz(self) -> int:
        """Number of non-zero entries."""
        return self._nnz

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever any entry changes."""
        return self._version

    def csr(self) -> CountMatrixCSR:
        """The cached interned CSR snapshot of the current contents.

        Built lazily on first use after a mutation and shared by every reader
        until the next mutation; the dense multiply backend keys its exports
        on it so a ``multiply_chain`` re-uses each operand's interning instead
        of re-walking label dicts per product.
        """
        cache = self._csr_cache
        if cache is not None and cache.version == self._version:
            return cache
        row_order = list(self._rows)
        col_order = list(self._col_counts)
        col_index = {label: position for position, label in enumerate(col_order)}
        indptr = np.zeros(len(row_order) + 1, dtype=np.int64)
        col_ids = np.empty(self._nnz, dtype=np.int64)
        data = np.empty(self._nnz, dtype=np.int64)
        cursor = 0
        for position, row_map in enumerate(self._rows.values()):
            for column, value in row_map.items():
                col_ids[cursor] = col_index[column]
                data[cursor] = value
                cursor += 1
            indptr[position + 1] = cursor
        cache = CountMatrixCSR(
            version=self._version,
            row_order=row_order,
            col_order=col_order,
            col_index=col_index,
            indptr=indptr,
            col_ids=col_ids,
            data=data,
        )
        self._csr_cache = cache
        return cache

    def __bool__(self) -> bool:
        return self._nnz > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CountMatrix):
            return self._rows == other._rows
        return NotImplemented

    def __repr__(self) -> str:
        return f"CountMatrix(nnz={self._nnz})"

    # -- linear-algebra style operations --------------------------------------
    def copy(self) -> "CountMatrix":
        clone = CountMatrix()
        clone._rows = {row: dict(row_map) for row, row_map in self._rows.items()}
        clone._nnz = self._nnz
        clone._col_counts = dict(self._col_counts)
        return clone

    def add_matrix(self, other: "CountMatrix", scale: int = 1) -> None:
        """In-place ``self += scale * other``.

        This is the aggregation step of the warm-up algorithm: once the data
        structure of chunk ``B_{i-1}`` is computed it is added to the running
        sum for ``B_{<i-1}`` (Section 3.2), with deletions represented as
        negative entries.
        """
        for row, column, value in other.items():
            self.add(row, column, scale * value)

    def transpose(self) -> "CountMatrix":
        result = CountMatrix()
        for row, column, value in self.items():
            result.add(column, row, value)
        return result

    def to_dense(
        self, row_order: list[Label], column_order: list[Label], dtype=np.int64
    ) -> np.ndarray:
        """Densify using explicit row/column orders."""
        row_index = {label: position for position, label in enumerate(row_order)}
        column_index = {label: position for position, label in enumerate(column_order)}
        dense = np.zeros((len(row_order), len(column_order)), dtype=dtype)
        for row, column, value in self.items():
            i = row_index.get(row)
            j = column_index.get(column)
            if i is not None and j is not None:
                dense[i, j] = value
        return dense

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        row_order: Sequence[Label],
        column_order: Optional[Sequence[Label]] = None,
    ) -> "CountMatrix":
        """Build a sparse matrix from a dense array and its label orders.

        ``column_order`` defaults to ``row_order`` (square matrices).  Rows
        are populated one ``dict(zip(...))`` per non-empty row from the
        row-major nonzero mask (``np.nonzero`` yields row-sorted indices), so
        the batched counters can promote a vectorized rebuild into the
        label-indexed representation without per-entry ``add`` overhead.
        """
        if column_order is None:
            column_order = row_order
        result = cls()
        nonzero_rows, nonzero_columns = np.nonzero(dense)
        if not len(nonzero_rows):
            return result
        values = dense[nonzero_rows, nonzero_columns]
        if len(set(row_order)) != len(row_order) or len(set(column_order)) != len(
            column_order
        ):
            # Rare degenerate input: duplicate labels collide, so colliding
            # entries must *sum* (add() semantics) and the bookkeeping must
            # reflect the merged result — take the slow exact path.
            for i, j, value in zip(
                nonzero_rows.tolist(), nonzero_columns.tolist(), values.tolist()
            ):
                result.add(row_order[i], column_order[j], int(value))
            return result
        column_labels = np.empty(len(column_order), dtype=object)
        column_labels[:] = list(column_order)
        entry_labels = column_labels[nonzero_columns]
        value_list = values.tolist()
        if values.dtype.kind not in "iu":  # coerce exotic dtypes like add() would
            value_list = [int(value) for value in value_list]
        distinct_rows, starts = np.unique(nonzero_rows, return_index=True)
        boundaries = starts.tolist() + [len(nonzero_rows)]
        rows = result._rows
        for position, i in enumerate(distinct_rows.tolist()):
            begin, end = boundaries[position], boundaries[position + 1]
            rows[row_order[i]] = dict(
                zip(entry_labels[begin:end].tolist(), value_list[begin:end])
            )
        result._nnz = int(len(values))
        distinct_columns, per_column = np.unique(nonzero_columns, return_counts=True)
        result._col_counts = {
            column_order[j]: int(count)
            for j, count in zip(distinct_columns.tolist(), per_column.tolist())
        }
        return result

    @classmethod
    def from_csr(
        cls,
        matrix: "CsrMatrix",
        row_order: Sequence[Label],
        column_order: Optional[Sequence[Label]] = None,
    ) -> "CountMatrix":
        """Build a label-keyed matrix from a positional :class:`CsrMatrix`.

        ``row_order[i]``/``column_order[j]`` name position ``i``/``j``
        (``column_order`` defaults to ``row_order``).  Rows are promoted one
        ``dict(zip(...))`` per non-empty row, mirroring :meth:`from_dense` —
        this is how the CSR kernels' products cross back into the counters'
        representation without per-entry ``add`` overhead.  The input's
        invariants (coalesced, no explicit zeros) are assumed.
        """
        if column_order is None:
            column_order = row_order
        result = cls()
        if not matrix.nnz:
            return result
        if len(set(row_order)) != len(row_order) or len(set(column_order)) != len(
            column_order
        ):
            # Degenerate duplicate labels: colliding entries must sum.
            entry_rows = matrix.row_ids().tolist()
            for i, j, value in zip(entry_rows, matrix.cols.tolist(), matrix.data.tolist()):
                result.add(row_order[i], column_order[j], int(value))
            return result
        column_labels = np.empty(len(column_order), dtype=object)
        column_labels[:] = list(column_order)
        entry_labels = column_labels[matrix.cols]
        value_list = matrix.data.tolist()
        indptr = matrix.indptr
        rows = result._rows
        for position in np.nonzero(np.diff(indptr))[0].tolist():
            begin, end = int(indptr[position]), int(indptr[position + 1])
            rows[row_order[position]] = dict(
                zip(entry_labels[begin:end].tolist(), value_list[begin:end])
            )
        result._nnz = matrix.nnz
        distinct_columns, per_column = np.unique(matrix.cols, return_counts=True)
        result._col_counts = {
            column_order[j]: int(count)
            for j, count in zip(distinct_columns.tolist(), per_column.tolist())
        }
        return result

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Label, Label]], value: int = 1) -> "CountMatrix":
        """Build a 0/1 (or constant-valued) matrix from an iterable of pairs."""
        result = cls()
        for row, column in pairs:
            result.add(row, column, value)
        return result


@dataclass
class MultiplyStats:
    """Work accounting for one matrix product."""

    backend: str
    left_shape: tuple[int, int]
    right_shape: tuple[int, int]
    multiplications: int
    output_nnz: int


class SparseBackend:
    """Dictionary-based sparse-sparse multiplication.

    Cost is proportional to ``sum over non-zeros (i, k) of left of
    nnz(row k of right)``, which is exactly the combinatorial cost the paper's
    "iterate over neighbors" arguments charge.
    """

    name = "sparse"

    def multiply(self, left: CountMatrix, right: CountMatrix) -> tuple[CountMatrix, MultiplyStats]:
        result = CountMatrix()
        multiplications = 0
        for row, row_map in left.rows():
            for middle, left_value in row_map.items():
                right_row = right.row(middle)
                multiplications += len(right_row)
                for column, right_value in right_row.items():
                    result.add(row, column, left_value * right_value)
        stats = MultiplyStats(
            backend=self.name,
            left_shape=(left.num_row_labels, left.num_column_labels),
            right_shape=(right.num_row_labels, right.num_column_labels),
            multiplications=multiplications,
            output_nnz=result.nnz,
        )
        return result, stats


class CsrBackend:
    """Vectorized integer CSR×CSR SpGEMM over the cached interned snapshots.

    Operands are read through :meth:`CountMatrix.csr` (so a ``multiply_chain``
    interns each matrix at most once per mutation), the middle axis is aligned
    by remapping the (few) distinct left column labels onto right row
    positions, and the product runs through :func:`csr_spgemm` — Gustavson
    row-block expansion with exact int64 sort-reduce merges.  Work is the same
    combinatorial quantity :class:`SparseBackend` pays (and reports), executed
    at numpy constants instead of dict-probe constants.
    """

    name = "csr"

    def __init__(self, block_entries: int = SPGEMM_BLOCK_ENTRIES) -> None:
        self.block_entries = block_entries

    def multiply(self, left: CountMatrix, right: CountMatrix) -> tuple[CountMatrix, MultiplyStats]:
        left_csr = left.csr()
        right_csr = right.csr()
        row_order = left_csr.row_order
        column_order = right_csr.col_order
        middles = len(right_csr.row_order)
        stats = MultiplyStats(
            backend=self.name,
            left_shape=(len(row_order), len(left_csr.col_order)),
            right_shape=(middles, len(column_order)),
            multiplications=0,
            output_nnz=0,
        )
        if not left_csr.data.size or not right_csr.data.size:
            return CountMatrix(), stats
        left_matrix = self._aligned_left(left_csr, right_csr, middles)
        right_matrix = CsrMatrix.from_parts(
            right_csr.indptr, right_csr.col_ids, right_csr.data, len(column_order)
        )
        product, work = csr_spgemm(left_matrix, right_matrix, block_entries=self.block_entries)
        result = CountMatrix.from_csr(product, row_order, column_order)
        stats.multiplications = work
        stats.output_nnz = result.nnz
        return result, stats

    @staticmethod
    def _aligned_left(left_csr: CountMatrixCSR, right_csr: CountMatrixCSR, middles: int) -> CsrMatrix:
        """The left operand with columns renumbered into right-row positions.

        Only distinct labels are remapped; left columns with no matching right
        row multiply an all-zero row, so their entries are dropped outright.
        When the label orders coincide (the common case inside a product
        chain) the identity mapping short-circuits everything.
        """
        if left_csr.col_order == right_csr.row_order:
            return CsrMatrix.from_parts(
                left_csr.indptr, left_csr.col_ids, left_csr.data, middles
            )
        right_rows = {label: position for position, label in enumerate(right_csr.row_order)}
        mapping = np.fromiter(
            (right_rows.get(label, -1) for label in left_csr.col_order),
            dtype=np.int64,
            count=len(left_csr.col_order),
        )
        mapped = mapping[left_csr.col_ids]
        keep = mapped >= 0
        if keep.all():
            # The remap permutes column positions within each row; the kernel
            # never relies on column order in its *left* operand (it only
            # gathers right rows per entry), so no re-sort is needed.
            return CsrMatrix.from_parts(left_csr.indptr, mapped, left_csr.data, middles)
        rows = expand_csr_rows(left_csr.indptr)[keep]
        indptr = _indptr_from_rows(rows, len(left_csr.row_order))
        return CsrMatrix.from_parts(indptr, mapped[keep], left_csr.data[keep], middles)


class DenseBackend:
    """Dense ``numpy``/BLAS multiplication over the trimmed label sets.

    The label universe is trimmed to rows/columns that actually appear, the
    analogue of the paper's observation (Claim 3.4) that zero rows and columns
    "effectively reduce the dimension for computational purposes".

    With ``use_csr_cache=True`` (the default) the dense operands are built
    from each matrix's cached interned CSR snapshot (:meth:`CountMatrix.csr`):
    label interning happens once per matrix per mutation, the middle axis is
    aligned by remapping the (few) distinct labels rather than every entry,
    and the scatter into the dense arrays is vectorized.  A ``multiply_chain``
    therefore skips the per-entry label->position dict round-trips of the
    scalar path entirely.  ``use_csr_cache=False`` keeps the original
    label-dict export (used by the E11 benchmark as the scalar baseline).
    """

    name = "dense"

    def __init__(self, use_csr_cache: bool = True) -> None:
        self.use_csr_cache = use_csr_cache

    def multiply(self, left: CountMatrix, right: CountMatrix) -> tuple[CountMatrix, MultiplyStats]:
        if self.use_csr_cache:
            return self._multiply_cached(left, right)
        return self._multiply_scalar(left, right)

    def _empty_stats(self, rows: int, middles: int, columns: int) -> MultiplyStats:
        return MultiplyStats(
            backend=self.name,
            left_shape=(rows, middles),
            right_shape=(middles, columns),
            multiplications=0,
            output_nnz=0,
        )

    def _multiply_cached(
        self, left: CountMatrix, right: CountMatrix
    ) -> tuple[CountMatrix, MultiplyStats]:
        left_csr = left.csr()
        right_csr = right.csr()
        row_order = left_csr.row_order
        column_order = right_csr.col_order
        # Align the middle axis: left columns first, then right rows that are
        # new — only distinct labels are remapped, never individual entries.
        # When the label sequences already coincide (typical inside a product
        # chain, where each product's columns become the next left's middles)
        # the left interning *is* the alignment: skip the per-label dict copy
        # and remap entirely — it dominates small-matrix chains.
        aligned = left_csr.col_order == right_csr.row_order
        if aligned:
            middles = len(left_csr.col_order)
        else:
            middle_index = dict(left_csr.col_index)
            for label in right_csr.row_order:
                if label not in middle_index:
                    middle_index[label] = len(middle_index)
            middles = len(middle_index)
        if not row_order or not middles or not column_order:
            return CountMatrix(), self._empty_stats(len(row_order), middles, len(column_order))
        left_dense = np.zeros((len(row_order), middles), dtype=np.int64)
        if left_csr.data.size:
            left_dense[expand_csr_rows(left_csr.indptr), left_csr.col_ids] = left_csr.data
        right_dense = np.zeros((middles, len(column_order)), dtype=np.int64)
        if right_csr.data.size:
            if aligned:
                rows = expand_csr_rows(right_csr.indptr)
            else:
                row_map = np.fromiter(
                    (middle_index[label] for label in right_csr.row_order),
                    dtype=np.int64,
                    count=len(right_csr.row_order),
                )
                rows = expand_csr_rows(right_csr.indptr, row_map)
            right_dense[rows, right_csr.col_ids] = right_csr.data
        product = exact_integer_matmul(left_dense, right_dense)
        result = CountMatrix.from_dense(product, row_order, column_order)
        stats = MultiplyStats(
            backend=self.name,
            left_shape=left_dense.shape,
            right_shape=right_dense.shape,
            multiplications=len(row_order) * middles * len(column_order),
            output_nnz=result.nnz,
        )
        return result, stats

    def _multiply_scalar(
        self, left: CountMatrix, right: CountMatrix
    ) -> tuple[CountMatrix, MultiplyStats]:
        row_order = sorted(left.row_labels(), key=repr)
        middle_order = sorted(left.column_labels() | right.row_labels(), key=repr)
        column_order = sorted(right.column_labels(), key=repr)
        if not row_order or not middle_order or not column_order:
            return CountMatrix(), self._empty_stats(
                len(row_order), len(middle_order), len(column_order)
            )
        left_dense = left.to_dense(row_order, middle_order)
        right_dense = right.to_dense(middle_order, column_order)
        product = left_dense @ right_dense
        result = CountMatrix.from_dense(product, row_order, column_order)
        stats = MultiplyStats(
            backend=self.name,
            left_shape=left_dense.shape,
            right_shape=right_dense.shape,
            multiplications=len(row_order) * len(middle_order) * len(column_order),
            output_nnz=result.nnz,
        )
        return result, stats


CostCallback = Callable[[MultiplyStats], None]


@dataclass
class MatmulEngine:
    """Facade that selects a backend and reports work to a cost callback.

    The automatic choice compares the constant-aware cost estimates of
    :func:`repro.matmul.omega.product_cost_estimates`: tiny products stay on
    the dict backend (no numpy launch overhead), sparse products go through
    the CSR SpGEMM kernel, and products dense enough that the BLAS cube wins
    go dense.  ``dense_threshold`` scales the dense estimate (values above 1.0
    bias the choice away from dense).  The counters pass ``backend="dense"``
    explicitly for the old-phase products — the whole point of the paper is
    that those products go through fast matrix multiplication.
    """

    dense_threshold: float = 1.0
    cost_callback: Optional[CostCallback] = None
    _sparse: SparseBackend = field(default_factory=SparseBackend)
    _dense: DenseBackend = field(default_factory=DenseBackend)
    _csr: CsrBackend = field(default_factory=CsrBackend)

    def multiply(
        self, left: CountMatrix, right: CountMatrix, backend: str = "auto"
    ) -> CountMatrix:
        """Multiply two count matrices and return the product."""
        chosen = self._choose_backend(left, right, backend)
        result, stats = chosen.multiply(left, right)
        if self.cost_callback is not None:
            self.cost_callback(stats)
        return result

    def multiply_chain(self, matrices: list[CountMatrix], backend: str = "auto") -> CountMatrix:
        """Multiply a chain of matrices left to right (e.g. ``A · B · C``)."""
        if not matrices:
            raise ConfigurationError("multiply_chain requires at least one matrix")
        result = matrices[0]
        for matrix in matrices[1:]:
            result = self.multiply(result, matrix, backend=backend)
        return result

    def _choose_backend(self, left: CountMatrix, right: CountMatrix, backend: str):
        if backend == "sparse":
            return self._sparse
        if backend == "dense":
            return self._dense
        if backend == "csr":
            return self._csr
        if backend != "auto":
            raise ConfigurationError(
                f"backend must be 'auto', 'sparse', 'csr' or 'dense', got {backend!r}"
            )
        from repro.matmul.omega import product_cost_estimates

        expansion = self._estimate_sparse_cost(left, right)
        rows = left.num_row_labels
        middles = len(left.column_labels() | right.row_labels())
        columns = right.num_column_labels
        if rows * middles * columns == 0:
            return self._sparse
        costs = product_cost_estimates(rows, middles, columns, expansion)
        dense_cost = self.dense_threshold * costs["dense"]
        if costs["sparse"] <= min(costs["csr"], dense_cost):
            return self._sparse
        if costs["csr"] <= dense_cost:
            return self._csr
        return self._dense

    @staticmethod
    def _estimate_sparse_cost(left: CountMatrix, right: CountMatrix) -> int:
        right_row_sizes = {row: len(row_map) for row, row_map in right.rows()}
        cost = 0
        for _, row_map in left.rows():
            for middle in row_map:
                cost += right_row_sizes.get(middle, 0)
        return cost


def multiply_dense_arrays(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Multiply two dense arrays with shape validation.

    A small helper for code paths that already hold dense arrays (the
    brute-force counter, the phase scheduler's row blocks).
    """
    if left.ndim != 2 or right.ndim != 2:
        raise DimensionMismatchError(
            f"expected 2-D arrays, got shapes {left.shape} and {right.shape}"
        )
    if left.shape[1] != right.shape[0]:
        raise DimensionMismatchError(
            f"cannot multiply shapes {left.shape} and {right.shape}"
        )
    return left @ right


#: Shared immutable empty mapping returned for absent rows.
_EMPTY_DICT: Dict[Label, int] = {}
