"""Concrete product cost model, plus re-exports of the asymptotic omega models.

The *asymptotic* exponent models (``omega``, rectangular ``omega(a, b, c)``,
:class:`OmegaModel` and the canonical instances) live in
:mod:`repro.theory.omega` — the theory layer sits below ``matmul`` in the
package DAG and its constraint solvers are their primary consumer.  They are
re-exported here unchanged because the matmul layer is where benchmark and
scheduler code historically imported them from.

What this module *owns* is the concrete, constant-aware cost model: the
running code needs per-product estimates to dispatch between the dense BLAS
backend and the vectorized CSR SpGEMM kernel, and per-shard estimates to
choose a process pool over a thread pool.  The unit is one dense BLAS
multiply-add; the other constants are calibrated ratios measured on the E12
benchmark workloads (numpy gather/sort-reduce per expanded SpGEMM entry,
interpreter dict probing per expanded dict-backend entry).
"""

from __future__ import annotations

from typing import Dict

from repro.theory.omega import (
    BestPossibleRectangularModel,
    BlockPartitionRectangularModel,
    OMEGA_BEST,
    OMEGA_CURRENT,
    OMEGA_IMPROVEMENT_THRESHOLD,
    OMEGA_NAIVE,
    OMEGA_STRASSEN,
    OmegaModel,
    PublishedValuesRectangularModel,
    RectangularModel,
    best_omega_model,
    current_omega_model,
    model_for_omega,
    naive_omega_model,
)

__all__ = [
    "BestPossibleRectangularModel",
    "BlockPartitionRectangularModel",
    "OMEGA_BEST",
    "OMEGA_CURRENT",
    "OMEGA_IMPROVEMENT_THRESHOLD",
    "OMEGA_NAIVE",
    "OMEGA_STRASSEN",
    "OmegaModel",
    "PublishedValuesRectangularModel",
    "RectangularModel",
    "best_omega_model",
    "current_omega_model",
    "model_for_omega",
    "naive_omega_model",
    "DENSE_FLOP_COST",
    "CSR_OP_COST",
    "DICT_OP_COST",
    "VECTORIZED_PRODUCT_OVERHEAD",
    "PROCESS_SHARD_OVERHEAD",
    "product_cost_estimates",
]

#: Cost of one dense BLAS multiply-add (the unit of this model).
DENSE_FLOP_COST = 1.0

#: Cost of one expanded SpGEMM entry (gather + repeat + sort-reduce share).
CSR_OP_COST = 48.0

#: Cost of one expanded dict-backend entry (hash, probe, boxed arithmetic).
DICT_OP_COST = 600.0

#: Fixed per-product overhead of a vectorized kernel launch, in cost units.
#: Below roughly this much total work, python dicts win on constant overhead.
VECTORIZED_PRODUCT_OVERHEAD = 20000.0

#: Per-shard overhead of dispatching one SpGEMM shard to a *process* pool —
#: pickling the column-compressed view out, the result back, and the pool's
#: own task machinery — in the same cost units.  A shard whose expansion work
#: (at :data:`CSR_OP_COST` per entry) is below this is cheaper on a thread
#: pool, where numpy's GIL-releasing passes still overlap but nothing pays
#: serialization; see :class:`repro.matmul.sharding.ShardExecutor`.
PROCESS_SHARD_OVERHEAD = 2e7


def product_cost_estimates(
    rows: int, middles: int, columns: int, expansion_work: int
) -> Dict[str, float]:
    """Estimated costs of one product on each backend, in dense-flop units.

    ``expansion_work`` is the exact SpGEMM expansion size (see
    :func:`repro.matmul.engine.spgemm_work`); ``rows``/``middles``/``columns``
    are the trimmed dense dimensions.  Used by
    :class:`repro.matmul.scheduler.ProductDispatcher` and by
    :class:`repro.matmul.engine.MatmulEngine`'s automatic backend choice.
    """
    return {
        "dense": float(rows) * float(middles) * float(columns) * DENSE_FLOP_COST
        + VECTORIZED_PRODUCT_OVERHEAD,
        "csr": float(expansion_work) * CSR_OP_COST + VECTORIZED_PRODUCT_OVERHEAD,
        "sparse": float(expansion_work) * DICT_OP_COST,
    }
