"""Matrix-multiplication engine, rectangular products, exponent cost models,
and the phase work scheduler."""

from repro.matmul.engine import (
    CountMatrix,
    DenseBackend,
    MatmulEngine,
    MultiplyStats,
    SparseBackend,
    multiply_dense_arrays,
)
from repro.matmul.omega import (
    OMEGA_BEST,
    OMEGA_CURRENT,
    OMEGA_IMPROVEMENT_THRESHOLD,
    OMEGA_NAIVE,
    OMEGA_STRASSEN,
    BestPossibleRectangularModel,
    BlockPartitionRectangularModel,
    OmegaModel,
    PublishedValuesRectangularModel,
    best_omega_model,
    current_omega_model,
    model_for_omega,
    naive_omega_model,
)
from repro.matmul.rectangular import (
    RectangularProductReport,
    rectangular_multiply,
    restrict,
    restrict_by_predicate,
)
from repro.matmul.scheduler import ChainProductJob, IncrementalMatrixProduct, PhaseScheduler

__all__ = [
    "CountMatrix",
    "DenseBackend",
    "SparseBackend",
    "MatmulEngine",
    "MultiplyStats",
    "multiply_dense_arrays",
    "OMEGA_CURRENT",
    "OMEGA_BEST",
    "OMEGA_NAIVE",
    "OMEGA_STRASSEN",
    "OMEGA_IMPROVEMENT_THRESHOLD",
    "OmegaModel",
    "BlockPartitionRectangularModel",
    "BestPossibleRectangularModel",
    "PublishedValuesRectangularModel",
    "current_omega_model",
    "best_omega_model",
    "naive_omega_model",
    "model_for_omega",
    "RectangularProductReport",
    "rectangular_multiply",
    "restrict",
    "restrict_by_predicate",
    "ChainProductJob",
    "IncrementalMatrixProduct",
    "PhaseScheduler",
]
