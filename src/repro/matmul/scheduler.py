"""Spreading old-phase matrix products over the updates of a phase.

Section 5.1 of the paper: a phase is ``m^{1-delta}`` updates, long enough that
the full product of the old-phase matrices (dimension ``m^{2/3+2eps}``) can be
computed within the phase while only doing ``O(m^{2/3-eps})`` work per update.
That is what turns an amortized argument into a *worst-case* bound: the matrix
product is started when a phase begins and advanced a bounded amount on every
update ("Continue the matrix multiplication computation for O(m^{2/3-eps})
steps" — Algorithm 2, Step 2).

This module provides the machinery:

* :class:`IncrementalMatrixProduct` — one product ``L · R`` computed row block
  by row block, with explicit operation accounting.
* :class:`ChainProductJob` — a chain ``M1 · M2 · ... · Mk`` computed as a
  sequence of incremental products (the second product starts once the first
  is complete).
* :class:`PhaseScheduler` — a queue of jobs advanced by a fixed per-update
  work budget; the counters call :meth:`PhaseScheduler.work` once per update.
* :class:`ProductDispatcher` — the density-aware dense-BLAS versus CSR-SpGEMM
  decision the counters' batched rebuild hooks route their whole-graph
  products through, built on the constant-aware cost model of
  :mod:`repro.matmul.omega`.

The scheduler is deliberately agnostic about what the products mean; the
counters decide which snapshots to multiply and read the results once
:meth:`ChainProductJob.is_complete` is true (i.e. at the phase boundary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

from collections import deque

from repro.exceptions import ConfigurationError, CounterStateError
from repro.matmul.engine import CountMatrix
from repro.matmul.omega import product_cost_estimates


class IncrementalMatrixProduct:
    """Computes ``left · right`` one row at a time with work accounting.

    The unit of work is one scalar multiply-add of the sparse row-times-matrix
    product; :meth:`advance` performs up to ``budget`` units and reports how
    many were actually used.  Rows whose work exceeds the remaining budget are
    still finished atomically (a single row is the smallest indivisible step),
    which at most doubles the per-call work — the same slack the paper's
    big-O analysis absorbs.
    """

    def __init__(self, left: CountMatrix, right: CountMatrix) -> None:
        self._left = left
        self._right = right
        self._pending_rows: Deque = deque(sorted(left.row_labels(), key=repr))
        self._result = CountMatrix()
        self._operations_done = 0

    @property
    def result(self) -> CountMatrix:
        """The (possibly partial) product computed so far."""
        return self._result

    @property
    def operations_done(self) -> int:
        return self._operations_done

    @property
    def is_complete(self) -> bool:
        return not self._pending_rows

    def remaining_rows(self) -> int:
        return len(self._pending_rows)

    def advance(self, budget: int) -> int:
        """Perform up to ``budget`` multiply-adds; return the amount done."""
        if budget < 0:
            raise ConfigurationError(f"budget must be non-negative, got {budget}")
        done = 0
        while self._pending_rows and done < budget:
            row = self._pending_rows.popleft()
            done += self._process_row(row)
        self._operations_done += done
        return done

    def run_to_completion(self) -> int:
        """Finish the whole product immediately; return the work performed."""
        done = 0
        while self._pending_rows:
            row = self._pending_rows.popleft()
            done += self._process_row(row)
        self._operations_done += done
        return done

    def _process_row(self, row) -> int:
        operations = 0
        for middle, left_value in self._left.row(row).items():
            right_row = self._right.row(middle)
            operations += max(len(right_row), 1)
            for column, right_value in right_row.items():
                self._result.add(row, column, left_value * right_value)
        return max(operations, 1)


class ChainProductJob:
    """A chain product ``M1 · M2 · ... · Mk`` computed incrementally.

    The chain is evaluated left to right: the product of the first two
    matrices is computed incrementally; when it completes, an incremental
    product of the partial result with the next matrix starts, and so on.
    ``name`` identifies the job (e.g. ``"A_old*B_old*C_old"``) for diagnostics.
    """

    def __init__(self, matrices: List[CountMatrix], name: str = "chain") -> None:
        if not matrices:
            raise ConfigurationError("ChainProductJob requires at least one matrix")
        self.name = name
        self._matrices = list(matrices)
        self._stage_index = 0
        self._operations_done = 0
        if len(self._matrices) == 1:
            self._current: Optional[IncrementalMatrixProduct] = None
            self._accumulated = self._matrices[0]
        else:
            self._current = IncrementalMatrixProduct(self._matrices[0], self._matrices[1])
            self._accumulated = None

    @property
    def operations_done(self) -> int:
        return self._operations_done

    @property
    def is_complete(self) -> bool:
        return self._current is None

    @property
    def result(self) -> CountMatrix:
        """The final product; only valid once :attr:`is_complete` is true."""
        if not self.is_complete:
            raise CounterStateError(
                f"chain product {self.name!r} is not complete yet; "
                "the result can only be read at the phase boundary"
            )
        assert self._accumulated is not None
        return self._accumulated

    def advance(self, budget: int) -> int:
        """Advance the chain by up to ``budget`` units of work."""
        done = 0
        while self._current is not None and done < budget:
            done += self._current.advance(budget - done)
            if self._current.is_complete:
                partial = self._current.result
                next_index = self._stage_index + 2
                if next_index < len(self._matrices):
                    self._current = IncrementalMatrixProduct(partial, self._matrices[next_index])
                    self._stage_index += 1
                else:
                    self._accumulated = partial
                    self._current = None
        self._operations_done += done
        return done

    def run_to_completion(self) -> int:
        """Finish the whole chain immediately; return the work performed."""
        done = 0
        while not self.is_complete:
            done += self.advance(budget=1 << 30)
        return done


@dataclass
class PhaseScheduler:
    """A queue of chain-product jobs advanced by a per-update work budget.

    The counters register the old-phase products at a phase boundary with
    :meth:`submit` and call :meth:`work` once per update with the budget
    ``O(m^{2/3 - eps})``; :meth:`all_complete` reports whether every job has
    finished (which the paper's phase-length constraint, Eq. (9), guarantees
    by the end of the phase).
    """

    budget_per_update: int = 0
    _jobs: List[ChainProductJob] = field(default_factory=list)
    total_operations: int = 0
    updates_seen: int = 0

    def submit(self, job: ChainProductJob) -> None:
        """Register a job to be advanced by subsequent :meth:`work` calls."""
        self._jobs.append(job)

    def clear(self) -> None:
        """Drop all jobs (used when a phase is abandoned, e.g. on reset)."""
        self._jobs.clear()

    def jobs(self) -> Iterator[ChainProductJob]:
        return iter(self._jobs)

    def pending_jobs(self) -> List[ChainProductJob]:
        return [job for job in self._jobs if not job.is_complete]

    def all_complete(self) -> bool:
        return all(job.is_complete for job in self._jobs)

    def work(self, budget: Optional[int] = None) -> int:
        """Advance pending jobs by ``budget`` units (default: the per-update
        budget set at construction time); return the work performed."""
        allowance = self.budget_per_update if budget is None else budget
        if allowance < 0:
            raise ConfigurationError(f"budget must be non-negative, got {allowance}")
        self.updates_seen += 1
        done = 0
        for job in self._jobs:
            if done >= allowance:
                break
            if not job.is_complete:
                done += job.advance(allowance - done)
        self.total_operations += done
        return done

    def finish_all(self) -> int:
        """Run every pending job to completion (used at phase boundaries when
        the remaining work must be flushed, and in tests)."""
        done = 0
        for job in self._jobs:
            if not job.is_complete:
                done += job.run_to_completion()
        self.total_operations += done
        return done


# ---------------------------------------------------------------------------
# Density-aware product dispatch
# ---------------------------------------------------------------------------
#: Backend names a dispatcher (and the counters' ``backend`` option) accepts.
PRODUCT_BACKENDS = ("auto", "dense", "csr")


@dataclass(frozen=True)
class ProductDecision:
    """Outcome of one dispatch: the chosen kernel and its cost estimates."""

    backend: str
    costs: Dict[str, float]

    @property
    def cost(self) -> float:
        """The estimated cost of the chosen backend, in dense-flop units."""
        return self.costs[self.backend]


@dataclass(frozen=True)
class ProductDispatcher:
    """Chooses dense BLAS or CSR SpGEMM for a whole-graph matrix product.

    The counters' batched rebuild hooks describe each product by its trimmed
    dimensions and the exact SpGEMM expansion size (``nnz``-weighted work,
    :func:`repro.matmul.engine.spgemm_work`) and dispatch through
    :meth:`decide`.  The decision applies Claim 3.4 beyond empty rows: the
    dense cube ``rows * middles * columns`` is compared against the expansion
    work at calibrated per-operation constants
    (:func:`repro.matmul.omega.product_cost_estimates`), so sparse graphs run
    the Gustavson kernel and dense ones keep BLAS.  ``dense_cells_limit``
    caps the dense operand/product sizes the automatic mode may materialize —
    beyond it the CSR path is forced regardless of estimated speed, bounding
    peak memory at million-vertex scale.  ``backend`` pins the choice
    (``"dense"``/``"csr"``); ``"auto"`` compares costs.

    ``workers > 1`` marks the CSR kernel as shard-parallel (see
    :class:`repro.matmul.sharding.ShardExecutor`): its estimate is divided by
    the parallelism the host can actually grant the pool, tilting the
    automatic choice toward the kernel that scales out.  The dense BLAS path
    keeps its serial estimate — its threading (if any) belongs to the BLAS
    library, not to this dispatcher.
    """

    backend: str = "auto"
    #: Bias applied to the dense estimate; > 1.0 steers the tie region to CSR.
    dense_bias: float = 1.0
    #: Never densify matrices with more cells than this in automatic mode
    #: (2^24 int64 cells = 128 MB per operand).
    dense_cells_limit: int = 1 << 24
    #: Shard-parallel worker count backing the CSR kernel (1 = serial).
    workers: int = 1

    def __post_init__(self) -> None:
        if self.backend not in PRODUCT_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {', '.join(PRODUCT_BACKENDS)}, "
                f"got {self.backend!r}"
            )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be positive, got {self.workers}")

    def _csr_parallelism(self) -> int:
        """How much the host can actually divide the CSR estimate by."""
        from repro.matmul.sharding import available_cores

        return max(1, min(self.workers, available_cores()))

    def decide(
        self, rows: int, middles: int, columns: int, expansion_work: int
    ) -> ProductDecision:
        """Pick the kernel for one ``rows x middles · middles x columns``
        product whose exact SpGEMM expansion size is ``expansion_work``."""
        costs = product_cost_estimates(rows, middles, columns, expansion_work)
        if self.workers > 1:
            costs = dict(costs, csr=costs["csr"] / self._csr_parallelism())
        if self.backend != "auto":
            return ProductDecision(backend=self.backend, costs=costs)
        largest_cells = max(rows * middles, middles * columns, rows * columns)
        if largest_cells > self.dense_cells_limit:
            return ProductDecision(backend="csr", costs=costs)
        if costs["csr"] <= self.dense_bias * costs["dense"]:
            return ProductDecision(backend="csr", costs=costs)
        return ProductDecision(backend="dense", costs=costs)

    def decide_square(self, size: int, expansion_work: int) -> ProductDecision:
        """Dispatch for a square ``size x size`` product (the adjacency case)."""
        return self.decide(size, size, size, expansion_work)
