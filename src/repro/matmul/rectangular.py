"""Class-restricted (rectangular) products over :class:`CountMatrix`.

The algorithms constantly multiply *submatrices* obtained by restricting a
relation to a vertex class on each side — ``A^{H*} · B_{<i}``,
``A^{L*} · B_{i,DD}``, and so on.  These helpers extract the restrictions and
perform the rectangular product, trimming away empty rows and columns exactly
as the paper's dimension arguments do (Claims 3.4 and 3.6), and report the
trimmed dimensions so benchmarks can compare them against the cost model of
:mod:`repro.matmul.omega`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional

from repro.matmul.engine import CountMatrix, MatmulEngine

Label = Hashable


def restrict(
    matrix: CountMatrix,
    rows: Optional[Iterable[Label]] = None,
    columns: Optional[Iterable[Label]] = None,
) -> CountMatrix:
    """The submatrix of ``matrix`` with rows/columns limited to the given sets.

    ``None`` means "keep everything" (the paper's ``*`` wildcard, as in
    ``A^{H*}``).
    """
    row_set = set(rows) if rows is not None else None
    column_set = set(columns) if columns is not None else None
    result = CountMatrix()
    for row, column, value in matrix.items():
        if row_set is not None and row not in row_set:
            continue
        if column_set is not None and column not in column_set:
            continue
        result.add(row, column, value)
    return result


def restrict_by_predicate(
    matrix: CountMatrix,
    row_predicate: Optional[Callable[[Label], bool]] = None,
    column_predicate: Optional[Callable[[Label], bool]] = None,
) -> CountMatrix:
    """Like :func:`restrict` but with membership predicates.

    Useful when the class of a vertex is a function (e.g. "is this vertex
    dense right now?") rather than a materialized set.
    """
    result = CountMatrix()
    for row, column, value in matrix.items():
        if row_predicate is not None and not row_predicate(row):
            continue
        if column_predicate is not None and not column_predicate(column):
            continue
        result.add(row, column, value)
    return result


@dataclass(frozen=True)
class RectangularProductReport:
    """The result of a class-restricted product plus its trimmed dimensions."""

    product: CountMatrix
    left_rows: int
    inner_dimension: int
    right_columns: int

    @property
    def naive_cost(self) -> int:
        """The schoolbook cost of the trimmed product."""
        return self.left_rows * self.inner_dimension * self.right_columns


def rectangular_multiply(
    engine: MatmulEngine,
    left: CountMatrix,
    right: CountMatrix,
    left_rows: Optional[Iterable[Label]] = None,
    inner: Optional[Iterable[Label]] = None,
    right_columns: Optional[Iterable[Label]] = None,
    backend: str = "auto",
) -> RectangularProductReport:
    """Multiply class-restricted views of ``left`` and ``right``.

    ``left_rows`` restricts the rows of ``left``, ``inner`` restricts the
    shared dimension (columns of ``left`` and rows of ``right``), and
    ``right_columns`` restricts the columns of ``right``.
    """
    left_restricted = restrict(left, rows=left_rows, columns=inner)
    right_restricted = restrict(right, rows=inner, columns=right_columns)
    product = engine.multiply(left_restricted, right_restricted, backend=backend)
    inner_labels = left_restricted.column_labels() | right_restricted.row_labels()
    return RectangularProductReport(
        product=product,
        left_rows=len(left_restricted.row_labels()),
        inner_dimension=len(inner_labels),
        right_columns=len(right_restricted.column_labels()),
    )
