"""Command-line interface for quick experiments.

Installed as ``repro-4cycles``.  Subcommands:

* ``constants`` — print the Theorem 1/2 parameter tables (experiments E1/E2)
  and the Appendix B constraint verification (E3).
* ``compare`` — replay a synthetic workload through several counters and print
  the comparison table (a small version of experiments E4/E5).
* ``omega-sweep`` — print the update-time exponent as a function of omega (E8).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.registry import available_counters
from repro.instrumentation.harness import compare_counters, format_table, summary_table
from repro.theory.exponents import comparison_table, omega_sweep
from repro.theory.parameters import published_parameters, verify_published_parameters
from repro.workloads.generators import erdos_renyi_stream, hub_adversarial_stream, power_law_stream

_WORKLOADS = {
    "erdos-renyi": erdos_renyi_stream,
    "power-law": power_law_stream,
    "hubs": hub_adversarial_stream,
}


def _command_constants(_: argparse.Namespace) -> int:
    for which in ("current", "best"):
        published = published_parameters(which)
        print(f"[{which} omega = {published.omega}]")
        print(f"  eps    = {published.main.eps:.7f}")
        print(f"  delta  = {published.main.delta:.7f}")
        print(f"  update-time exponent = {published.main.update_time_exponent:.6f}")
        print(f"  warm-up eps1 = {published.warmup.eps1:.8f}, eps2 = {published.warmup.eps2:.8f}")
        report = verify_published_parameters(which)
        status = "satisfied" if report.all_satisfied else "VIOLATED"
        print(f"  Appendix B constraints: {status}")
        for evaluation in report.main_evaluations + report.warmup_evaluations:
            print(
                f"    {evaluation.name}: lhs={evaluation.lhs:.6f} <= rhs={evaluation.rhs:.6f} "
                f"({'ok' if evaluation.satisfied else 'violated'})"
            )
    print()
    print("Headline exponent comparison:")
    for row in comparison_table():
        print(f"  {row.algorithm:<40} m^{row.exponent:.6f}   {row.note}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    workload = _WORKLOADS[args.workload]
    stream = workload(args.vertices, args.updates, seed=args.seed)
    names = args.counters.split(",") if args.counters else available_counters()
    results = compare_counters(names, stream)
    print(f"workload={args.workload} vertices={args.vertices} updates={args.updates}")
    print(format_table(summary_table(results)))
    return 0


def _command_omega_sweep(args: argparse.Namespace) -> int:
    omegas = [2.0 + args.step * index for index in range(int((3.0 - 2.0) / args.step) + 1)]
    print(f"{'omega':>8}  {'eps':>10}  {'delta':>10}  {'exponent':>10}  improves")
    for row in omega_sweep(omegas):
        print(
            f"{row.omega:>8.3f}  {row.eps:>10.6f}  {row.delta:>10.6f}  "
            f"{row.update_time_exponent:>10.6f}  {'yes' if row.improves else 'no'}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-4cycles",
        description="Fully dynamic 4-cycle counting (Assadi & Shah, PODS 2025) — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    constants = subparsers.add_parser("constants", help="print the Theorem 1/2 parameter tables")
    constants.set_defaults(handler=_command_constants)

    compare = subparsers.add_parser("compare", help="compare counters on a synthetic workload")
    compare.add_argument("--workload", choices=sorted(_WORKLOADS), default="erdos-renyi")
    compare.add_argument("--vertices", type=int, default=40)
    compare.add_argument("--updates", type=int, default=300)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--counters",
        default="",
        help="comma-separated counter names (default: all registered counters)",
    )
    compare.set_defaults(handler=_command_compare)

    sweep = subparsers.add_parser("omega-sweep", help="update-time exponent as a function of omega")
    sweep.add_argument("--step", type=float, default=0.05)
    sweep.set_defaults(handler=_command_omega_sweep)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
