"""Command-line interface for quick experiments.

Installed as ``repro-4cycles``.  Subcommands:

* ``constants`` — print the Theorem 1/2 parameter tables (experiments E1/E2)
  and the Appendix B constraint verification (E3).
* ``counters`` — print the registry's capability table: one row per registered
  :class:`~repro.api.CounterSpec` (update-time class, batch-hook support,
  oracle use, accepted options).
* ``compare`` — replay a synthetic workload through several counters and print
  the comparison table (a small version of experiments E4/E5).  With
  ``--batch-size N`` the replay goes through the batched update pipeline
  (``apply_batch`` windows of ``N`` updates) instead of update-at-a-time.
* ``omega-sweep`` — print the update-time exponent as a function of omega (E8).
* ``lint`` — run repro-lint, the repository's AST-based invariant analyzer
  (exactness, layering, hot-path, shard-safety, exception-hygiene rules; see
  :mod:`repro.lint`).  Exit 0 means no non-baselined findings.
* ``batch-throughput`` — measure updates/sec of the batch pipeline as a
  function of batch size for the selected counters (experiment E10).
* ``recover`` — rebuild an engine from a write-ahead log and its snapshot
  generations (:func:`repro.durability.recover`), print the recovery report,
  and verify the recovered count against a from-scratch recount.  With
  ``--compact`` the recovered engine snapshots and compacts the log before
  exiting.
* ``bench`` — run the performance experiments (E10 batch throughput, E11
  interned-kernel throughput, E12 sparse-vs-dense product backends) in one
  invocation, print their tables, and write the machine-readable
  ``BENCH_E10.json``/``BENCH_E11.json``/``BENCH_E12.json`` artifacts.
  ``--quick`` shrinks the workloads for CI smoke runs; exactness (identical
  counts between scalar and vectorized paths, identical products across
  backends) is always enforced — a mismatch exits non-zero — while timing is
  reported, never gated.  ``--backend {auto,dense,csr,sparse}`` restricts the
  E12 product sweep to one backend (plus the dict baseline) and pins the
  counters' batch-kernel backend for E10/E11.

Every subcommand that runs counters goes through the :mod:`repro.api` facade:
workloads are :class:`~repro.api.GeneratorSource` instances and counters are
constructed from :class:`~repro.api.EngineConfig`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.api import GeneratorSource, available_counter_names, available_specs
from repro.instrumentation.harness import compare_counters, format_table, summary_table
from repro.lint.cli import add_lint_arguments, run_lint
from repro.theory.exponents import comparison_table, omega_sweep
from repro.theory.parameters import published_parameters, verify_published_parameters

#: Workloads whose generators share the uniform (num_vertices, num_updates,
#: seed) signature; the catalogue's other entries need workload-specific
#: parameters the CLI does not expose.
_CLI_WORKLOADS = ("erdos-renyi", "hubs", "power-law")


# ---------------------------------------------------------------------------
# Shared argument utilities (used by every subcommand that takes them)
# ---------------------------------------------------------------------------
def _positive_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from error
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {parsed}")
    return parsed


def _nonnegative_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from error
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {parsed}")
    return parsed


def _batch_size_list(value: str) -> List[int]:
    return [_positive_int(size) for size in value.split(",")]


def _split_counters(value: str) -> Optional[List[str]]:
    """Parse a comma-separated counter list; empty selects every counter."""
    names = [name.strip() for name in value.split(",") if name.strip()]
    return names or None


def _add_workload_arguments(
    parser: argparse.ArgumentParser, default_vertices: int, default_updates: int
) -> None:
    """The stream-shape arguments shared by the replay subcommands."""
    parser.add_argument("--vertices", type=_positive_int, default=default_vertices)
    parser.add_argument("--updates", type=_positive_int, default=default_updates)
    parser.add_argument("--seed", type=_nonnegative_int, default=0)


def _add_counters_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--counters",
        type=_split_counters,
        default=None,
        help="comma-separated counter names (default: all registered counters)",
    )


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def _command_constants(_: argparse.Namespace) -> int:
    for which in ("current", "best"):
        published = published_parameters(which)
        print(f"[{which} omega = {published.omega}]")
        print(f"  eps    = {published.main.eps:.7f}")
        print(f"  delta  = {published.main.delta:.7f}")
        print(f"  update-time exponent = {published.main.update_time_exponent:.6f}")
        print(f"  warm-up eps1 = {published.warmup.eps1:.8f}, eps2 = {published.warmup.eps2:.8f}")
        report = verify_published_parameters(which)
        status = "satisfied" if report.all_satisfied else "VIOLATED"
        print(f"  Appendix B constraints: {status}")
        for evaluation in report.main_evaluations + report.warmup_evaluations:
            print(
                f"    {evaluation.name}: lhs={evaluation.lhs:.6f} <= rhs={evaluation.rhs:.6f} "
                f"({'ok' if evaluation.satisfied else 'violated'})"
            )
    print()
    print("Headline exponent comparison:")
    for row in comparison_table():
        print(f"  {row.algorithm:<40} m^{row.exponent:.6f}   {row.note}")
    return 0


def _command_counters(_: argparse.Namespace) -> int:
    rows = []
    for spec in available_specs():
        rows.append(
            {
                "counter": spec.name,
                "update_time": spec.asymptotic,
                "batch_hook": "yes" if spec.supports_batch_hook else "no",
                "oracle": "yes" if spec.needs_oracle else "no",
                "options": ",".join(spec.option_names()) or "(unvalidated)",
                "description": spec.description,
            }
        )
    print(format_table(rows))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    source = GeneratorSource(
        args.workload,
        num_vertices=args.vertices,
        num_updates=args.updates,
        seed=args.seed,
    )
    names = args.counters if args.counters else available_counter_names()
    results = compare_counters(names, source.to_stream(), batch_size=args.batch_size)
    print(
        f"workload={args.workload} vertices={args.vertices} updates={args.updates} "
        f"batch-size={args.batch_size}"
    )
    print(format_table(summary_table(results)))
    return 0


def _command_batch_throughput(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import experiment_e10_batch_throughput

    rows = experiment_e10_batch_throughput(
        num_vertices=args.vertices,
        num_updates=args.updates,
        batch_sizes=args.batch_sizes,
        counters=args.counters,
        seed=args.seed,
    )
    print(f"{'counter':<14} {'batch':>6} {'upd/s':>12} {'speedup':>8}  consistent")
    for row in rows:
        speedup = (
            f"{row.speedup_vs_unbatched:>8.2f}"
            if row.speedup_vs_unbatched == row.speedup_vs_unbatched
            else f"{'-':>8}"
        )
        print(
            f"{row.counter:<14} {row.batch_size:>6} {row.updates_per_second:>12.1f} "
            f"{speedup}  {'yes' if row.consistent else 'NO'}"
        )
    return 0


#: Workload parameters for ``bench``: full profile and the CI ``--quick`` one.
_BENCH_PROFILES = {
    "full": {
        "e10": {"num_vertices": 24, "num_updates": 1280, "batch_sizes": (1, 8, 64, 256)},
        "e11": {"num_vertices": 32, "num_updates": 2560, "batch_size": 256},
        "e12": {
            "community_count": 128,
            "community_size": 48,
            "uniform_dimension": 512,
            "dense_dimension": 192,
            "wedge_vertices": 2048,
            "wedge_base_edges": 12288,
            "wedge_churn_updates": 2560,
            "wedge_batch_size": 128,
            "product_repeats": 3,
        },
        "e14": {
            "community_count": 128,
            "community_size": 48,
            "workers": (1, 2, 4),
            "churn_edges": 64,
            "repeats": 3,
            "seed": 0,
        },
        "e15": {
            "clients": 1200,
            "batches_per_client": 2,
            "batch_size": 8,
            "block": 8,
            "readers": 64,
            "reader_polls": 4,
            "counter": "wedge",
        },
    },
    "quick": {
        "e10": {"num_vertices": 16, "num_updates": 384, "batch_sizes": (1, 64)},
        "e11": {
            "num_vertices": 20,
            "num_updates": 768,
            "batch_size": 64,
            "chain_dimension": 64,
            "chain_repeats": 2,
        },
        "e12": {
            "community_count": 24,
            "community_size": 16,
            "uniform_dimension": 128,
            "dense_dimension": 64,
            "wedge_vertices": 384,
            "wedge_base_edges": 2048,
            "wedge_churn_updates": 512,
            "wedge_batch_size": 64,
        },
        "e14": {
            "community_count": 48,
            "community_size": 24,
            "workers": (1, 2),
            "churn_edges": 64,
            "repeats": 1,
            "seed": 0,
        },
        "e15": {
            "clients": 128,
            "batches_per_client": 1,
            "batch_size": 4,
            "block": 8,
            "readers": 16,
            "reader_polls": 2,
            "counter": "wedge",
        },
    },
}


def _command_bench(args: argparse.Namespace) -> int:
    from repro.analysis import (
        experiment_e10_batch_throughput,
        experiment_e11_kernel_throughput,
        experiment_e12_spgemm_backends,
        experiment_e14_shard_scaling,
        experiment_e15_service_load,
        text_table,
        write_bench_artifact,
    )

    profile = _BENCH_PROFILES["quick" if args.quick else "full"]
    chosen = [name.strip().lower() for name in args.experiments.split(",") if name.strip()]
    runners = {
        "e10": ("E10", "batch-pipeline throughput", experiment_e10_batch_throughput),
        "e11": ("E11", "interned kernel throughput", experiment_e11_kernel_throughput),
        "e12": ("E12", "sparse-vs-dense product backends", experiment_e12_spgemm_backends),
        "e14": ("E14", "shard-parallel scaling", experiment_e14_shard_scaling),
        "e15": ("E15", "always-on service load", experiment_e15_service_load),
    }
    for name in chosen:
        if name not in runners:
            print(f"unknown experiment {name!r}; expected a subset of: e10,e11,e12,e14,e15")
            return 2
    for name in chosen:
        artifact_name, title, runner = runners[name]
        params = dict(profile[name])
        if name == "e14":
            # --workers caps the sweep; the serial baseline always runs so
            # every row's speedup and bit-identity check stay anchored.
            params["workers"] = tuple(
                count for count in params["workers"] if count <= args.workers
            ) or (1,)
        elif name == "e12":
            # --backend restricts the product sweep; the dict baseline always
            # runs for verification.
            params["backends"] = (
                ("sparse", "csr", "dense") if args.backend == "auto" else (args.backend,)
            )
        elif name != "e15" and args.backend in ("dense", "csr"):
            # Pin the counters' batch-kernel backend; "sparse" has no counter
            # meaning (the dict backend only exists at the matmul layer).
            # E15 load-tests the service protocol, not a kernel backend.
            params["backend"] = args.backend
        # Exactness between scalar and vectorized paths is asserted inside the
        # experiments; a mismatch raises and exits non-zero.
        rows = runner(**params)
        path = write_bench_artifact(artifact_name, params, rows, directory=args.output_dir)
        print(f"=== {artifact_name} {title} ===")
        print(text_table(rows, float_digits=2))
        print(f"wrote {path}")
        print()
    return 0


def _command_recover(args: argparse.Namespace) -> int:
    from repro.durability import recover
    from repro.exceptions import ReproError

    try:
        engine, report = recover(
            args.wal,
            config=args.counter,
            attach=args.compact,
            batch_size=args.batch_size,
        )
    except ReproError as error:
        print(f"recovery failed: {error}", file=sys.stderr)
        return 1
    # The recovered engine owns live resources (with --compact, the reopened
    # WAL fd); a raising consistency check or compaction must still release
    # them, so close() sits in a finally covering every exit path.
    try:
        consistent = engine.is_consistent()
        compacted = engine.compact_wal() if args.compact else None
    except ReproError as error:
        print(f"recovery failed: {error}", file=sys.stderr)
        return 1
    finally:
        engine.close()
    print(f"wal             {report.wal_path}")
    print(f"counter         {report.counter}")
    print(f"snapshot        {report.snapshot_path or '(none; full-log replay)'}")
    print(f"snapshot seq    {report.snapshot_seq}")
    print(f"replayed        {report.replayed_records} record(s)")
    print(f"torn tail       {'dropped' if report.torn_tail_dropped else 'no'}")
    print(f"rejected tail   {'dropped' if report.rejected_tail_dropped else 'no'}")
    print(f"last seq        {report.last_seq}")
    print(f"count           {report.count}")
    print(f"consistent      {'yes' if consistent else 'NO'}")
    if compacted is not None:
        print(f"compacted       log now holds {compacted} record(s)")
    return 0 if consistent else 1


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ReproService

    service = ReproService(host=args.host, port=args.port)

    async def _serve() -> None:
        host, port = await service.start()
        print(f"repro-4cycles service listening on http://{host}:{port}")
        print(
            "routes: /health  /engines  /engines/<name>/"
            "{updates,counts,vertices,consistency,compact,events}"
        )
        await service.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("service stopped")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    return run_lint(args)


def _command_omega_sweep(args: argparse.Namespace) -> int:
    omegas = [2.0 + args.step * index for index in range(int((3.0 - 2.0) / args.step) + 1)]
    print(f"{'omega':>8}  {'eps':>10}  {'delta':>10}  {'exponent':>10}  improves")
    for row in omega_sweep(omegas):
        print(
            f"{row.omega:>8.3f}  {row.eps:>10.6f}  {row.delta:>10.6f}  "
            f"{row.update_time_exponent:>10.6f}  {'yes' if row.improves else 'no'}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-4cycles",
        description="Fully dynamic 4-cycle counting (Assadi & Shah, PODS 2025) — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    constants = subparsers.add_parser("constants", help="print the Theorem 1/2 parameter tables")
    constants.set_defaults(handler=_command_constants)

    counters = subparsers.add_parser(
        "counters", help="print the registered counters and their capabilities"
    )
    counters.set_defaults(handler=_command_counters)

    compare = subparsers.add_parser("compare", help="compare counters on a synthetic workload")
    compare.add_argument("--workload", choices=_CLI_WORKLOADS, default="erdos-renyi")
    _add_workload_arguments(compare, default_vertices=40, default_updates=300)
    _add_counters_argument(compare)
    compare.add_argument(
        "--batch-size",
        type=_positive_int,
        default=1,
        help="feed the stream through apply_batch in windows of this size (default: 1)",
    )
    compare.set_defaults(handler=_command_compare)

    lint = subparsers.add_parser(
        "lint", help="run repro-lint, the repository invariant analyzer"
    )
    add_lint_arguments(lint)
    lint.set_defaults(handler=_command_lint)

    recover = subparsers.add_parser(
        "recover",
        help="rebuild an engine from a write-ahead log and print the recovery report",
    )
    recover.add_argument("wal", help="path to the write-ahead log")
    recover.add_argument(
        "--counter",
        default=None,
        help=(
            "override the recorded counter (default: the config stored in the "
            "newest valid snapshot, or the WAL metadata sidecar)"
        ),
    )
    recover.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        help="replay window size (throughput only; the recovered count is identical)",
    )
    recover.add_argument(
        "--compact",
        action="store_true",
        help="after recovery, snapshot and compact the log in place",
    )
    recover.set_defaults(handler=_command_recover)

    serve = subparsers.add_parser(
        "serve",
        help="start the always-on multi-tenant HTTP service (JSON endpoints + SSE events)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8420,
        help="TCP port; 0 lets the kernel pick a free one (default: 8420)",
    )
    serve.set_defaults(handler=_command_serve)

    sweep = subparsers.add_parser("omega-sweep", help="update-time exponent as a function of omega")
    sweep.add_argument("--step", type=float, default=0.05)
    sweep.set_defaults(handler=_command_omega_sweep)

    throughput = subparsers.add_parser(
        "batch-throughput", help="updates/sec versus batch size (experiment E10)"
    )
    _add_workload_arguments(throughput, default_vertices=24, default_updates=1280)
    throughput.add_argument(
        "--batch-sizes",
        type=_batch_size_list,
        default=[1, 8, 64, 256],
        help="comma-separated batch sizes to sweep (default: 1,8,64,256)",
    )
    _add_counters_argument(throughput)
    throughput.set_defaults(handler=_command_batch_throughput)

    bench = subparsers.add_parser(
        "bench",
        help="run the perf experiments (E10/E11/E12/E14/E15) and write BENCH_E*.json artifacts",
    )
    bench.add_argument(
        "--experiments",
        default="e10,e11,e12,e14,e15",
        help="comma-separated subset of e10,e11,e12,e14,e15 to run (default: all)",
    )
    bench.add_argument(
        "--backend",
        choices=("auto", "dense", "csr", "sparse"),
        default="auto",
        help=(
            "matmul backend passthrough: restricts the E12 product sweep to one "
            "backend (dict baseline always runs) and, for dense/csr, pins the "
            "counters' batch-kernel backend in E10/E11 (default: auto)"
        ),
    )
    bench.add_argument(
        "--workers",
        type=_positive_int,
        default=4,
        help=(
            "cap the E14 shard-worker sweep (the workers=1 serial baseline "
            "always runs; default: 4)"
        ),
    )
    bench.add_argument(
        "--output-dir",
        default=None,
        help="artifact directory (default: REPRO_BENCH_DIR or the current directory)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small CI-smoke workloads; exactness still enforced, timing only reported",
    )
    bench.set_defaults(handler=_command_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
