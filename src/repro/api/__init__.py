"""Unified, typed entry point for running the dynamic 4-cycle counters.

The subsystem has four pieces:

* :class:`~repro.api.config.EngineConfig` — a validated description of a run
  (counter, options, batch size, interning/metrics/cost switches) with
  ``from_dict``/``to_dict`` round-trips.
* :class:`~repro.api.registry.CounterSpec` — capability descriptors for the
  registered counters (options, batch-hook support, oracle use, asymptotics).
* :mod:`repro.api.sources` — the :class:`UpdateSource` protocol and adapters
  for generated, replayed, and database-tuple update feeds.
* :class:`~repro.api.engine.FourCycleEngine` — the facade that owns a counter,
  drives sources through it, snapshots/restores state, and publishes events.

Quickstart::

    from repro.api import EngineConfig, FourCycleEngine

    engine = FourCycleEngine(EngineConfig(counter="assadi-shah", batch_size=64))
    engine.insert("a", "b")
    final = engine.run(stream)          # any UpdateSource
    snapshot = engine.checkpoint()      # restorable, JSON-serializable
    clone = FourCycleEngine.restore(snapshot)
"""

from repro.api.config import EngineConfig
from repro.api.engine import (
    EVENT_BATCH_APPLIED,
    EVENT_CHECKPOINT,
    EVENT_EXECUTOR_DEGRADED,
    EVENT_KINDS,
    EVENT_PHASE_REBUILD,
    EVENT_UPDATE_APPLIED,
    EngineEvent,
    EngineSnapshot,
    FourCycleEngine,
)
from repro.api.registry import (
    CounterSpec,
    OptionSpec,
    available_counter_names,
    available_specs,
    counter_spec,
    register_spec,
)
from repro.api.sources import (
    GENERATOR_CATALOGUE,
    GeneratorSource,
    ReplaySource,
    TupleFeedSource,
    UpdateSource,
    as_update_source,
    iter_windows,
)

__all__ = [
    "EngineConfig",
    "FourCycleEngine",
    "EngineEvent",
    "EngineSnapshot",
    "EVENT_KINDS",
    "EVENT_UPDATE_APPLIED",
    "EVENT_BATCH_APPLIED",
    "EVENT_PHASE_REBUILD",
    "EVENT_CHECKPOINT",
    "EVENT_EXECUTOR_DEGRADED",
    "CounterSpec",
    "OptionSpec",
    "register_spec",
    "counter_spec",
    "available_specs",
    "available_counter_names",
    "UpdateSource",
    "GeneratorSource",
    "ReplaySource",
    "TupleFeedSource",
    "GENERATOR_CATALOGUE",
    "as_update_source",
    "iter_windows",
]
