"""Typed, validated engine configuration.

:class:`EngineConfig` is the single description of "how to run a counter" that
every consumer — CLI, harness, benchmarks, examples, checkpoints — shares.  It
captures the counter name, its counter-specific options, the batch size the
stream is windowed into, and the interning/metrics/cost-model switches, and it
round-trips through plain dictionaries (:meth:`EngineConfig.to_dict` /
:meth:`EngineConfig.from_dict`) so it can live inside CLI arguments and JSON
artifacts unchanged.

Validation happens at construction time, against the counter's registered
:class:`~repro.api.registry.CounterSpec`: an unknown counter name or an option
the counter does not accept raises
:class:`~repro.exceptions.ConfigurationError` here, at the API boundary,
instead of a ``TypeError`` deep inside a constructor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.api.registry import counter_spec
from repro.exceptions import ConfigurationError

#: Options accepted by every counter but owned by :class:`EngineConfig` itself;
#: they must be set through the config fields, not the options mapping, so a
#: config never says the same thing twice.
_RESERVED_OPTIONS = (
    "record_metrics", "interned", "backend", "workers", "shard_policy", "block_entries",
    "wal_path", "snapshot_every", "fsync_policy",
)

#: Matmul backends a counter's batch kernels accept (mirrors
#: :data:`repro.matmul.scheduler.PRODUCT_BACKENDS`; duplicated literally so a
#: config error does not require importing the matmul layer).
_BACKEND_CHOICES = ("auto", "dense", "csr")

#: Shard execution policies the counters' shard-parallel SpGEMM accepts
#: (mirrors :data:`repro.matmul.sharding.SHARD_POLICIES`; duplicated literally
#: for the same import-isolation reason as the backends above).
_SHARD_POLICY_CHOICES = ("auto", "serial", "thread", "process")

#: WAL fsync policies (mirrors :data:`repro.durability.wal.FSYNC_POLICIES`;
#: duplicated literally for the same import-isolation reason).
_FSYNC_POLICY_CHOICES = ("always", "batch", "never")


@dataclass(frozen=True)
class EngineConfig:
    """Everything needed to build and drive a :class:`FourCycleEngine`.

    ``options`` holds only counter-specific knobs (e.g. ``phase_length`` for
    the phase-based counters); the switches shared by every counter —
    ``interned``, ``record_metrics``, and the batch-kernel matmul ``backend``
    (``"auto"`` dispatches dense BLAS versus CSR SpGEMM per product by density;
    ``"dense"``/``"csr"`` pin the kernel) — are top-level fields.
    ``track_costs=False`` disables the operation-count cost model entirely,
    which removes the per-operation accounting overhead from hot paths.
    """

    counter: str = "assadi-shah"
    options: Mapping[str, object] = field(default_factory=dict)
    batch_size: int = 1
    interned: bool = True
    record_metrics: bool = False
    track_costs: bool = True
    backend: str = "auto"
    workers: int = 1
    shard_policy: str = "auto"
    block_entries: "int | None" = None
    #: Durability: a write-ahead log path enables crash-safe operation (every
    #: update is logged before it is applied; see :mod:`repro.durability`);
    #: ``snapshot_every`` checkpoints next to the log after that many logged
    #: records; ``fsync_policy`` picks when the log hits stable storage
    #: ("always" per record, "batch" per apply/apply_batch call, "never").
    wal_path: "str | None" = None
    snapshot_every: "int | None" = None
    fsync_policy: str = "batch"

    def __post_init__(self) -> None:
        if not isinstance(self.batch_size, int) or isinstance(self.batch_size, bool):
            raise ConfigurationError(
                f"batch_size must be an integer, got {type(self.batch_size).__name__}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if self.backend not in _BACKEND_CHOICES:
            raise ConfigurationError(
                f"backend must be one of {', '.join(_BACKEND_CHOICES)}, "
                f"got {self.backend!r}"
            )
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise ConfigurationError(
                f"workers must be an integer, got {type(self.workers).__name__}"
            )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be positive, got {self.workers}")
        if self.shard_policy not in _SHARD_POLICY_CHOICES:
            raise ConfigurationError(
                f"shard_policy must be one of {', '.join(_SHARD_POLICY_CHOICES)}, "
                f"got {self.shard_policy!r}"
            )
        if self.block_entries is not None:
            if not isinstance(self.block_entries, int) or isinstance(self.block_entries, bool):
                raise ConfigurationError(
                    f"block_entries must be an integer or None, "
                    f"got {type(self.block_entries).__name__}"
                )
            if self.block_entries < 1:
                raise ConfigurationError(
                    f"block_entries must be positive, got {self.block_entries}"
                )
        if self.wal_path is not None:
            if not isinstance(self.wal_path, (str, bytes)) and not hasattr(self.wal_path, "__fspath__"):
                raise ConfigurationError(
                    f"wal_path must be a path or None, got {type(self.wal_path).__name__}"
                )
            object.__setattr__(self, "wal_path", str(self.wal_path))
        if self.snapshot_every is not None:
            if not isinstance(self.snapshot_every, int) or isinstance(self.snapshot_every, bool):
                raise ConfigurationError(
                    f"snapshot_every must be an integer or None, "
                    f"got {type(self.snapshot_every).__name__}"
                )
            if self.snapshot_every < 1:
                raise ConfigurationError(
                    f"snapshot_every must be positive, got {self.snapshot_every}"
                )
            if self.wal_path is None:
                raise ConfigurationError(
                    "snapshot_every requires wal_path (snapshots live next to the log)"
                )
        if self.fsync_policy not in _FSYNC_POLICY_CHOICES:
            raise ConfigurationError(
                f"fsync_policy must be one of {', '.join(_FSYNC_POLICY_CHOICES)}, "
                f"got {self.fsync_policy!r}"
            )
        object.__setattr__(self, "options", dict(self.options))
        reserved = sorted(set(self.options) & set(_RESERVED_OPTIONS))
        if reserved:
            raise ConfigurationError(
                f"option{'s' if len(reserved) > 1 else ''} "
                f"{', '.join(repr(name) for name in reserved)} must be set via the "
                f"EngineConfig field of the same name, not the options mapping"
            )
        # Raises on unknown counter names and on options the counter's spec
        # does not list (the reserved common options were handled above).
        spec = counter_spec(self.counter)
        spec.validate_options(self.options)
        for name, value, default in self._kernel_fields():
            if value != default and not self._spec_accepts(spec, name):
                raise ConfigurationError(
                    f"counter {self.counter!r} does not accept the {name!r} option; "
                    f"only {name}={default!r} is valid for it"
                )

    def _kernel_fields(self) -> tuple:
        """The shared batch-kernel fields forwarded like counter options."""
        return (
            ("backend", self.backend, "auto"),
            ("workers", self.workers, 1),
            ("shard_policy", self.shard_policy, "auto"),
            ("block_entries", self.block_entries, None),
        )

    @staticmethod
    def _spec_accepts(spec, name: str) -> bool:
        """Whether the counter takes one of the shared kernel keywords.

        Registered built-ins declare them in their option list; legacy specs
        registered from a bare factory (``options is None``) are assumed to
        follow the base-class signature and accept them.
        """
        return spec.options is None or name in spec.option_names()

    @property
    def spec(self):
        """The :class:`~repro.api.registry.CounterSpec` this config targets."""
        return counter_spec(self.counter)

    def counter_kwargs(self) -> Dict[str, object]:
        """The full keyword set to instantiate the counter with.

        The shared kernel fields (``backend``, ``workers``, ``shard_policy``,
        ``block_entries``) are forwarded only to counters that declare the
        option — and, for legacy bare-factory specs (``options is None``,
        signature unknown), only when explicitly set to a non-default value —
        so a third-party counter that predates an option keeps working under
        the default config.
        """
        kwargs = dict(
            self.options, record_metrics=self.record_metrics, interned=self.interned
        )
        spec = self.spec
        for name, value, default in self._kernel_fields():
            if name in spec.option_names() or (spec.options is None and value != default):
                kwargs[name] = value
        return kwargs

    def with_updates(self, **changes) -> "EngineConfig":
        """A copy of this config with the given fields replaced."""
        payload = self.to_dict()
        payload.update(changes)
        return EngineConfig.from_dict(payload)

    # -- dict round-trips ---------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A plain-dict representation (JSON-friendly, CLI-friendly)."""
        return {
            "counter": self.counter,
            "options": dict(self.options),
            "batch_size": self.batch_size,
            "interned": self.interned,
            "record_metrics": self.record_metrics,
            "track_costs": self.track_costs,
            "backend": self.backend,
            "workers": self.workers,
            "shard_policy": self.shard_policy,
            "block_entries": self.block_entries,
            "wal_path": self.wal_path,
            "snapshot_every": self.snapshot_every,
            "fsync_policy": self.fsync_policy,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EngineConfig":
        """Inverse of :meth:`to_dict`; every key is optional, unknown keys are
        rejected with a :class:`ConfigurationError`."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"engine config must be a mapping, got {type(payload).__name__}"
            )
        known = {
            "counter", "options", "batch_size", "interned", "record_metrics",
            "track_costs", "backend", "workers", "shard_policy", "block_entries",
            "wal_path", "snapshot_every", "fsync_policy",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown engine-config key{'s' if len(unknown) > 1 else ''}: "
                f"{', '.join(repr(key) for key in unknown)}; expected a subset of "
                f"{', '.join(sorted(known))}"
            )
        options = payload.get("options", {})
        if not isinstance(options, Mapping):
            raise ConfigurationError(
                f"engine-config options must be a mapping, got {type(options).__name__}"
            )
        return cls(
            counter=payload.get("counter", "assadi-shah"),
            options=dict(options),
            batch_size=payload.get("batch_size", 1),
            interned=payload.get("interned", True),
            record_metrics=payload.get("record_metrics", False),
            track_costs=payload.get("track_costs", True),
            backend=payload.get("backend", "auto"),
            workers=payload.get("workers", 1),
            shard_policy=payload.get("shard_policy", "auto"),
            block_entries=payload.get("block_entries", None),
            wal_path=payload.get("wal_path", None),
            snapshot_every=payload.get("snapshot_every", None),
            fsync_policy=payload.get("fsync_policy", "batch"),
        )

    @classmethod
    def from_counter_kwargs(
        cls, name: str, kwargs: Mapping[str, object], batch_size: int = 1
    ) -> "EngineConfig":
        """Build a config from a legacy ``create_counter``-style kwargs dict.

        The shared ``interned``/``record_metrics`` keywords are lifted into
        the matching config fields; everything else stays counter-specific.
        """
        options = dict(kwargs)
        interned = bool(options.pop("interned", True))
        record_metrics = bool(options.pop("record_metrics", False))
        backend = str(options.pop("backend", "auto"))
        workers = int(options.pop("workers", 1))
        shard_policy = str(options.pop("shard_policy", "auto"))
        block_entries = options.pop("block_entries", None)
        return cls(
            counter=name,
            options=options,
            batch_size=batch_size,
            interned=interned,
            record_metrics=record_metrics,
            backend=backend,
            workers=workers,
            shard_policy=shard_policy,
            block_entries=block_entries,
        )
