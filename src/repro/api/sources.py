"""Update sources: one protocol for everything that feeds an engine.

The repo grows update streams in three places — the synthetic generators of
:mod:`repro.workloads.generators`, saved streams replayed from disk, and the
database side's tuple feeds — and before this module each consumer adapted
them by hand.  :class:`UpdateSource` is the unifying protocol: *any re-iterable
of* :class:`~repro.graph.updates.EdgeUpdate`.  A plain
:class:`~repro.graph.updates.UpdateStream` already satisfies it; the adapters
here cover the other producers:

* :class:`GeneratorSource` — a named workload from the generator catalogue,
  built lazily on first iteration and cached for re-iteration.
* :class:`ReplaySource` — a JSON-lines stream saved by
  :func:`repro.io.serialization.save_stream`, read lazily line by line (the
  file is never materialized in memory, so arbitrarily large recorded streams
  can be replayed).
* :class:`TupleFeedSource` — a feed of database tuple updates
  (:class:`~repro.db.ivm.TupleUpdate` or
  :class:`~repro.graph.updates.LayeredEdgeUpdate`), encoded as general-graph
  edge updates on layer-tagged vertices ``(layer, value)``.  The resulting
  graph is the bipartite encoding of the 4-layered instance; general 4-cycle
  counts over it include every cyclic-join result plus the same-relation
  rectangles (two customers ordering the same two items) — the motif framing
  of the social-network example.

:func:`as_update_source` normalizes whatever a caller hands the engine, and
:func:`iter_windows` chunks any source into batch windows without
materializing it.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Protocol, Sequence, runtime_checkable

from repro.exceptions import ConfigurationError, InvalidUpdateError
from repro.graph.updates import RELATION_NAMES, EdgeUpdate, UpdateStream
from repro.workloads.generators import (
    erdos_renyi_stream,
    hub_adversarial_stream,
    mixed_churn_stream,
    power_law_stream,
    sliding_window_stream,
)


@runtime_checkable
class UpdateSource(Protocol):
    """Anything that can be iterated (repeatedly) into edge updates."""

    def __iter__(self) -> Iterator[EdgeUpdate]: ...


#: The named workload generators an engine (or the CLI) can ask for.
GENERATOR_CATALOGUE: Dict[str, Callable[..., UpdateStream]] = {
    "erdos-renyi": erdos_renyi_stream,
    "power-law": power_law_stream,
    "hubs": hub_adversarial_stream,
    "sliding-window": sliding_window_stream,
    "mixed-churn": mixed_churn_stream,
}


def as_update_source(source) -> UpdateSource:
    """Normalize ``source`` into an :class:`UpdateSource`.

    Accepts an existing source/stream unchanged, and wraps plain sequences of
    updates into an :class:`~repro.graph.updates.UpdateStream` (which also
    validates the element type).
    """
    if isinstance(source, (UpdateStream, GeneratorSource, ReplaySource, TupleFeedSource)):
        return source
    if isinstance(source, (list, tuple)):
        return UpdateStream(source)
    if isinstance(source, Iterable):
        return source
    raise ConfigurationError(
        f"expected an update source (iterable of EdgeUpdate), got {type(source).__name__}"
    )


def iter_windows(source: UpdateSource, batch_size: int) -> Iterator[List[EdgeUpdate]]:
    """Chunk a source into consecutive windows of ``batch_size`` updates.

    Unlike :meth:`UpdateStream.batched` this never materializes the whole
    source, so it works for unbounded streams; the last window may be shorter.
    """
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
    iterator = iter(source)
    while True:
        window = list(islice(iterator, batch_size))
        if not window:
            return
        yield window


class GeneratorSource:
    """A named synthetic workload from :data:`GENERATOR_CATALOGUE`.

    The stream is generated on first iteration and cached, so iterating the
    source twice replays identical updates (the generators are deterministic
    given their seed anyway; the cache just avoids recomputation).
    """

    def __init__(self, workload: str, **params) -> None:
        generator = GENERATOR_CATALOGUE.get(workload)
        if generator is None:
            raise ConfigurationError(
                f"unknown workload {workload!r}; available: "
                f"{', '.join(sorted(GENERATOR_CATALOGUE))}"
            )
        self.workload = workload
        self.params = dict(params)
        self._generator = generator
        self._stream: Optional[UpdateStream] = None

    def to_stream(self) -> UpdateStream:
        """The generated stream (building it on first use)."""
        if self._stream is None:
            self._stream = self._generator(**self.params)
        return self._stream

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self.to_stream())

    def __len__(self) -> int:
        return len(self.to_stream())

    def __repr__(self) -> str:
        params = ", ".join(f"{key}={value!r}" for key, value in sorted(self.params.items()))
        return f"GeneratorSource({self.workload!r}, {params})"


class ReplaySource:
    """Lazy replay of a stream saved by :func:`repro.io.serialization.save_stream`.

    Each iteration re-opens the file and decodes one JSON line at a time, so
    replaying never loads the whole stream into memory.  Use
    :meth:`to_stream` when a materialized :class:`UpdateStream` is needed.

    ``tolerate_torn_tail`` controls what a damaged record means.  In strict
    mode (the default) a truncated or corrupt line raises a
    :class:`~repro.exceptions.ConfigurationError` naming the path and line
    number.  In tolerant mode — the shape crash recovery needs, since a died
    writer leaves at most one partial final line — iteration stops cleanly at
    the last valid record, but *only* when the damaged record is the final
    one: a bad record with more data after it is mid-file corruption and
    raises in both modes.

    A write-ahead log written by
    :class:`~repro.durability.wal.WriteAheadLog` is itself a valid replay
    file (its ``seq``/``crc`` fields are ignored here).
    """

    def __init__(self, path, tolerate_torn_tail: bool = False) -> None:
        from pathlib import Path

        self.path = Path(path)
        self.tolerate_torn_tail = bool(tolerate_torn_tail)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        import json

        from repro.io.serialization import edge_update_from_dict

        pending_error: Optional[str] = None
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                if pending_error is not None:
                    # The damaged record was not the final one after all.
                    raise ConfigurationError(pending_error)
                try:
                    payload = json.loads(line)
                    update = edge_update_from_dict(payload)
                except json.JSONDecodeError as error:
                    message = f"{self.path}:{line_number}: not valid JSON: {line[:80]!r}"
                    if not self.tolerate_torn_tail:
                        raise ConfigurationError(message) from error
                    pending_error = message
                    continue
                except ConfigurationError as error:
                    message = f"{self.path}:{line_number}: {error}"
                    if not self.tolerate_torn_tail:
                        raise ConfigurationError(message) from error
                    pending_error = message
                    continue
                yield update

    def to_stream(self) -> UpdateStream:
        return UpdateStream(self)

    def __repr__(self) -> str:
        if self.tolerate_torn_tail:
            return f"ReplaySource({str(self.path)!r}, tolerate_torn_tail=True)"
        return f"ReplaySource({str(self.path)!r})"


class TupleFeedSource:
    """Database tuple updates encoded as layer-tagged general edge updates.

    ``relations`` names the cyclic chain in order (defaults to the paper's
    ``A``/``B``/``C``/``D``); relation ``i`` connects layer ``i+1`` to layer
    ``i+2`` (wrapping), and a tuple ``R_i(left, right)`` becomes the edge
    ``{(layer_i, left), (layer_{i+1}, right)}``.  Works for any feed whose
    elements expose ``relation``/``left``/``right``/``is_insert`` —
    :class:`~repro.db.ivm.TupleUpdate` and
    :class:`~repro.graph.updates.LayeredEdgeUpdate` both do.
    """

    def __init__(self, updates: Iterable, relations: Sequence[str] = RELATION_NAMES) -> None:
        if len(relations) != len(RELATION_NAMES):
            raise ConfigurationError(
                f"a cyclic chain needs exactly {len(RELATION_NAMES)} relations, "
                f"got {len(relations)}"
            )
        if len(set(relations)) != len(relations):
            raise ConfigurationError(f"relation names must be distinct, got {tuple(relations)}")
        self._updates = updates
        #: relation name -> (left layer tag, right layer tag)
        self._layers = {
            name: (f"L{index + 1}", f"L{(index + 1) % len(relations) + 1}")
            for index, name in enumerate(relations)
        }

    def encode(self, update) -> EdgeUpdate:
        """The general-graph edge update for one tuple update."""
        layers = self._layers.get(getattr(update, "relation", None))
        if layers is None:
            raise InvalidUpdateError(
                f"tuple update targets unknown relation {getattr(update, 'relation', None)!r}; "
                f"expected one of {tuple(self._layers)}"
            )
        left_layer, right_layer = layers
        constructor = EdgeUpdate.insert if update.is_insert else EdgeUpdate.delete
        return constructor((left_layer, update.left), (right_layer, update.right))

    def __iter__(self) -> Iterator[EdgeUpdate]:
        for update in self._updates:
            yield self.encode(update)

    def to_stream(self) -> UpdateStream:
        return UpdateStream(self)
