"""The unified engine facade over the dynamic 4-cycle counters.

Every workload in this repo — CLI runs, the experiment harness, benchmarks,
examples — drives a counter the same way: build it from a named registry
entry, window an update stream into batches, apply the batches, and read the
count at the boundaries.  :class:`FourCycleEngine` owns that loop behind one
typed entry point, so scaling work (sharding, async ingestion, multi-backend)
has a single seam to plug into:

* construction from a validated :class:`~repro.api.config.EngineConfig`;
* ``apply`` / ``apply_batch`` / ``stream`` over any
  :class:`~repro.api.sources.UpdateSource`, with the batch size taken from the
  config;
* ``checkpoint()`` / ``restore()`` snapshots serialized through
  :mod:`repro.io.serialization` — counts are bit-identical after a round-trip
  (verified at restore time) and subsequent update trajectories match a
  counter that never checkpointed, because every counter is exact and the
  snapshot preserves the graph exactly;
* a lightweight ``subscribe()`` event hook (update applied, batch boundary,
  phase rebuild, checkpoint, executor degradation) for instrumentation that
  should not live inside the counters;
* crash-safe durability: a config with ``wal_path`` set (or an explicit
  :meth:`attach_wal`) logs every update to a
  :class:`~repro.durability.wal.WriteAheadLog` *before* applying it, writes
  periodic snapshot generations next to the log (``snapshot_every``), and a
  restarted process calls :func:`repro.durability.recover` to resume
  bit-identically from the last durable record.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.config import EngineConfig
from repro.api.sources import UpdateSource, as_update_source, iter_windows
from repro.exceptions import (
    ConfigurationError,
    CounterStateError,
    InjectedCrashError,
    RecoverableEngineError,
    ReproError,
)
from repro.faults.injector import (
    ACTION_CRASH,
    ACTION_TORN_WRITE,
    SITE_SNAPSHOT_WRITE,
    FaultInjector,
)
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.instrumentation.cost_model import CostModel
from repro.instrumentation.metrics import UpdateMetrics

#: Event kinds emitted by :meth:`FourCycleEngine.subscribe` subscribers.
EVENT_UPDATE_APPLIED = "update-applied"
EVENT_BATCH_APPLIED = "batch-applied"
EVENT_PHASE_REBUILD = "phase-rebuild"
EVENT_CHECKPOINT = "checkpoint"
EVENT_EXECUTOR_DEGRADED = "executor-degraded"

EVENT_KINDS = (
    EVENT_UPDATE_APPLIED,
    EVENT_BATCH_APPLIED,
    EVENT_PHASE_REBUILD,
    EVENT_CHECKPOINT,
    EVENT_EXECUTOR_DEGRADED,
)


@dataclass(frozen=True)
class EngineEvent:
    """One observation handed to engine subscribers."""

    kind: str
    count: int
    updates_processed: int
    num_edges: int
    payload: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class EngineSnapshot:
    """A restorable engine state: the config plus the exact graph.

    The graph determines the count for every (exact) counter, so the snapshot
    stores the config, the registered vertices (in registration order,
    isolated ones included), the live edges, and the bookkeeping totals — and
    nothing counter-specific.  Restoring rebuilds the counter's auxiliary
    structures from the graph and verifies the count is bit-identical.
    For on-disk snapshots vertex labels may be ints, strings, or nested
    tuples of those (see :func:`repro.io.serialization.save_engine_snapshot`).
    """

    config: Dict[str, object]
    count: int
    updates_processed: int
    vertices: Tuple
    edges: Tuple[Tuple, ...]
    #: WAL sequence number this snapshot covers (None for non-durable engines);
    #: recovery replays only records past it.
    wal_seq: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        payload = {
            "config": dict(self.config),
            "count": self.count,
            "updates_processed": self.updates_processed,
            "vertices": list(self.vertices),
            "edges": [list(edge) for edge in self.edges],
        }
        if self.wal_seq is not None:
            payload["wal_seq"] = self.wal_seq
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EngineSnapshot":
        try:
            wal_seq = payload.get("wal_seq")
            return cls(
                config=dict(payload["config"]),
                count=int(payload["count"]),
                updates_processed=int(payload["updates_processed"]),
                vertices=tuple(payload["vertices"]),
                edges=tuple((edge[0], edge[1]) for edge in payload["edges"]),
                wal_seq=None if wal_seq is None else int(wal_seq),
            )
        except (KeyError, TypeError, IndexError, ValueError) as error:
            raise ConfigurationError(f"malformed engine snapshot: {error}") from error


class FourCycleEngine:
    """Facade owning one dynamic 4-cycle counter and its update pipeline."""

    def __init__(
        self,
        config: Union[EngineConfig, str, None] = None,
        fault_injector: Optional[FaultInjector] = None,
        **overrides,
    ) -> None:
        if config is None:
            config = EngineConfig(**overrides)
        elif isinstance(config, str):
            config = EngineConfig(counter=config, **overrides)
        elif isinstance(config, EngineConfig):
            if overrides:
                config = config.with_updates(**overrides)
        else:
            raise ConfigurationError(
                f"expected an EngineConfig or a counter name, got {type(config).__name__}"
            )
        self._config = config
        self._counter = config.spec.create(**config.counter_kwargs())
        if not config.track_costs:
            self._counter.cost.disable()
        self._subscribers: List[Tuple[Callable[[EngineEvent], None], Optional[frozenset]]] = []
        self._last_phases = getattr(self._counter, "phases_completed", None)
        self._fault_injector = fault_injector
        self._wal = None
        self._snapshot_every: Optional[int] = None
        self._records_since_snapshot = 0
        self._last_durable_seq = -1
        self._failed_at_seq: Optional[int] = None
        self._closed = False
        self._wire_executor()
        if config.wal_path is not None:
            self._init_wal()

    def _wire_executor(self) -> None:
        """Hook the counter's shard executor (if any) into engine events and
        the fault injector; oracles and serial counters have no executor."""
        executor = getattr(self._counter, "shard_executor", None)
        if executor is None:
            return
        if self._fault_injector is not None:
            executor.injector = self._fault_injector
        executor.on_degrade = self._executor_degraded

    def _executor_degraded(self, from_policy: str, to_policy: str, reason: str) -> None:
        self._emit(
            EVENT_EXECUTOR_DEGRADED,
            from_policy=from_policy,
            to_policy=to_policy,
            reason=reason,
        )

    # -- introspection -------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def counter(self):
        """The owned counter (read-only use; the engine drives the updates)."""
        return self._counter

    @property
    def name(self) -> str:
        return self._counter.name

    @property
    def count(self) -> int:
        """The current number of 4-cycles."""
        return self._counter.count

    @property
    def num_edges(self) -> int:
        return self._counter.num_edges

    @property
    def num_vertices(self) -> int:
        return self._counter.num_vertices

    @property
    def updates_processed(self) -> int:
        return self._counter.updates_processed

    @property
    def graph(self):
        return self._counter.graph

    @property
    def cost(self) -> CostModel:
        return self._counter.cost

    @property
    def metrics(self) -> Optional[UpdateMetrics]:
        return self._counter.metrics

    def is_consistent(self) -> bool:
        """Whether the maintained count matches a from-scratch recount."""
        return self._counter.is_consistent()

    # -- events --------------------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[EngineEvent], None],
        kinds: Optional[Sequence[str]] = None,
    ) -> Callable[[], None]:
        """Register an event callback; returns an unsubscribe function.

        ``kinds`` restricts delivery to a subset of :data:`EVENT_KINDS`
        (default: all events).

        Callbacks are *isolated*: an exception raised by one subscriber never
        aborts the apply path or starves the other subscribers — it is
        surfaced as an ``engine-event-error`` :class:`RuntimeWarning` instead
        (events fire after the update and its WAL record are already applied,
        so a raising observer must not be able to poison engine state).
        """
        wanted: Optional[frozenset] = None
        if kinds is not None:
            wanted = frozenset(kinds)
            unknown = sorted(wanted - set(EVENT_KINDS))
            if unknown:
                raise ConfigurationError(
                    f"unknown event kind{'s' if len(unknown) > 1 else ''}: "
                    f"{', '.join(unknown)}; expected a subset of {', '.join(EVENT_KINDS)}"
                )
        entry = (callback, wanted)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def _emit(self, kind: str, **payload) -> None:
        if not self._subscribers:
            return
        event = EngineEvent(
            kind=kind,
            count=self._counter.count,
            updates_processed=self._counter.updates_processed,
            num_edges=self._counter.num_edges,
            payload=payload,
        )
        for callback, wanted in list(self._subscribers):
            if wanted is None or kind in wanted:
                try:
                    callback(event)
                # repro-lint: broad-except-ok subscriber isolation: observers
                # run inside the apply path after the update (and its WAL
                # record) took effect, so one raising callback must not abort
                # the update mid-flight or starve the other subscribers; the
                # failure is surfaced as a warning instead of propagating.
                except Exception as error:
                    warnings.warn(
                        f"engine-event-error: {kind!r} subscriber {callback!r} "
                        f"raised {type(error).__name__}: {error}",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    def _check_phase_rebuild(self) -> None:
        if self._last_phases is None:
            return
        phases = self._counter.phases_completed
        if phases != self._last_phases:
            self._emit(EVENT_PHASE_REBUILD, phases_completed=phases)
            self._last_phases = phases

    # -- durability ----------------------------------------------------------
    @property
    def wal(self):
        """The attached :class:`~repro.durability.wal.WriteAheadLog`, if any."""
        return self._wal

    @property
    def last_durable_seq(self) -> int:
        """Sequence number of the last update known durable (-1 without a WAL)."""
        return self._last_durable_seq

    def _init_wal(self) -> None:
        """Open the config's WAL for a *fresh* engine.

        An existing log with records means history this engine does not have;
        silently appending to it would interleave two runs, so construction
        refuses and points at :func:`repro.durability.recover`.
        """
        path = Path(self._config.wal_path)
        if path.exists() and path.stat().st_size > 0:
            raise ConfigurationError(
                f"write-ahead log {path} already contains records; a fresh "
                f"engine cannot append to another run's history — resume it "
                f"with repro.durability.recover({str(path)!r}) instead"
            )
        self.attach_wal(
            path,
            fsync_policy=self._config.fsync_policy,
            snapshot_every=self._config.snapshot_every,
            fault_injector=self._fault_injector,
        )

    def attach_wal(
        self,
        path,
        fsync_policy: str = "batch",
        snapshot_every: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
        min_next_seq: int = 0,
    ):
        """Attach a write-ahead log so every subsequent update is durable.

        Reopening an existing log resumes its sequence numbering (recovery
        passes ``min_next_seq`` to floor it past the replayed tail).  Writes
        the config metadata sidecar on first attach so a log is recoverable
        even before the first snapshot lands.  Returns the opened log.
        """
        from repro.durability.wal import WriteAheadLog, load_wal_meta, save_wal_meta

        if self._wal is not None:
            raise ConfigurationError(
                f"a write-ahead log is already attached ({self._wal.path})"
            )
        if fault_injector is not None:
            self._fault_injector = fault_injector
            self._wire_executor()
        wal = WriteAheadLog(
            path,
            fsync_policy=fsync_policy,
            injector=self._fault_injector,
            min_next_seq=min_next_seq,
        )
        self._wal = wal
        self._last_durable_seq = wal.last_seq
        self._snapshot_every = snapshot_every
        self._records_since_snapshot = 0
        self._config = self._config.with_updates(
            wal_path=str(wal.path),
            snapshot_every=snapshot_every,
            fsync_policy=fsync_policy,
        )
        if load_wal_meta(wal.path) is None:
            save_wal_meta(wal.path, self._config.to_dict())
        return wal

    def _check_failed(self) -> None:
        if self._failed_at_seq is not None:
            raise RecoverableEngineError(
                f"engine is fail-stopped after a mid-batch counter failure; "
                f"the WAL is durable through seq {self._failed_at_seq} — "
                f"recover() from {self._wal.path if self._wal else 'the log'}",
                last_durable_seq=self._failed_at_seq,
            )

    def _note_records(self, logged: int) -> None:
        """Advance the snapshot cadence after ``logged`` durable records."""
        if self._snapshot_every is None:
            return
        self._records_since_snapshot += logged
        if self._records_since_snapshot >= self._snapshot_every:
            self._write_wal_snapshot()

    def _write_wal_snapshot(self) -> None:
        """One snapshot generation next to the log, then prune old ones."""
        from repro.durability.snapshots import (
            DEFAULT_KEEP_SNAPSHOTS,
            prune_snapshots,
            snapshot_path_for,
        )

        snap_path = snapshot_path_for(self._wal.path, max(self._last_durable_seq, 0))
        if self._fault_injector is not None:
            fault = self._fault_injector.check(SITE_SNAPSHOT_WRITE)
            if fault is not None:
                self._inject_snapshot_fault(fault, snap_path)
        self.checkpoint(snap_path)
        prune_snapshots(self._wal.path, keep=DEFAULT_KEEP_SNAPSHOTS)
        self._records_since_snapshot = 0

    def _inject_snapshot_fault(self, fault, snap_path: Path) -> None:
        """Act on an armed snapshot fault; both actions simulate a crash.

        A torn write lands a truncated JSON body at the *final* path —
        modelling storage that broke the rename's atomicity promise — so the
        recovery path must detect it by checksum and fall back.
        """
        if fault.action == ACTION_TORN_WRITE:
            import json

            body = json.dumps(self.checkpoint().to_dict())
            snap_path.write_text(body[: max(1, len(body) // 2)], encoding="utf-8")
            raise InjectedCrashError(
                f"injected torn snapshot write at {snap_path}"
            )
        if fault.action == ACTION_CRASH:
            raise InjectedCrashError(f"injected crash before snapshot {snap_path}")
        raise ConfigurationError(  # pragma: no cover - Fault validation pins pairs
            f"fault action {fault.action!r} is not implemented at {SITE_SNAPSHOT_WRITE}"
        )

    def compact_wal(self) -> int:
        """Force a snapshot, then drop every log record it covers.

        Returns the number of records remaining in the log (zero unless new
        appends raced in, which a single-threaded engine never has).
        """
        if self._wal is None:
            raise ConfigurationError("no write-ahead log is attached")
        self._check_failed()
        self._write_wal_snapshot()
        return self._wal.compact(self._last_durable_seq)

    def close(self) -> None:
        """Release durable and pooled resources; idempotent.

        Flushes and closes the WAL (per its fsync policy) and shuts down the
        counter's shard executor if it owns one.  The engine stays readable
        (``count`` etc.) but further updates will fail on the closed log.
        """
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.close()
        executor = getattr(self._counter, "shard_executor", None)
        if executor is not None:
            executor.close()

    def __enter__(self) -> "FourCycleEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- updates -------------------------------------------------------------
    def insert(self, u, v) -> int:
        """Insert the edge ``{u, v}`` and return the new count."""
        return self.apply(EdgeUpdate.insert(u, v))

    def delete(self, u, v) -> int:
        """Delete the edge ``{u, v}`` and return the new count."""
        return self.apply(EdgeUpdate.delete(u, v))

    def apply(self, update: EdgeUpdate) -> int:
        """Apply one update and return the new count.

        With a WAL attached the update is logged and committed *before* it is
        applied (write-ahead).  A counter rejection (e.g. an invalid update)
        rolls the logged record back and re-raises: single updates are atomic,
        so the engine stays usable and the log stays equal to applied history.
        """
        self._check_failed()
        if self._wal is not None:
            seq = self._wal.append(update)
            self._wal.commit()
            try:
                count = self._counter.apply(update)
            except ReproError:
                self._wal.truncate_to_seq(seq - 1)
                raise
            self._last_durable_seq = seq
            self._emit(EVENT_UPDATE_APPLIED, update=update)
            self._check_phase_rebuild()
            self._note_records(1)
            return count
        count = self._counter.apply(update)
        self._emit(EVENT_UPDATE_APPLIED, update=update)
        self._check_phase_rebuild()
        return count

    def apply_batch(self, updates: Union[UpdateBatch, Iterable[EdgeUpdate]]) -> int:
        """Apply one window of updates as a batch and return the new count.

        With a WAL attached the whole window is logged and committed first.
        If the counter then fails mid-batch the engine cannot know how much of
        the window took effect, so it *fail-stops*: the logged window is rolled
        back (it never became applied history), every later mutation raises,
        and the :class:`~repro.exceptions.RecoverableEngineError` carries the
        last durable sequence number a fresh :func:`repro.durability.recover`
        call will resume from.
        """
        self._check_failed()
        if isinstance(updates, UpdateBatch):
            size = updates.raw_size
        else:
            updates = updates if hasattr(updates, "__len__") else list(updates)
            size = len(updates)
        if self._wal is not None:
            seq_before = self._wal.last_seq
            logged = self._wal.append_batch(list(updates))
            self._wal.commit()
            try:
                count = self._counter.apply_batch(updates)
            except ReproError as error:
                try:
                    self._wal.truncate_to_seq(seq_before)
                finally:
                    self._failed_at_seq = seq_before
                raise RecoverableEngineError(
                    f"batch of {size} updates failed mid-apply "
                    f"({type(error).__name__}: {error}); the engine is "
                    f"fail-stopped — recover() from {self._wal.path} resumes "
                    f"at seq {seq_before}",
                    last_durable_seq=seq_before,
                ) from error
            if logged:
                self._last_durable_seq = logged[-1]
            self._emit(EVENT_BATCH_APPLIED, size=size)
            self._check_phase_rebuild()
            self._note_records(len(logged))
            return count
        count = self._counter.apply_batch(updates)
        self._emit(EVENT_BATCH_APPLIED, size=size)
        self._check_phase_rebuild()
        return count

    def stream(self, source) -> Iterator[int]:
        """Drive a source through the engine, yielding batch-boundary counts.

        The source is windowed into ``config.batch_size`` updates lazily, so
        unbounded sources work; with ``batch_size == 1`` every update goes
        through the per-update path and yields its count.  Counts are exact at
        every yield point (the batch contract).
        """
        normalized = as_update_source(source)
        if self._config.batch_size == 1:
            for update in normalized:
                yield self.apply(update)
        else:
            for window in iter_windows(normalized, self._config.batch_size):
                yield self.apply_batch(window)

    def run(self, source) -> int:
        """Drain a source through :meth:`stream` and return the final count."""
        count = self._counter.count
        for count in self.stream(source):
            pass
        return count

    def counts(self, source) -> List[int]:
        """The list of batch-boundary counts for a (finite) source."""
        return list(self.stream(source))

    # -- snapshots -----------------------------------------------------------
    def checkpoint(self, path=None) -> EngineSnapshot:
        """Capture a restorable snapshot; optionally persist it to ``path``.

        Serialization goes through
        :func:`repro.io.serialization.save_engine_snapshot` (plain JSON).
        """
        graph = self._counter.graph
        snapshot = EngineSnapshot(
            config=self._config.to_dict(),
            count=self._counter.count,
            updates_processed=self._counter.updates_processed,
            vertices=tuple(graph.vertices()),
            edges=tuple(graph.edges()),
            wal_seq=self._last_durable_seq if self._wal is not None else None,
        )
        if path is not None:
            from repro.io.serialization import save_engine_snapshot

            save_engine_snapshot(snapshot.to_dict(), path)
        self._emit(EVENT_CHECKPOINT, path=None if path is None else str(path))
        return snapshot

    @classmethod
    def restore(
        cls, source: Union[EngineSnapshot, Mapping, str, Path]
    ) -> "FourCycleEngine":
        """Rebuild an engine from a snapshot (object, dict, or saved path).

        The restored counter replays the snapshot's edges through its own
        (exact) bulk path, so the count after restore is bit-identical to the
        checkpointed one — verified here, a mismatch raises
        :class:`CounterStateError` — and subsequent updates produce the same
        counts as an engine that never checkpointed.

        Durability settings are *not* restored: reopening the original WAL
        requires replaying its tail past the snapshot, which is
        :func:`repro.durability.recover`'s job.  ``restore`` strips
        ``wal_path``/``snapshot_every`` so the plain restore path never
        touches (or overwrites) an existing log.
        """
        if isinstance(source, (str, Path)):
            from repro.io.serialization import load_engine_snapshot

            snapshot = EngineSnapshot.from_dict(load_engine_snapshot(source))
        elif isinstance(source, EngineSnapshot):
            snapshot = source
        elif isinstance(source, Mapping):
            snapshot = EngineSnapshot.from_dict(source)
        else:
            raise ConfigurationError(
                f"cannot restore from {type(source).__name__}; expected an "
                f"EngineSnapshot, a snapshot dict, or a path"
            )
        config = EngineConfig.from_dict(snapshot.config)
        if config.wal_path is not None or config.snapshot_every is not None:
            config = config.with_updates(wal_path=None, snapshot_every=None)
        engine = cls(config)
        engine._counter.load_state(
            snapshot.vertices, snapshot.edges, updates_processed=snapshot.updates_processed
        )
        if engine.count != snapshot.count:
            raise CounterStateError(
                f"restored count {engine.count} does not match the checkpointed "
                f"count {snapshot.count} for counter {engine.name!r}"
            )
        engine._last_phases = getattr(engine._counter, "phases_completed", None)
        return engine

    def __repr__(self) -> str:
        return (
            f"FourCycleEngine(counter={self.name!r}, count={self.count}, "
            f"m={self.num_edges}, batch_size={self._config.batch_size})"
        )
