"""The unified engine facade over the dynamic 4-cycle counters.

Every workload in this repo — CLI runs, the experiment harness, benchmarks,
examples — drives a counter the same way: build it from a named registry
entry, window an update stream into batches, apply the batches, and read the
count at the boundaries.  :class:`FourCycleEngine` owns that loop behind one
typed entry point, so scaling work (sharding, async ingestion, multi-backend)
has a single seam to plug into:

* construction from a validated :class:`~repro.api.config.EngineConfig`;
* ``apply`` / ``apply_batch`` / ``stream`` over any
  :class:`~repro.api.sources.UpdateSource`, with the batch size taken from the
  config;
* ``checkpoint()`` / ``restore()`` snapshots serialized through
  :mod:`repro.io.serialization` — counts are bit-identical after a round-trip
  (verified at restore time) and subsequent update trajectories match a
  counter that never checkpointed, because every counter is exact and the
  snapshot preserves the graph exactly;
* a lightweight ``subscribe()`` event hook (update applied, batch boundary,
  phase rebuild, checkpoint) for instrumentation that should not live inside
  the counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.config import EngineConfig
from repro.api.sources import UpdateSource, as_update_source, iter_windows
from repro.exceptions import ConfigurationError, CounterStateError
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.instrumentation.cost_model import CostModel
from repro.instrumentation.metrics import UpdateMetrics

#: Event kinds emitted by :meth:`FourCycleEngine.subscribe` subscribers.
EVENT_UPDATE_APPLIED = "update-applied"
EVENT_BATCH_APPLIED = "batch-applied"
EVENT_PHASE_REBUILD = "phase-rebuild"
EVENT_CHECKPOINT = "checkpoint"

EVENT_KINDS = (
    EVENT_UPDATE_APPLIED,
    EVENT_BATCH_APPLIED,
    EVENT_PHASE_REBUILD,
    EVENT_CHECKPOINT,
)


@dataclass(frozen=True)
class EngineEvent:
    """One observation handed to engine subscribers."""

    kind: str
    count: int
    updates_processed: int
    num_edges: int
    payload: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class EngineSnapshot:
    """A restorable engine state: the config plus the exact graph.

    The graph determines the count for every (exact) counter, so the snapshot
    stores the config, the registered vertices (in registration order,
    isolated ones included), the live edges, and the bookkeeping totals — and
    nothing counter-specific.  Restoring rebuilds the counter's auxiliary
    structures from the graph and verifies the count is bit-identical.
    For on-disk snapshots vertex labels may be ints, strings, or nested
    tuples of those (see :func:`repro.io.serialization.save_engine_snapshot`).
    """

    config: Dict[str, object]
    count: int
    updates_processed: int
    vertices: Tuple
    edges: Tuple[Tuple, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": dict(self.config),
            "count": self.count,
            "updates_processed": self.updates_processed,
            "vertices": list(self.vertices),
            "edges": [list(edge) for edge in self.edges],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EngineSnapshot":
        try:
            return cls(
                config=dict(payload["config"]),
                count=int(payload["count"]),
                updates_processed=int(payload["updates_processed"]),
                vertices=tuple(payload["vertices"]),
                edges=tuple((edge[0], edge[1]) for edge in payload["edges"]),
            )
        except (KeyError, TypeError, IndexError, ValueError) as error:
            raise ConfigurationError(f"malformed engine snapshot: {error}") from error


class FourCycleEngine:
    """Facade owning one dynamic 4-cycle counter and its update pipeline."""

    def __init__(self, config: Union[EngineConfig, str, None] = None, **overrides) -> None:
        if config is None:
            config = EngineConfig(**overrides)
        elif isinstance(config, str):
            config = EngineConfig(counter=config, **overrides)
        elif isinstance(config, EngineConfig):
            if overrides:
                config = config.with_updates(**overrides)
        else:
            raise ConfigurationError(
                f"expected an EngineConfig or a counter name, got {type(config).__name__}"
            )
        self._config = config
        self._counter = config.spec.create(**config.counter_kwargs())
        if not config.track_costs:
            self._counter.cost.disable()
        self._subscribers: List[Tuple[Callable[[EngineEvent], None], Optional[frozenset]]] = []
        self._last_phases = getattr(self._counter, "phases_completed", None)

    # -- introspection -------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def counter(self):
        """The owned counter (read-only use; the engine drives the updates)."""
        return self._counter

    @property
    def name(self) -> str:
        return self._counter.name

    @property
    def count(self) -> int:
        """The current number of 4-cycles."""
        return self._counter.count

    @property
    def num_edges(self) -> int:
        return self._counter.num_edges

    @property
    def num_vertices(self) -> int:
        return self._counter.num_vertices

    @property
    def updates_processed(self) -> int:
        return self._counter.updates_processed

    @property
    def graph(self):
        return self._counter.graph

    @property
    def cost(self) -> CostModel:
        return self._counter.cost

    @property
    def metrics(self) -> Optional[UpdateMetrics]:
        return self._counter.metrics

    def is_consistent(self) -> bool:
        """Whether the maintained count matches a from-scratch recount."""
        return self._counter.is_consistent()

    # -- events --------------------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[EngineEvent], None],
        kinds: Optional[Sequence[str]] = None,
    ) -> Callable[[], None]:
        """Register an event callback; returns an unsubscribe function.

        ``kinds`` restricts delivery to a subset of :data:`EVENT_KINDS`
        (default: all events).
        """
        wanted: Optional[frozenset] = None
        if kinds is not None:
            wanted = frozenset(kinds)
            unknown = sorted(wanted - set(EVENT_KINDS))
            if unknown:
                raise ConfigurationError(
                    f"unknown event kind{'s' if len(unknown) > 1 else ''}: "
                    f"{', '.join(unknown)}; expected a subset of {', '.join(EVENT_KINDS)}"
                )
        entry = (callback, wanted)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def _emit(self, kind: str, **payload) -> None:
        if not self._subscribers:
            return
        event = EngineEvent(
            kind=kind,
            count=self._counter.count,
            updates_processed=self._counter.updates_processed,
            num_edges=self._counter.num_edges,
            payload=payload,
        )
        for callback, wanted in list(self._subscribers):
            if wanted is None or kind in wanted:
                callback(event)

    def _check_phase_rebuild(self) -> None:
        if self._last_phases is None:
            return
        phases = self._counter.phases_completed
        if phases != self._last_phases:
            self._emit(EVENT_PHASE_REBUILD, phases_completed=phases)
            self._last_phases = phases

    # -- updates -------------------------------------------------------------
    def insert(self, u, v) -> int:
        """Insert the edge ``{u, v}`` and return the new count."""
        return self.apply(EdgeUpdate.insert(u, v))

    def delete(self, u, v) -> int:
        """Delete the edge ``{u, v}`` and return the new count."""
        return self.apply(EdgeUpdate.delete(u, v))

    def apply(self, update: EdgeUpdate) -> int:
        """Apply one update and return the new count."""
        count = self._counter.apply(update)
        self._emit(EVENT_UPDATE_APPLIED, update=update)
        self._check_phase_rebuild()
        return count

    def apply_batch(self, updates: Union[UpdateBatch, Iterable[EdgeUpdate]]) -> int:
        """Apply one window of updates as a batch and return the new count."""
        if isinstance(updates, UpdateBatch):
            size = updates.raw_size
        else:
            updates = updates if hasattr(updates, "__len__") else list(updates)
            size = len(updates)
        count = self._counter.apply_batch(updates)
        self._emit(EVENT_BATCH_APPLIED, size=size)
        self._check_phase_rebuild()
        return count

    def stream(self, source) -> Iterator[int]:
        """Drive a source through the engine, yielding batch-boundary counts.

        The source is windowed into ``config.batch_size`` updates lazily, so
        unbounded sources work; with ``batch_size == 1`` every update goes
        through the per-update path and yields its count.  Counts are exact at
        every yield point (the batch contract).
        """
        normalized = as_update_source(source)
        if self._config.batch_size == 1:
            for update in normalized:
                yield self.apply(update)
        else:
            for window in iter_windows(normalized, self._config.batch_size):
                yield self.apply_batch(window)

    def run(self, source) -> int:
        """Drain a source through :meth:`stream` and return the final count."""
        count = self._counter.count
        for count in self.stream(source):
            pass
        return count

    def counts(self, source) -> List[int]:
        """The list of batch-boundary counts for a (finite) source."""
        return list(self.stream(source))

    # -- snapshots -----------------------------------------------------------
    def checkpoint(self, path=None) -> EngineSnapshot:
        """Capture a restorable snapshot; optionally persist it to ``path``.

        Serialization goes through
        :func:`repro.io.serialization.save_engine_snapshot` (plain JSON).
        """
        graph = self._counter.graph
        snapshot = EngineSnapshot(
            config=self._config.to_dict(),
            count=self._counter.count,
            updates_processed=self._counter.updates_processed,
            vertices=tuple(graph.vertices()),
            edges=tuple(graph.edges()),
        )
        if path is not None:
            from repro.io.serialization import save_engine_snapshot

            save_engine_snapshot(snapshot.to_dict(), path)
        self._emit(EVENT_CHECKPOINT, path=None if path is None else str(path))
        return snapshot

    @classmethod
    def restore(
        cls, source: Union[EngineSnapshot, Mapping, str, Path]
    ) -> "FourCycleEngine":
        """Rebuild an engine from a snapshot (object, dict, or saved path).

        The restored counter replays the snapshot's edges through its own
        (exact) bulk path, so the count after restore is bit-identical to the
        checkpointed one — verified here, a mismatch raises
        :class:`CounterStateError` — and subsequent updates produce the same
        counts as an engine that never checkpointed.
        """
        if isinstance(source, (str, Path)):
            from repro.io.serialization import load_engine_snapshot

            snapshot = EngineSnapshot.from_dict(load_engine_snapshot(source))
        elif isinstance(source, EngineSnapshot):
            snapshot = source
        elif isinstance(source, Mapping):
            snapshot = EngineSnapshot.from_dict(source)
        else:
            raise ConfigurationError(
                f"cannot restore from {type(source).__name__}; expected an "
                f"EngineSnapshot, a snapshot dict, or a path"
            )
        engine = cls(EngineConfig.from_dict(snapshot.config))
        engine._counter.load_state(
            snapshot.vertices, snapshot.edges, updates_processed=snapshot.updates_processed
        )
        if engine.count != snapshot.count:
            raise CounterStateError(
                f"restored count {engine.count} does not match the checkpointed "
                f"count {snapshot.count} for counter {engine.name!r}"
            )
        engine._last_phases = getattr(engine._counter, "phases_completed", None)
        return engine

    def __repr__(self) -> str:
        return (
            f"FourCycleEngine(counter={self.name!r}, count={self.count}, "
            f"m={self.num_edges}, batch_size={self._config.batch_size})"
        )
