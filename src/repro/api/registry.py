"""Capability-aware counter registry — the facade's view of it.

The registry itself lives in :mod:`repro.core.specs`, in the core layer next
to the counters it describes, so core modules never import upward into
:mod:`repro.api`; this module re-exports it as the facade's public surface.
See :mod:`repro.core.specs` for the full documentation.
"""

from __future__ import annotations

from repro.core.specs import (
    COMMON_OPTIONS,
    CounterFactory,
    CounterSpec,
    OptionSpec,
    available_counter_names,
    available_specs,
    counter_spec,
    register_spec,
)

__all__ = [
    "COMMON_OPTIONS",
    "CounterFactory",
    "CounterSpec",
    "OptionSpec",
    "available_counter_names",
    "available_specs",
    "counter_spec",
    "register_spec",
]
