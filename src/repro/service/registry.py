"""Multi-tenant registry of managed engines and the writer/reader model.

The service's concurrency contract lives here, not in the HTTP layer:

* **one writer per engine** — every mutation (update batches, consistency
  recounts, WAL compaction) is a command on that tenant's
  :class:`asyncio.Queue`, drained by a single writer task that executes each
  command on the tenant's *own single-thread executor*.  The engine object is
  only ever touched from that thread, so the counters need no locks, and a
  long ``apply_batch`` never stalls the event loop — other tenants and every
  reader keep being served;
* **readers never touch the live counter** — after each successful command the
  writer republishes an immutable :class:`EngineView` built from
  ``engine.checkpoint()``, and every read endpoint serves from the last
  published view.  Swapping one attribute reference is atomic, so a read is
  exact at some batch boundary and can never observe a torn mid-batch state;
* **fail-stop tenants stay recoverable** — a durability-class failure (a
  mid-batch counter error, an injected crash, WAL corruption) marks the tenant
  failed and closes its engine, releasing the WAL fd; the log on disk is the
  durable truth and re-creating the tenant (or restarting the service) runs
  :func:`repro.durability.recover` against it.  A plain *rejected* batch (a
  duplicate insert, a missing-edge delete) on a non-durable tenant is just a
  failed request: validation happens before mutation, so the engine is intact
  and stays healthy.
"""

from __future__ import annotations

import asyncio
import re
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.api.config import EngineConfig
from repro.api.engine import EngineEvent, EngineSnapshot, FourCycleEngine
from repro.durability.recovery import recover as durability_recover
from repro.exceptions import (
    ConfigurationError,
    CounterStateError,
    DurabilityError,
    FaultInjectionError,
    RecoverableEngineError,
    ReproError,
    ServiceError,
)
from repro.faults.injector import FaultInjector
from repro.graph.updates import EdgeUpdate

#: Tenant names are path segments; keep them URL- and filename-safe.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Failure classes that fail-stop a tenant (state possibly diverged from the
#: log, or the log itself is suspect) as opposed to failing one request.
_FATAL_ERRORS = (
    RecoverableEngineError,
    FaultInjectionError,
    DurabilityError,
    CounterStateError,
)

#: ``recover`` modes accepted at tenant creation.
RECOVER_MODES = ("auto", "always", "never")

#: Synthetic event kind pushed to subscribers when a tenant shuts down.
EVENT_ENGINE_CLOSED = "engine-closed"


class UnknownEngineError(ServiceError):
    """No tenant registered under the requested name (HTTP 404)."""


class DuplicateEngineError(ServiceError):
    """A tenant with the requested name already exists (HTTP 409)."""


class EngineFailedError(ServiceError):
    """The tenant fail-stopped and awaits recovery (HTTP 503)."""


class EngineView:
    """An immutable read view published at a batch boundary.

    Wraps one :class:`~repro.api.engine.EngineSnapshot` plus the durability
    cursor; per-vertex structures are derived lazily (and only ever from the
    event-loop thread, so the cache needs no lock) because most reads want the
    scalar counts.
    """

    __slots__ = ("snapshot", "last_durable_seq", "batches_applied", "_degrees")

    def __init__(
        self, snapshot: EngineSnapshot, last_durable_seq: int, batches_applied: int
    ) -> None:
        self.snapshot = snapshot
        self.last_durable_seq = last_durable_seq
        self.batches_applied = batches_applied
        self._degrees: Optional[Dict[object, int]] = None

    @property
    def count(self) -> int:
        return self.snapshot.count

    @property
    def updates_processed(self) -> int:
        return self.snapshot.updates_processed

    @property
    def num_edges(self) -> int:
        return len(self.snapshot.edges)

    @property
    def num_vertices(self) -> int:
        return len(self.snapshot.vertices)

    def degrees(self) -> Dict[object, int]:
        """Vertex -> degree over the view's edge set (isolated vertices 0)."""
        if self._degrees is None:
            degrees: Dict[object, int] = {vertex: 0 for vertex in self.snapshot.vertices}
            for u, v in self.snapshot.edges:
                degrees[u] = degrees.get(u, 0) + 1
                degrees[v] = degrees.get(v, 0) + 1
            self._degrees = degrees
        return self._degrees

    def resolve_vertex(self, label: str):
        """Map a URL path segment onto a vertex of this view.

        Tries the raw string, then the integer reading (vertex labels from the
        synthetic workloads are ints); returns ``None`` when neither is a
        known vertex.  Tuple-labelled vertices (the layered encoding) are
        reachable through :meth:`top_degrees`, not by path segment.
        """
        degrees = self.degrees()
        if label in degrees:
            return label
        try:
            numeric = int(label)
        except ValueError:
            return None
        return numeric if numeric in degrees else None

    def vertex_stats(self, vertex) -> Dict[str, object]:
        degree = self.degrees()[vertex]
        return {
            "vertex": vertex,
            "degree": degree,
            "as_of_updates": self.updates_processed,
        }

    def top_degrees(self, limit: int) -> List[Dict[str, object]]:
        """The ``limit`` highest-degree vertices (stable order: degree desc,
        then label repr, so repeated reads of one view agree)."""
        ranked = sorted(self.degrees().items(), key=lambda item: (-item[1], repr(item[0])))
        return [{"vertex": vertex, "degree": degree} for vertex, degree in ranked[:limit]]

    def counts_payload(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "updates_processed": self.updates_processed,
            "num_edges": self.num_edges,
            "num_vertices": self.num_vertices,
            "last_durable_seq": self.last_durable_seq,
            "batches_applied": self.batches_applied,
        }


def _jsonable(value):
    """Flatten one event-payload value into something JSON-serializable."""
    if isinstance(value, EdgeUpdate):
        from repro.io.serialization import edge_update_to_dict

        return edge_update_to_dict(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


def build_engine(
    config: EngineConfig,
    recover: str = "auto",
    fault_injector: Optional[FaultInjector] = None,
) -> Tuple[FourCycleEngine, Optional[dict]]:
    """Construct (or recover) the engine behind one tenant.

    ``recover`` decides what an existing non-empty WAL at ``config.wal_path``
    means: ``"auto"`` (the always-on default) resumes it through
    :func:`repro.durability.recover` — a restarted service picks up every
    durable tenant exactly where it crashed; ``"always"`` demands history and
    errors when there is none; ``"never"`` demands a fresh log (the engine
    itself refuses to append to another run's history).  Returns the engine
    plus the recovery report dict (``None`` for a fresh engine).
    """
    if recover not in RECOVER_MODES:
        raise ConfigurationError(
            f"recover must be one of {', '.join(RECOVER_MODES)}, got {recover!r}"
        )
    wal = Path(config.wal_path) if config.wal_path is not None else None
    has_history = wal is not None and wal.exists() and wal.stat().st_size > 0
    if recover == "always" and not has_history:
        raise ConfigurationError(
            f"recover='always' but {wal if wal is not None else 'no wal_path'} "
            f"holds no records to recover"
        )
    if has_history and recover != "never":
        engine, report = durability_recover(
            config.wal_path, config=config, fault_injector=fault_injector
        )
        return engine, report.to_dict()
    return FourCycleEngine(config, fault_injector=fault_injector), None


class ManagedEngine:
    """One tenant: an engine, its writer task, and its published read view."""

    def __init__(
        self,
        name: str,
        engine: FourCycleEngine,
        loop: asyncio.AbstractEventLoop,
        recovery: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.engine = engine
        self.recovery = recovery
        self._loop = loop
        self._queue: asyncio.Queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"engine-writer-{name}"
        )
        self._failure: Optional[BaseException] = None
        self._closed = False
        self._subscribers: List[asyncio.Queue] = []
        #: Published read view; swapped (atomically, one attribute store) by
        #: the writer thread after every successful command.
        self.view = EngineView(engine.checkpoint(), engine.last_durable_seq, 0)
        self._unsubscribe = engine.subscribe(self._bridge_event)
        self._writer = loop.create_task(self._writer_loop(), name=f"writer-{name}")

    # -- introspection -------------------------------------------------------
    @property
    def failed(self) -> Optional[str]:
        return None if self._failure is None else str(self._failure)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def summary(self) -> Dict[str, object]:
        view = self.view
        return {
            "engine": self.name,
            "counter": self.engine.config.counter,
            "config": self.engine.config.to_dict(),
            "durable": self.engine.config.wal_path is not None,
            "failed": self.failed,
            "queue_depth": self.queue_depth,
            "subscribers": len(self._subscribers),
            "recovered": self.recovery is not None,
            **view.counts_payload(),
        }

    # -- the writer ----------------------------------------------------------
    async def _writer_loop(self) -> None:
        while True:
            command = await self._queue.get()
            if command is None:
                return
            operation, future = command
            if future.done():
                continue
            if self._failure is not None:
                future.set_exception(self._failure_error())
                continue
            try:
                result = await self._loop.run_in_executor(
                    self._executor, self._execute, operation
                )
            except ReproError as error:
                if isinstance(error, _FATAL_ERRORS):
                    self._fail(error)
                future.set_exception(error)
            # repro-lint: broad-except-ok a buggy command must fail its own
            # request (and fail-stop the tenant, since the engine state is
            # unknown), never kill the writer task and hang every later caller
            except Exception as error:
                self._fail(error)
                future.set_exception(error)
            else:
                future.set_result(result)

    def _execute(self, operation: Callable[[FourCycleEngine], object]):
        """Run one command on the engine, then republish the read view.

        Runs on the tenant's writer thread — the only place the live engine
        is ever touched after construction.
        """
        result = operation(self.engine)
        self.view = EngineView(
            self.engine.checkpoint(),
            self.engine.last_durable_seq,
            self.view.batches_applied + 1,
        )
        return result

    def _fail(self, error: BaseException) -> None:
        """Fail-stop: remember the cause and release the WAL fd so recovery
        (in this process or the next) can reopen the log."""
        self._failure = error
        self.engine.close()

    def _failure_error(self) -> EngineFailedError:
        return EngineFailedError(
            f"engine {self.name!r} fail-stopped "
            f"({type(self._failure).__name__}: {self._failure}); its write-ahead "
            f"log is the durable truth — re-create the tenant (or restart the "
            f"service) to recover"
        )

    async def _submit(self, operation: Callable[[FourCycleEngine], object]):
        if self._closed:
            raise UnknownEngineError(f"engine {self.name!r} is shut down")
        if self._failure is not None:
            raise self._failure_error()
        future = self._loop.create_future()
        await self._queue.put((operation, future))
        return await future

    # -- commands ------------------------------------------------------------
    async def apply_updates(self, updates: List[EdgeUpdate]) -> Dict[str, object]:
        """Apply one window through the writer; resolves at the batch boundary."""
        if not updates:
            raise ConfigurationError("update batch must not be empty")
        if len(updates) == 1:
            count = await self._submit(lambda engine: engine.apply(updates[0]))
        else:
            count = await self._submit(lambda engine: engine.apply_batch(updates))
        view = self.view
        return {
            "engine": self.name,
            "applied": len(updates),
            "count": count,
            "updates_processed": view.updates_processed,
            "last_durable_seq": view.last_durable_seq,
        }

    async def check_consistency(self) -> Dict[str, object]:
        """A from-scratch recount on the live counter, serialized with writes."""
        consistent = await self._submit(lambda engine: engine.is_consistent())
        return {
            "engine": self.name,
            "consistent": bool(consistent),
            "count": self.view.count,
            "updates_processed": self.view.updates_processed,
        }

    async def compact(self) -> Dict[str, object]:
        remaining = await self._submit(lambda engine: engine.compact_wal())
        return {
            "engine": self.name,
            "remaining_records": remaining,
            "last_durable_seq": self.view.last_durable_seq,
        }

    # -- events --------------------------------------------------------------
    def _bridge_event(self, event: EngineEvent) -> None:
        """Engine subscriber callback; runs on whichever thread applied the
        update (the writer thread in steady state), so it only marshals the
        event onto the loop — it never touches subscriber queues directly."""
        payload = {
            "engine": self.name,
            "kind": event.kind,
            "count": event.count,
            "updates_processed": event.updates_processed,
            "num_edges": event.num_edges,
            "payload": _jsonable(event.payload),
        }
        try:
            self._loop.call_soon_threadsafe(self._fan_out, payload)
        except RuntimeError:
            pass  # the loop is closing; shutdown events are best-effort

    def _fan_out(self, payload: Optional[dict]) -> None:
        for queue in list(self._subscribers):
            if queue.full():
                # Drop the oldest event rather than let one slow SSE consumer
                # back-pressure the writer (readers can resync from /counts).
                queue.get_nowait()
            queue.put_nowait(payload)

    def subscribe_queue(self, maxsize: int = 256) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue(maxsize=max(2, maxsize))
        self._subscribers.append(queue)
        return queue

    def unsubscribe_queue(self, queue: asyncio.Queue) -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    # -- shutdown ------------------------------------------------------------
    async def close(self) -> None:
        """Drain pending commands, close the engine, release the writer."""
        if self._closed:
            return
        self._closed = True
        await self._queue.put(None)
        await self._writer
        self._unsubscribe()
        if self._failure is None:
            await self._loop.run_in_executor(self._executor, self.engine.close)
        self._executor.shutdown(wait=True)
        self._fan_out(
            {
                "engine": self.name,
                "kind": EVENT_ENGINE_CLOSED,
                **self.view.counts_payload(),
            }
        )
        self._fan_out(None)  # sentinel: ends every open event stream
        self._subscribers.clear()


class EngineRegistry:
    """The named, multi-tenant engine collection behind the HTTP service."""

    def __init__(self) -> None:
        self._tenants: Dict[str, ManagedEngine] = {}

    def __len__(self) -> int:
        return len(self._tenants)

    def names(self) -> List[str]:
        return sorted(self._tenants)

    def get(self, name: str) -> ManagedEngine:
        managed = self._tenants.get(name)
        if managed is None:
            raise UnknownEngineError(
                f"no engine named {name!r}; registered: "
                f"{', '.join(self.names()) or '(none)'}"
            )
        return managed

    def summaries(self) -> List[Dict[str, object]]:
        return [self._tenants[name].summary() for name in self.names()]

    async def create(
        self,
        name: str,
        config,
        recover: str = "auto",
        fault_injector: Optional[FaultInjector] = None,
    ) -> ManagedEngine:
        """Register a new named engine from a config (dict or EngineConfig).

        Engine construction — which may be a full WAL recovery replay — runs
        on the default executor so a large tenant coming up never blocks the
        event loop for the tenants already serving.
        """
        if not isinstance(name, str) or not _NAME_PATTERN.match(name):
            raise ConfigurationError(
                f"invalid engine name {name!r}; expected 1-64 characters of "
                f"[A-Za-z0-9._-] starting with a letter or digit"
            )
        if name in self._tenants:
            raise DuplicateEngineError(f"an engine named {name!r} already exists")
        if not isinstance(config, EngineConfig):
            config = EngineConfig.from_dict(config)
        loop = asyncio.get_running_loop()
        engine, recovery = await loop.run_in_executor(
            None, build_engine, config, recover, fault_injector
        )
        if name in self._tenants:  # a concurrent create raced us while building
            engine.close()
            raise DuplicateEngineError(f"an engine named {name!r} already exists")
        managed = ManagedEngine(name, engine, loop, recovery=recovery)
        self._tenants[name] = managed
        return managed

    async def delete(self, name: str) -> Dict[str, object]:
        managed = self.get(name)
        del self._tenants[name]
        summary = managed.summary()
        await managed.close()
        return summary

    async def close(self) -> None:
        """Shut every tenant down (service stop); WALs stay on disk."""
        for name in self.names():
            managed = self._tenants.pop(name)
            await managed.close()
