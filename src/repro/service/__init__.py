"""Always-on service layer: async multi-tenant HTTP ingestion over engines.

The package turns the batch-oriented :class:`~repro.api.engine.FourCycleEngine`
into a long-running, network-facing system while keeping the reproduction's
hard dependency budget at the standard library:

* :mod:`repro.service.http` — minimal asyncio HTTP/1.1 + SSE plumbing (server
  and the matching test/benchmark client);
* :mod:`repro.service.registry` — the named tenant registry and the
  one-writer-per-engine / immutable-read-view concurrency model;
* :mod:`repro.service.app` — the route table, connection loop, and the
  :class:`ServiceRunner` harness for synchronous callers.

``repro-4cycles serve`` starts it from the command line; experiment E15
(:func:`repro.analysis.experiments.experiment_e15_service_load`) load-tests it
through real sockets.
"""

from repro.service.app import (
    MAX_BATCH_UPDATES,
    ReproService,
    ServiceRunner,
    STREAMABLE_EVENT_KINDS,
)
from repro.service.http import (
    HttpError,
    HttpRequest,
    http_json_request,
)
from repro.service.registry import (
    EVENT_ENGINE_CLOSED,
    RECOVER_MODES,
    DuplicateEngineError,
    EngineFailedError,
    EngineRegistry,
    EngineView,
    ManagedEngine,
    UnknownEngineError,
    build_engine,
)

__all__ = [
    "EVENT_ENGINE_CLOSED",
    "MAX_BATCH_UPDATES",
    "RECOVER_MODES",
    "STREAMABLE_EVENT_KINDS",
    "DuplicateEngineError",
    "EngineFailedError",
    "EngineRegistry",
    "EngineView",
    "HttpError",
    "HttpRequest",
    "ManagedEngine",
    "ReproService",
    "ServiceRunner",
    "UnknownEngineError",
    "build_engine",
    "http_json_request",
]
