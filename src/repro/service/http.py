"""Minimal asyncio HTTP/1.1 plumbing for the service layer.

The service's hard dependency budget is the standard library: a FastAPI-style
framework would make the always-on layer uninstallable in the hermetic
reproduction environment, and the protocol surface the service needs is tiny —
JSON request/response bodies, keep-alive connections for the load harness, and
a server-sent-events (SSE) stream for the engine event bridge.  This module
owns exactly that surface:

* :func:`read_request` — parse one request (start line, headers,
  ``Content-Length``-framed body) from an :class:`asyncio.StreamReader` into an
  :class:`HttpRequest`;
* :func:`render_response` — serialize a status + JSON payload, with keep-alive
  negotiation;
* :func:`sse_preamble` / :func:`format_sse_event` — the ``text/event-stream``
  framing used by ``GET /engines/<name>/events``;
* :func:`http_json_request` — the matching *client* (one JSON request over one
  connection), shared by the E15 load harness and the service tests so the
  server is always exercised through real sockets.

Framing limits are deliberate and small: the service speaks JSON control
messages, not bulk uploads, so an oversized body or header block is a protocol
error (413/400), never an allocation.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.exceptions import ServiceError

#: Request-framing limits (protocol errors beyond these, never allocations).
MAX_HEADER_COUNT = 64
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for the status codes the service actually emits.
REASON_PHRASES = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ServiceError):
    """An error with a definite HTTP status.

    Handlers raise it (directly, or via the exception mapping in
    :mod:`repro.service.app`) and the connection loop renders it as a JSON
    ``{"error": ...}`` body.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, decoded path, query, headers, raw body."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    #: Path segments with empty components removed (``/engines/t/counts`` ->
    #: ``("engines", "t", "counts")``), already percent-decoded.
    segments: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        self.segments = tuple(part for part in self.path.split("/") if part)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> dict:
        """The body decoded as a JSON object; anything else is a 400."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise HttpError(
                400, f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return payload


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one HTTP/1.1 request; ``None`` when the peer closed the socket.

    Malformed framing raises :class:`HttpError` (the connection loop answers
    it and drops the connection, since request boundaries are lost).
    """
    try:
        start_line = await reader.readline()
    except (ValueError, ConnectionError):  # line over the stream limit / reset
        raise HttpError(400, "request line too long or connection broken")
    if not start_line or not start_line.strip():
        return None
    parts = start_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line: {start_line[:80]!r}")
    method, target, version = parts

    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError):
            raise HttpError(400, "header line too long or connection broken")
        if line in (b"\r\n", b"\n", b""):
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > MAX_HEADER_COUNT:
            raise HttpError(400, f"too many headers (limit {MAX_HEADER_COUNT})")

    try:
        length = int(headers.get("content-length", "0"))
    except ValueError as error:
        raise HttpError(400, "content-length must be an integer") from error
    if length < 0:
        raise HttpError(400, "content-length must be non-negative")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"request body over the {MAX_BODY_BYTES}-byte limit")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None  # the peer died mid-body; nothing to answer

    split = urlsplit(target)
    request = HttpRequest(
        method=method.upper(),
        path=unquote(split.path),
        query={key: value for key, value in parse_qsl(split.query)},
        headers=headers,
        body=body,
    )
    if version == "HTTP/1.0" and headers.get("connection", "").lower() != "keep-alive":
        request.headers["connection"] = "close"
    return request


def render_response(
    status: int,
    payload: Optional[Mapping] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one JSON response (status line + headers + body)."""
    body = b""
    if payload is not None:
        body = (json.dumps(payload, default=str) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {REASON_PHRASES.get(status, 'Unknown')}\r\n"
        f"content-type: application/json\r\n"
        f"content-length: {len(body)}\r\n"
        f"connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def error_response(status: int, message: str, keep_alive: bool = False) -> bytes:
    return render_response(status, {"error": message, "status": status}, keep_alive)


def sse_preamble() -> bytes:
    """Response head opening a server-sent-events stream (no content length:
    the stream ends when the connection does)."""
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"content-type: text/event-stream\r\n"
        b"cache-control: no-cache\r\n"
        b"connection: close\r\n"
        b"\r\n"
    )


def format_sse_event(kind: str, payload: Mapping) -> bytes:
    """One SSE frame: ``event:`` the kind, ``data:`` the JSON payload."""
    data = json.dumps(payload, default=str)
    return f"event: {kind}\ndata: {data}\n\n".encode("utf-8")


async def http_json_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Mapping] = None,
) -> Tuple[int, dict]:
    """One JSON request over one fresh connection; returns (status, body).

    This is the client half used by the E15 load harness and the service
    tests: deliberately connection-per-request (``connection: close``) so a
    "client" is exactly one socket and concurrency equals open sockets.
    """
    body = b"" if payload is None else json.dumps(payload, default=str).encode("utf-8")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"host: {host}\r\n"
            f"content-type: application/json\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header_blob, _, response_body = raw.partition(b"\r\n\r\n")
    status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    status_parts = status_line.split()
    if len(status_parts) < 2 or not status_parts[1].isdigit():
        raise ServiceError(f"malformed HTTP response from the service: {status_line!r}")
    status = int(status_parts[1])
    decoded: dict = {}
    if response_body.strip():
        decoded = json.loads(response_body.decode("utf-8"))
    return status, decoded


def parse_event_kinds(raw: Optional[str], known: Sequence[str]) -> Optional[frozenset]:
    """Parse an SSE ``kinds`` filter (comma-separated); ``None`` means all."""
    if raw is None or not raw.strip():
        return None
    kinds = frozenset(part.strip() for part in raw.split(",") if part.strip())
    unknown = sorted(kinds - set(known))
    if unknown:
        raise HttpError(
            400,
            f"unknown event kind{'s' if len(unknown) > 1 else ''}: "
            f"{', '.join(unknown)}; expected a subset of {', '.join(known)}",
        )
    return kinds
