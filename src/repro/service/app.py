"""The always-on HTTP application: routes, connection loop, thread harness.

:class:`ReproService` binds an :class:`~repro.service.registry.EngineRegistry`
to a TCP port and speaks the JSON protocol from :mod:`repro.service.http`:

========  ===================================  =======================================
method    path                                 meaning
========  ===================================  =======================================
GET       ``/health``                          liveness + tenant census
GET       ``/engines``                         summaries of every tenant
POST      ``/engines``                         create a tenant (``name``, ``config``,
                                               optional ``recover`` mode)
GET       ``/engines/<name>``                  one tenant's summary
DELETE    ``/engines/<name>``                  shut the tenant down (WAL stays)
POST      ``/engines/<name>/updates``          apply a batch (``updates`` edge dicts
                                               *or* ``tuples`` layered dicts)
GET       ``/engines/<name>/counts``           counts from the published read view
GET       ``/engines/<name>/vertices``         top-degree table (``?top=N``)
GET       ``/engines/<name>/vertices/<v>``     one vertex's stats
GET       ``/engines/<name>/consistency``      serialized from-scratch recount
POST      ``/engines/<name>/compact``          snapshot + WAL compaction
GET       ``/engines/<name>/events``           SSE stream of engine events
                                               (``?kinds=a,b`` filter, ``?limit=N``)
========  ===================================  =======================================

Reads are answered from the tenant's last published
:class:`~repro.service.registry.EngineView` and therefore never wait on the
writer; mutations resolve when the tenant's writer task commits them.

:class:`ServiceRunner` runs the whole service on a dedicated event-loop thread
so synchronous callers — pytest, the CLI, the E15 load harness's reference
checks — can drive it with plain blocking calls.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional, Tuple

from repro.api.engine import EVENT_KINDS
from repro.api.sources import TupleFeedSource
from repro.exceptions import (
    ConfigurationError,
    CounterStateError,
    DurabilityError,
    FaultInjectionError,
    RecoverableEngineError,
    ReproError,
)
from repro.graph.updates import EdgeUpdate
from repro.io.serialization import edge_update_from_dict, layered_update_from_dict
from repro.service.http import (
    HttpError,
    HttpRequest,
    error_response,
    format_sse_event,
    parse_event_kinds,
    read_request,
    render_response,
    sse_preamble,
)
from repro.service.registry import (
    EVENT_ENGINE_CLOSED,
    DuplicateEngineError,
    EngineFailedError,
    EngineRegistry,
    ManagedEngine,
    UnknownEngineError,
)

#: Event kinds a stream subscriber may filter on.
STREAMABLE_EVENT_KINDS = tuple(EVENT_KINDS) + (EVENT_ENGINE_CLOSED,)

#: Hard cap on one ingestion request (the load harness sends far smaller
#: windows; a bigger batch should be split client-side, not buffered here).
MAX_BATCH_UPDATES = 100_000


def _status_for(error: ReproError) -> int:
    """Map a library error onto the HTTP status the protocol promises."""
    if isinstance(error, HttpError):
        return error.status
    if isinstance(error, UnknownEngineError):
        return 404
    if isinstance(error, DuplicateEngineError):
        return 409
    if isinstance(
        error,
        (
            EngineFailedError,
            RecoverableEngineError,
            FaultInjectionError,
            DurabilityError,
            CounterStateError,
        ),
    ):
        return 503  # the tenant fail-stopped; recovery, not a retry, fixes it
    return 400


class ReproService:
    """One listening socket over one multi-tenant engine registry."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port  # rebound to the kernel-chosen port after start()
        self.registry = EngineRegistry()
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set = set()
        self._stopped: Optional[asyncio.Event] = None
        self._tuple_codec = TupleFeedSource(())

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            raise ConfigurationError("service already started")
        self._stopped = asyncio.Event()
        # The E15 load harness opens a connection per request from thousands
        # of concurrent clients; the default listen backlog (100) would drop
        # the connect burst before the loop ever saw it.
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=4096
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # Closing the registry pushes the None sentinel through every open
        # event stream, so SSE handlers finish before we drop their sockets.
        await self.registry.close()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        if self._stopped is not None:
            self._stopped.set()

    async def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`stop` or cancellation."""
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        try:
            await self._stopped.wait()
        except asyncio.CancelledError:
            await self.stop()
            raise

    # -- connection loop -----------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as error:
                    # Framing is broken, so request boundaries are lost:
                    # answer once and drop the connection.
                    writer.write(error_response(error.status, str(error)))
                    await writer.drain()
                    break
                if request is None:
                    break
                if request.segments[2:3] == ("events",) and request.method == "GET":
                    await self._serve_events(request, writer)
                    break  # an event stream ends with its connection
                status, payload = await self._dispatch(request)
                keep_alive = request.keep_alive
                writer.write(render_response(status, payload, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, TimeoutError):
            pass  # the peer vanished; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest) -> Tuple[int, dict]:
        try:
            return await self._route(request)
        except ReproError as error:
            status = _status_for(error)
            return status, {
                "error": str(error),
                "status": status,
                "type": type(error).__name__,
            }
        # repro-lint: broad-except-ok the connection loop must keep serving
        # the other tenants when one handler trips an unexpected bug; the
        # failure is reported to the one affected client as a 500.
        except Exception as error:
            return 500, {
                "error": f"internal error: {type(error).__name__}: {error}",
                "status": 500,
                "type": type(error).__name__,
            }

    # -- routing -------------------------------------------------------------
    async def _route(self, request: HttpRequest) -> Tuple[int, dict]:
        segments = request.segments
        if segments == ("health",):
            if request.method != "GET":
                raise HttpError(405, "health supports GET only")
            return 200, {
                "status": "ok",
                "engines": len(self.registry),
                "names": self.registry.names(),
            }
        if segments == ("engines",):
            if request.method == "GET":
                return 200, {"engines": self.registry.summaries()}
            if request.method == "POST":
                return await self._create_engine(request)
            raise HttpError(405, "engines supports GET and POST")
        if segments[:1] == ("engines",) and len(segments) >= 2:
            return await self._route_tenant(request, segments[1], segments[2:])
        raise HttpError(404, f"no route for {request.path!r}")

    async def _route_tenant(
        self, request: HttpRequest, name: str, rest: Tuple[str, ...]
    ) -> Tuple[int, dict]:
        managed = self.registry.get(name)
        if rest == ():
            if request.method == "GET":
                return 200, managed.summary()
            if request.method == "DELETE":
                summary = await self.registry.delete(name)
                return 200, {"deleted": name, "final": summary}
            raise HttpError(405, "an engine supports GET and DELETE")
        if rest == ("updates",):
            if request.method != "POST":
                raise HttpError(405, "updates supports POST only")
            updates = self._decode_updates(request.json())
            return 200, await managed.apply_updates(updates)
        if rest == ("counts",):
            if request.method != "GET":
                raise HttpError(405, "counts supports GET only")
            return 200, {"engine": name, **managed.view.counts_payload()}
        if rest == ("consistency",):
            if request.method != "GET":
                raise HttpError(405, "consistency supports GET only")
            return 200, await managed.check_consistency()
        if rest == ("compact",):
            if request.method != "POST":
                raise HttpError(405, "compact supports POST only")
            return 200, await managed.compact()
        if rest == ("vertices",):
            if request.method != "GET":
                raise HttpError(405, "vertices supports GET only")
            return 200, self._vertices_payload(name, managed, request.query)
        if rest[:1] == ("vertices",) and len(rest) == 2:
            if request.method != "GET":
                raise HttpError(405, "vertex stats supports GET only")
            return 200, self._vertex_payload(name, managed, rest[1])
        raise HttpError(404, f"no route for {request.path!r}")

    # -- handlers ------------------------------------------------------------
    async def _create_engine(self, request: HttpRequest) -> Tuple[int, dict]:
        payload = request.json()
        name = payload.get("name")
        if not isinstance(name, str):
            raise HttpError(400, "create needs a string 'name'")
        config = payload.get("config", {})
        if not isinstance(config, dict):
            raise HttpError(400, "'config' must be a JSON object when given")
        recover = payload.get("recover", "auto")
        if not isinstance(recover, str):
            raise HttpError(400, "'recover' must be a string when given")
        managed = await self.registry.create(name, config, recover=recover)
        return 201, managed.summary()

    def _decode_updates(self, payload: dict) -> List[EdgeUpdate]:
        has_updates = "updates" in payload
        has_tuples = "tuples" in payload
        if has_updates == has_tuples:
            raise HttpError(
                400, "the body must carry exactly one of 'updates' or 'tuples'"
            )
        raw = payload["updates"] if has_updates else payload["tuples"]
        if not isinstance(raw, list) or not raw:
            raise HttpError(400, "the update batch must be a non-empty JSON array")
        if len(raw) > MAX_BATCH_UPDATES:
            raise HttpError(
                413,
                f"batch of {len(raw)} updates over the {MAX_BATCH_UPDATES} "
                f"per-request limit; split it client-side",
            )
        if has_updates:
            return [edge_update_from_dict(item) for item in raw]
        return [
            self._tuple_codec.encode(layered_update_from_dict(item)) for item in raw
        ]

    def _vertices_payload(
        self, name: str, managed: ManagedEngine, query: Dict[str, str]
    ) -> dict:
        raw_top = query.get("top", "10")
        try:
            top = int(raw_top)
        except ValueError as error:
            raise HttpError(400, f"top must be an integer, got {raw_top!r}") from error
        if top < 1:
            raise HttpError(400, f"top must be positive, got {top}")
        view = managed.view
        return {
            "engine": name,
            "num_vertices": view.num_vertices,
            "num_edges": view.num_edges,
            "as_of_updates": view.updates_processed,
            "top": view.top_degrees(top),
        }

    def _vertex_payload(self, name: str, managed: ManagedEngine, label: str) -> dict:
        view = managed.view
        vertex = view.resolve_vertex(label)
        if vertex is None:
            raise HttpError(
                404, f"engine {name!r} has no vertex {label!r} in its current view"
            )
        return {"engine": name, **view.vertex_stats(vertex)}

    # -- the event stream ----------------------------------------------------
    async def _serve_events(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        name = request.segments[1]
        try:
            managed = self.registry.get(name)
            kinds = parse_event_kinds(
                request.query.get("kinds"), STREAMABLE_EVENT_KINDS
            )
            limit = None
            if "limit" in request.query:
                try:
                    limit = int(request.query["limit"])
                except ValueError as error:
                    raise HttpError(
                        400, f"limit must be an integer, got {request.query['limit']!r}"
                    ) from error
                if limit < 1:
                    raise HttpError(400, f"limit must be positive, got {limit}")
        except ReproError as error:
            status = _status_for(error)
            writer.write(error_response(status, str(error)))
            await writer.drain()
            return
        queue = managed.subscribe_queue()
        writer.write(sse_preamble())
        sent = 0
        try:
            await writer.drain()
            while True:
                payload = await queue.get()
                if payload is None:
                    break  # the tenant shut down; the stream is complete
                if kinds is not None and payload["kind"] not in kinds:
                    continue
                writer.write(format_sse_event(payload["kind"], payload))
                await writer.drain()
                sent += 1
                if limit is not None and sent >= limit:
                    break
        except (ConnectionError, TimeoutError):
            pass  # the consumer went away; just drop the subscription
        finally:
            managed.unsubscribe_queue(queue)


class ServiceRunner:
    """Drive a :class:`ReproService` from synchronous code.

    Owns a dedicated event loop on a daemon thread; :meth:`run` submits any
    coroutine to that loop and blocks for the result, which is how the tests
    and the E15 harness create tenants with programmatic arguments (fault
    injectors cannot travel over HTTP).  Usable as a context manager.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = ReproService(host, port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.service.host, self.service.port

    def start(self) -> Tuple[str, int]:
        if self._thread is not None:
            raise ConfigurationError("service runner already started")
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()

        def _spin() -> None:
            asyncio.set_event_loop(self._loop)
            ready.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=_spin, name="repro-service", daemon=True
        )
        self._thread.start()
        ready.wait()
        return self.run(self.service.start())

    def run(self, coroutine):
        """Run one coroutine on the service loop; block for its result."""
        if self._loop is None:
            raise ConfigurationError("service runner is not started")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    def stop(self) -> None:
        if self._loop is None:
            return
        try:
            self.run(self.service.stop())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join()
            self._loop.close()
            self._loop = None
            self._thread = None

    def __enter__(self) -> "ServiceRunner":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
