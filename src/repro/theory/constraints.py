"""The constraint systems of Sections 3.4 and 4 (verified in Appendix B).

Two systems appear in the paper:

* **Main algorithm** (Section 4), over ``eps`` (update-time exponent slack)
  and ``delta`` (phase-length exponent), given the square exponent ``omega``:

  - Eq. (9):  ``1 - delta >= (2 omega + 1) eps + (omega - 1) * 2/3``
    (a phase is long enough to finish the old-phase square products);
  - Eq. (10): ``3 eps <= delta``
    (iterating over pairs of high/dense vertices, one from the new phase, fits
    in the update time);
  - Eq. (11): ``eps <= 1/6``
    (class thresholds are increasing).

* **Warm-up algorithm, A and C fixed** (Section 3.4), over ``eps1`` (its
  update-time slack) and ``eps2`` (chunk-density slack), given ``eps`` and a
  rectangular-exponent oracle:

  - Eq. (2): ``omega(1/3 + eps1, 2/3 - eps1, 1/3 + eps1) <= 4/3 - 2 eps1``;
  - Eq. (5): ``omega(2/3 + 2 eps, 1/3 - eps1 + eps2, 1/3 - eps1 + eps2)
    <= 4/3 - 2 eps1``;
  - Eq. (6): ``3 eps1 + 2 eps <= eps2``;
  - Eq. (7): ``eps1 <= 1/6``;
  - Eq. (8): ``eps1 - eps2 <= 1/3``.

Every constraint is represented as a named object that evaluates its
left-hand and right-hand sides, so reports can show the numeric slack exactly
the way Appendix B does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.exceptions import ConstraintError
from repro.theory.omega import OmegaModel


@dataclass(frozen=True)
class ConstraintEvaluation:
    """The outcome of checking one constraint at a concrete parameter point."""

    name: str
    description: str
    lhs: float
    rhs: float
    satisfied: bool

    @property
    def slack(self) -> float:
        """``rhs - lhs``; non-negative iff the constraint holds."""
        return self.rhs - self.lhs


@dataclass(frozen=True)
class Constraint:
    """A single ``lhs(params) <= rhs(params)`` constraint."""

    name: str
    description: str
    lhs: Callable[[Dict[str, float]], float]
    rhs: Callable[[Dict[str, float]], float]

    def evaluate(self, params: Dict[str, float], tolerance: float = 1e-9) -> ConstraintEvaluation:
        lhs_value = self.lhs(params)
        rhs_value = self.rhs(params)
        return ConstraintEvaluation(
            name=self.name,
            description=self.description,
            lhs=lhs_value,
            rhs=rhs_value,
            satisfied=lhs_value <= rhs_value + tolerance,
        )


class ConstraintSystem:
    """A named collection of constraints over a parameter dictionary."""

    def __init__(self, name: str, constraints: List[Constraint]) -> None:
        self.name = name
        self.constraints = list(constraints)

    def evaluate(self, params: Dict[str, float], tolerance: float = 1e-9) -> List[ConstraintEvaluation]:
        """Evaluate every constraint at ``params``."""
        return [constraint.evaluate(params, tolerance) for constraint in self.constraints]

    def all_satisfied(self, params: Dict[str, float], tolerance: float = 1e-9) -> bool:
        return all(evaluation.satisfied for evaluation in self.evaluate(params, tolerance))

    def require(self, params: Dict[str, float], tolerance: float = 1e-9) -> None:
        """Raise :class:`ConstraintError` listing every violated constraint."""
        violations = [
            evaluation for evaluation in self.evaluate(params, tolerance) if not evaluation.satisfied
        ]
        if violations:
            details = "; ".join(
                f"{violation.name}: {violation.lhs:.9f} > {violation.rhs:.9f}"
                for violation in violations
            )
            raise ConstraintError(f"{self.name}: violated constraints: {details}")


def main_constraint_system(omega: float) -> ConstraintSystem:
    """The main-algorithm system over parameters ``eps`` and ``delta``."""

    def eq9_lhs(params: Dict[str, float]) -> float:
        return (2.0 * omega + 1.0) * params["eps"] + (omega - 1.0) * 2.0 / 3.0

    def eq9_rhs(params: Dict[str, float]) -> float:
        return 1.0 - params["delta"]

    constraints = [
        Constraint(
            name="Eq(9) phase length",
            description=(
                "A phase of m^{1-delta} updates, each doing m^{2/3-eps} work, must cover the "
                "m^{omega (2/3+2 eps)} cost of the old-phase square products"
            ),
            lhs=eq9_lhs,
            rhs=eq9_rhs,
        ),
        Constraint(
            name="Eq(10) high-pair iteration",
            description=(
                "Iterating over pairs of high/dense vertices with one endpoint in the new phase "
                "(m^{1/3+eps} * m^{1-delta-2/3+eps}) must fit in the m^{2/3-eps} update time"
            ),
            lhs=lambda params: 3.0 * params["eps"],
            rhs=lambda params: params["delta"],
        ),
        Constraint(
            name="Eq(11) threshold ordering",
            description="Class thresholds must be increasing: 1/3 + eps <= 2/3 - eps",
            lhs=lambda params: params["eps"],
            rhs=lambda params: 1.0 / 6.0,
        ),
    ]
    return ConstraintSystem(name=f"main algorithm (omega={omega:g})", constraints=constraints)


def warmup_constraint_system(model: OmegaModel, eps: float) -> ConstraintSystem:
    """The warm-up system over ``eps1`` and ``eps2`` for a fixed ``eps``.

    The rectangular exponent oracle of ``model`` supplies
    ``omega(a, b, c)``; see :mod:`repro.matmul.omega` for the available models.
    """

    def eq2_lhs(params: Dict[str, float]) -> float:
        eps1 = params["eps1"]
        return model.rectangular_cost_exponent(1.0 / 3.0 + eps1, 2.0 / 3.0 - eps1, 1.0 / 3.0 + eps1)

    def eq5_lhs(params: Dict[str, float]) -> float:
        eps1 = params["eps1"]
        eps2 = params["eps2"]
        inner = 1.0 / 3.0 - eps1 + eps2
        return model.rectangular_cost_exponent(2.0 / 3.0 + 2.0 * eps, inner, inner)

    def chunk_budget(params: Dict[str, float]) -> float:
        return 4.0 / 3.0 - 2.0 * params["eps1"]

    constraints = [
        Constraint(
            name="Eq(2) high-vertex product",
            description=(
                "Multiplying (A^{H*} B_i) by C^{*H} with rectangular FMM must fit in the "
                "m^{4/3 - 2 eps1} budget of a chunk"
            ),
            lhs=eq2_lhs,
            rhs=chunk_budget,
        ),
        Constraint(
            name="Eq(5) low-vertex dense product",
            description=(
                "Multiplying A^{L*} by B_{i,DD} with rectangular FMM must fit in the "
                "m^{4/3 - 2 eps1} budget of a chunk"
            ),
            lhs=eq5_lhs,
            rhs=chunk_budget,
        ),
        Constraint(
            name="Eq(6) sparse enumeration",
            description=(
                "Enumerating low-vertex neighbors times chunk-sparse neighbors "
                "(m^{4/3 + eps1 - eps2 + 2 eps}) must fit in the chunk budget: 3 eps1 + 2 eps <= eps2"
            ),
            lhs=lambda params: 3.0 * params["eps1"] + 2.0 * eps,
            rhs=lambda params: params["eps2"],
        ),
        Constraint(
            name="Eq(7) threshold ordering",
            description="Warm-up class thresholds must be increasing: eps1 <= 1/6",
            lhs=lambda params: params["eps1"],
            rhs=lambda params: 1.0 / 6.0,
        ),
        Constraint(
            name="Eq(8) chunk-density ordering",
            description="Chunk-density threshold below sparsity threshold: eps1 - eps2 <= 1/3",
            lhs=lambda params: params["eps1"] - params["eps2"],
            rhs=lambda params: 1.0 / 3.0,
        ),
    ]
    return ConstraintSystem(
        name=f"warm-up algorithm (omega model={model.name}, eps={eps:g})", constraints=constraints
    )
