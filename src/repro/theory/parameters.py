"""Solving the paper's constraint systems for the algorithm parameters.

The headline constants of Theorems 1 and 2:

* ``omega = 2.371339`` (current best) gives ``eps = 0.009811`` and
  ``delta = 3 eps = 0.0294327``;
* ``omega = 2`` (best possible) gives ``eps = 1/24`` and ``delta = 1/8``.

These follow from making Eq. (10) tight (``delta = 3 eps``) and plugging it
into Eq. (9), which yields the closed form

``eps = (5 - 2 omega) / (6 omega + 12)``,

positive exactly when ``omega < 2.5``.  :func:`solve_main_parameters`
implements that closed form (and checks the full constraint system), while
:func:`solve_warmup_parameters` maximizes the warm-up slack ``eps1`` by
bisection under a rectangular-exponent oracle, with ``eps2 = 3 eps1 + 2 eps``
(Eq. (6) tight, as in the paper's solutions).

:func:`published_parameters` returns the constants reported in the paper, and
:func:`verify_published_parameters` re-runs the Appendix B check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exceptions import ConstraintError
from repro.theory.omega import (
    OMEGA_BEST,
    OMEGA_CURRENT,
    OMEGA_IMPROVEMENT_THRESHOLD,
    OmegaModel,
    best_omega_model,
    current_omega_model,
    model_for_omega,
)
from repro.theory.constraints import (
    ConstraintEvaluation,
    main_constraint_system,
    warmup_constraint_system,
)


@dataclass(frozen=True)
class MainParameters:
    """Parameters of the main algorithm (Section 4) for a given ``omega``."""

    omega: float
    eps: float
    delta: float

    @property
    def update_time_exponent(self) -> float:
        """The exponent ``x`` in the worst-case update time ``O(m^x)``."""
        return 2.0 / 3.0 - self.eps

    @property
    def phase_length_exponent(self) -> float:
        """The exponent of the phase length ``m^{1 - delta}``."""
        return 1.0 - self.delta

    @property
    def improves_over_previous_work(self) -> bool:
        """Whether the bound beats the ``O(m^{2/3})`` of [HHH22]."""
        return self.eps > 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"eps": self.eps, "delta": self.delta}


@dataclass(frozen=True)
class WarmupParameters:
    """Parameters of the warm-up algorithm (Section 3) for a given ``eps``."""

    eps: float
    eps1: float
    eps2: float
    model_name: str = "custom"

    @property
    def update_time_exponent(self) -> float:
        return 2.0 / 3.0 - self.eps1

    @property
    def chunk_size_exponent(self) -> float:
        """Chunks contain ``m^{2/3 - eps1}`` updates (Section 3.1)."""
        return 2.0 / 3.0 - self.eps1

    @property
    def chunk_dense_threshold_exponent(self) -> float:
        """A chunk-dense vertex has degree at least ``m^{1/3 - eps2}`` in the chunk."""
        return 1.0 / 3.0 - self.eps2

    def as_dict(self) -> Dict[str, float]:
        return {"eps1": self.eps1, "eps2": self.eps2}


def solve_main_parameters(omega: float = OMEGA_CURRENT, validate: bool = True) -> MainParameters:
    """Solve the main constraint system for the largest feasible ``eps``.

    Uses the closed form ``eps = (5 - 2 omega) / (6 omega + 12)`` with
    ``delta = 3 eps``; returns ``eps = 0`` (no improvement) when
    ``omega >= 2.5``.
    """
    if omega < 2.0 or omega > 3.0:
        raise ConstraintError(f"omega must lie in [2, 3], got {omega}")
    if omega >= OMEGA_IMPROVEMENT_THRESHOLD:
        # The phase approach yields no improvement: fall back to eps = 0 (the
        # [HHH22] bound).  The phase constraint itself is infeasible here, so
        # there is nothing to validate.
        return MainParameters(omega=omega, eps=0.0, delta=0.0)
    eps = (5.0 - 2.0 * omega) / (6.0 * omega + 12.0)
    eps = min(eps, 1.0 / 6.0)
    parameters = MainParameters(omega=omega, eps=eps, delta=3.0 * eps)
    if validate:
        main_constraint_system(omega).require(parameters.as_dict(), tolerance=1e-9)
    return parameters


def solve_warmup_parameters(
    eps: float,
    model: Optional[OmegaModel] = None,
    tolerance: float = 1e-9,
) -> WarmupParameters:
    """Maximize ``eps1`` (with ``eps2 = 3 eps1 + 2 eps``) by bisection.

    The feasible region in ``eps1`` is an interval starting at 0 for every
    monotone rectangular model, so bisection on "is this eps1 feasible?" finds
    the supremum; the returned value is backed off by ``tolerance`` so the full
    constraint system is satisfied exactly.
    """
    if model is None:
        model = current_omega_model()
    if eps < 0:
        raise ConstraintError(f"eps must be non-negative, got {eps}")
    system = warmup_constraint_system(model, eps)

    def feasible(eps1: float) -> bool:
        params = {"eps1": eps1, "eps2": 3.0 * eps1 + 2.0 * eps}
        return system.all_satisfied(params, tolerance=1e-12)

    if not feasible(0.0):
        raise ConstraintError(
            "the warm-up constraint system is infeasible even at eps1 = 0; "
            f"eps={eps} is too large for the {model.name} model"
        )
    low, high = 0.0, 1.0 / 6.0
    if feasible(high):
        low = high
    else:
        for _ in range(200):
            middle = (low + high) / 2.0
            if feasible(middle):
                low = middle
            else:
                high = middle
            if high - low <= tolerance:
                break
    eps1 = low
    eps2 = 3.0 * eps1 + 2.0 * eps
    return WarmupParameters(eps=eps, eps1=eps1, eps2=eps2, model_name=model.name)


#: The parameter values reported in the paper (Sections 3.4 and 4, Appendix B).
_PUBLISHED: Dict[str, Dict[str, float]] = {
    "current": {
        "omega": OMEGA_CURRENT,
        "eps": 0.0098109,
        "delta": 0.0294327,
        "eps1": 0.04201965,
        "eps2": 0.14568075,
    },
    "best": {
        "omega": OMEGA_BEST,
        "eps": 1.0 / 24.0,
        "delta": 1.0 / 8.0,
        "eps1": 1.0 / 24.0,
        "eps2": 5.0 / 24.0,
    },
}


@dataclass(frozen=True)
class PublishedParameters:
    """The constants the paper reports for one choice of ``omega``."""

    name: str
    omega: float
    main: MainParameters
    warmup: WarmupParameters


def published_parameters(which: str = "current") -> PublishedParameters:
    """The published constants: ``which`` is ``"current"`` or ``"best"``."""
    values = _PUBLISHED.get(which)
    if values is None:
        raise ConstraintError(f"unknown parameter set {which!r}; expected 'current' or 'best'")
    main = MainParameters(omega=values["omega"], eps=values["eps"], delta=values["delta"])
    warmup = WarmupParameters(
        eps=values["eps"], eps1=values["eps1"], eps2=values["eps2"], model_name=which
    )
    return PublishedParameters(name=which, omega=values["omega"], main=main, warmup=warmup)


@dataclass(frozen=True)
class VerificationReport:
    """Appendix-B style verification of the published constants."""

    name: str
    main_evaluations: List[ConstraintEvaluation]
    warmup_evaluations: List[ConstraintEvaluation]

    @property
    def all_satisfied(self) -> bool:
        return all(e.satisfied for e in self.main_evaluations) and all(
            e.satisfied for e in self.warmup_evaluations
        )


def verify_published_parameters(which: str = "current", tolerance: float = 1e-6) -> VerificationReport:
    """Re-run the Appendix B verification for the published constants.

    For ``which="current"`` the rectangular exponents use the published anchor
    values (see :class:`repro.matmul.omega.PublishedValuesRectangularModel`);
    for ``which="best"`` the best-possible model is used, as in the paper.
    """
    published = published_parameters(which)
    model = current_omega_model() if which == "current" else best_omega_model()
    main_system = main_constraint_system(published.omega)
    warmup_system = warmup_constraint_system(model, published.main.eps)
    return VerificationReport(
        name=which,
        main_evaluations=main_system.evaluate(published.main.as_dict(), tolerance),
        warmup_evaluations=warmup_system.evaluate(published.warmup.as_dict(), tolerance),
    )


def solve_for_omega_model(model: OmegaModel) -> MainParameters:
    """Solve the main system for an :class:`OmegaModel` instead of a raw float."""
    return solve_main_parameters(model.omega)


def sweep_omega(omegas: List[float]) -> List[MainParameters]:
    """Solve the main system for a list of omegas (the E8 ablation)."""
    results = []
    for omega in omegas:
        model = model_for_omega(omega)
        results.append(solve_main_parameters(model.omega, validate=False))
    return results
