"""Predicted update-time exponents and comparison tables.

This module turns the solved parameters into the "who wins by how much"
numbers a reader of the paper cares about:

* the update-time exponent ``2/3 - eps(omega)`` of the new algorithm,
* the ``O(m^{2/3})`` baseline of [HHH22],
* the ``O(m^{1/2})`` conditional lower bound (OMv),
* the ``O(n)`` simple algorithm of Appendix A (expressed in ``m`` for a given
  density assumption),

plus the omega-sweep used by the E8 ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.theory.omega import OMEGA_BEST, OMEGA_CURRENT, OMEGA_IMPROVEMENT_THRESHOLD
from repro.theory.parameters import MainParameters, solve_main_parameters

#: Update-time exponent of the previous best algorithm [HHH22].
HHH22_EXPONENT = 2.0 / 3.0

#: Conditional lower bound exponent under the OMv conjecture [HKNS15].
LOWER_BOUND_EXPONENT = 0.5


@dataclass(frozen=True)
class ExponentRow:
    """One row of the exponent comparison table."""

    algorithm: str
    exponent: float
    note: str = ""

    def predicted_cost(self, m: int) -> float:
        """The predicted per-update cost ``m^exponent`` for a concrete ``m``."""
        return float(max(m, 1)) ** self.exponent


def update_time_exponent(omega: float = OMEGA_CURRENT) -> float:
    """The exponent of the paper's worst-case update time for a given omega."""
    return solve_main_parameters(omega, validate=False).update_time_exponent


def improvement_margin(omega: float = OMEGA_CURRENT) -> float:
    """``eps(omega)``: how much the paper improves over the 2/3 exponent."""
    return solve_main_parameters(omega, validate=False).eps


def improvement_threshold() -> float:
    """The omega below which the approach yields any improvement (2.5)."""
    return OMEGA_IMPROVEMENT_THRESHOLD


def comparison_table(omega: float = OMEGA_CURRENT) -> List[ExponentRow]:
    """The headline comparison the introduction makes.

    The rows mirror the paper's discussion: the OMv lower bound, the [HHH22]
    upper bound, and the new bound under the current and best possible omega.
    """
    current = solve_main_parameters(omega, validate=False)
    best = solve_main_parameters(OMEGA_BEST, validate=False)
    return [
        ExponentRow(
            algorithm="OMv conditional lower bound",
            exponent=LOWER_BOUND_EXPONENT,
            note="Omega(m^{1/2 - gamma}) for any gamma > 0 [HKNS15]",
        ),
        ExponentRow(
            algorithm="HHH22 (previous best upper bound)",
            exponent=HHH22_EXPONENT,
            note="O(m^{2/3}) worst-case update time [HHH22]",
        ),
        ExponentRow(
            algorithm=f"This paper (omega = {omega:g})",
            exponent=current.update_time_exponent,
            note=f"eps = {current.eps:.6f}",
        ),
        ExponentRow(
            algorithm="This paper (omega = 2)",
            exponent=best.update_time_exponent,
            note="eps = 1/24",
        ),
    ]


@dataclass(frozen=True)
class OmegaSweepRow:
    """One row of the omega-ablation table (experiment E8)."""

    omega: float
    eps: float
    delta: float
    update_time_exponent: float
    improves: bool


def omega_sweep(omegas: Iterable[float]) -> List[OmegaSweepRow]:
    """Solve the main system for every omega in ``omegas``."""
    rows: List[OmegaSweepRow] = []
    for omega in omegas:
        parameters: MainParameters = solve_main_parameters(omega, validate=False)
        rows.append(
            OmegaSweepRow(
                omega=omega,
                eps=parameters.eps,
                delta=parameters.delta,
                update_time_exponent=parameters.update_time_exponent,
                improves=parameters.improves_over_previous_work,
            )
        )
    return rows


def predicted_speedup(m: int, omega: float = OMEGA_CURRENT) -> float:
    """Predicted factor between the [HHH22] cost and the paper's cost at ``m``.

    Equal to ``m^{eps(omega)}``; the paper notes this improvement is small but
    comparable to other landmark "slight improvement" results.
    """
    return float(max(m, 1)) ** improvement_margin(omega)
