"""Asymptotic models of (fast) square and rectangular matrix multiplication.

The paper's improvement hinges on the matrix-multiplication exponent:

* ``omega`` — multiplying two ``n x n`` matrices takes ``O(n^omega)``; the
  current best bound is ``omega = 2.371339`` [ADW+25] and the best possible is
  ``omega = 2``.
* ``omega(a, b, c)`` — multiplying an ``n^a x n^b`` matrix by an
  ``n^b x n^c`` matrix takes ``O(n^{omega(a, b, c)})`` (rectangular FMM).

This module models those exponents without implementing galactic algorithms:
the *running code* multiplies matrices with numpy/BLAS (see
:mod:`repro.matmul.engine`), while the exponent models here are consumed by
the theory constraint systems and by the benchmarks to report predicted
asymptotic costs.  The exponent models live in the theory layer (below
``matmul`` in the package DAG) because the constraint solvers are their main
consumer; :mod:`repro.matmul.omega` re-exports them alongside its concrete,
constant-aware product cost model.

Three rectangular models are provided, mirroring the substitution documented
in DESIGN.md:

* :class:`BlockPartitionRectangularModel` — the classic upper bound obtained by
  tiling the rectangular product into square blocks of side ``n^{min(a,b,c)}``.
* :class:`BestPossibleRectangularModel` — the information-theoretic lower
  envelope ``max(a + b, b + c)`` the paper uses for the ``omega = 2`` results.
* :class:`PublishedValuesRectangularModel` — anchors the two rectangular
  exponent values reported in Appendix B (obtained by the authors with the
  complexity-term balancer over the [ADW+25] tables), falling back to the block
  bound elsewhere.  This is what lets E2/E3 verify the published warm-up
  constants without re-deriving the [ADW+25] tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Protocol

from repro.exceptions import ConfigurationError

#: Current best upper bound on the square matrix multiplication exponent
#: [ADW+25], the value used throughout the paper.
OMEGA_CURRENT = 2.371339

#: The best possible exponent (matrix multiplication cannot beat reading the
#: input/output).
OMEGA_BEST = 2.0

#: The exponent of the schoolbook algorithm.
OMEGA_NAIVE = 3.0

#: Strassen's exponent, mentioned in the introduction as *not* sufficient for
#: the paper's improvement.
OMEGA_STRASSEN = math.log2(7)

#: The paper's improvement requires ``omega < 2.5`` (Section 5.1).
OMEGA_IMPROVEMENT_THRESHOLD = 2.5


class RectangularModel(Protocol):
    """Oracle for the rectangular exponent ``omega(a, b, c)``."""

    def exponent(self, a: float, b: float, c: float) -> float:
        """The exponent of multiplying ``n^a x n^b`` by ``n^b x n^c``."""
        ...


@dataclass(frozen=True)
class BlockPartitionRectangularModel:
    """Upper bound by tiling into square blocks of side ``n^{min(a, b, c)}``.

    Partitioning yields ``n^{a-s} * n^{b-s} * n^{c-s}`` block products, each a
    square product of side ``n^s`` costing ``n^{s * omega}``, so

    ``omega(a, b, c) <= a + b + c + s * (omega - 3)`` with ``s = min(a, b, c)``.

    The bound also never drops below the trivial input/output cost
    ``max(a + b, b + c, a + c)``.
    """

    omega: float = OMEGA_CURRENT

    def exponent(self, a: float, b: float, c: float) -> float:
        _validate_exponents(a, b, c)
        smallest = min(a, b, c)
        block_bound = a + b + c + smallest * (self.omega - 3.0)
        return max(block_bound, a + b, b + c, a + c)


@dataclass(frozen=True)
class BestPossibleRectangularModel:
    """The best-possible exponent ``max(a + b, b + c)``.

    The paper (Section 3.4) uses this for its ``omega = 2`` results: the
    product then costs asymptotically no more than reading its inputs.
    """

    def exponent(self, a: float, b: float, c: float) -> float:
        _validate_exponents(a, b, c)
        return max(a + b, b + c)


@dataclass
class PublishedValuesRectangularModel:
    """Anchors the rectangular exponent values published in Appendix B.

    Appendix B reports, for the warm-up algorithm at the published parameter
    values (``eps = 0.0098109``, ``eps1 = 0.04201965``, ``eps2 = 0.14568075``):

    * ``omega(1/3 + eps1, 2/3 - eps1, 1/3 + eps1) <= 1.10495201``
    * ``omega(2/3 + 2 eps, 1/3 - eps1 + eps2, 1/3 - eps1 + eps2) <= 1.24039952``

    Those values come from the complexity-term balancer over the [ADW+25]
    rectangular tables, which are not reproducible offline; we therefore treat
    them as published anchor points (matched up to a tolerance on the
    arguments) and fall back to :class:`BlockPartitionRectangularModel`
    everywhere else.
    """

    omega: float = OMEGA_CURRENT
    tolerance: float = 1e-6
    anchors: Dict[tuple[float, float, float], float] = field(default_factory=dict)
    _fallback: BlockPartitionRectangularModel = field(init=False)

    def __post_init__(self) -> None:
        self._fallback = BlockPartitionRectangularModel(self.omega)
        if not self.anchors:
            eps = 0.0098109
            eps1 = 0.04201965
            eps2 = 0.14568075
            self.anchors = {
                (1.0 / 3.0 + eps1, 2.0 / 3.0 - eps1, 1.0 / 3.0 + eps1): 1.10495201,
                (
                    2.0 / 3.0 + 2.0 * eps,
                    1.0 / 3.0 - eps1 + eps2,
                    1.0 / 3.0 - eps1 + eps2,
                ): 1.24039952,
            }

    def exponent(self, a: float, b: float, c: float) -> float:
        _validate_exponents(a, b, c)
        for (anchor_a, anchor_b, anchor_c), value in self.anchors.items():
            if (
                abs(a - anchor_a) <= self.tolerance
                and abs(b - anchor_b) <= self.tolerance
                and abs(c - anchor_c) <= self.tolerance
            ):
                return value
        return self._fallback.exponent(a, b, c)


@dataclass(frozen=True)
class OmegaModel:
    """Bundle of a square exponent and a rectangular oracle.

    This is the object the theory module and the benchmarks consume; the
    three canonical instances are exposed as :func:`current_omega_model`,
    :func:`best_omega_model`, and :func:`naive_omega_model`.
    """

    omega: float
    rectangular: RectangularModel
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.omega < 2.0 or self.omega > 3.0:
            raise ConfigurationError(f"omega must lie in [2, 3], got {self.omega}")

    def square_cost_exponent(self, dimension_exponent: float) -> float:
        """Exponent of multiplying two square matrices of side ``m^d``.

        Returns ``d * omega`` — the cost is ``m^{d * omega}``.
        """
        if dimension_exponent < 0:
            raise ConfigurationError(
                f"dimension exponent must be non-negative, got {dimension_exponent}"
            )
        return dimension_exponent * self.omega

    def rectangular_cost_exponent(self, a: float, b: float, c: float) -> float:
        """Exponent of multiplying an ``m^a x m^b`` matrix by an ``m^b x m^c``."""
        return self.rectangular.exponent(a, b, c)

    def allows_improvement(self) -> bool:
        """Whether the paper's approach beats ``O(m^{2/3})`` with this omega.

        The phase constraint (Eq. 9) only has a solution with ``eps > 0`` when
        ``omega < 2.5``; any bound better than 3 (e.g. Strassen) is *not*
        sufficient, which the paper highlights as surprising.
        """
        return self.omega < OMEGA_IMPROVEMENT_THRESHOLD

    def predicted_square_cost(self, side: int) -> float:
        """Predicted operation count for a concrete square product."""
        if side <= 0:
            return 0.0
        return float(side) ** self.omega


def current_omega_model() -> OmegaModel:
    """The model with the current best exponent ``omega = 2.371339``."""
    return OmegaModel(
        omega=OMEGA_CURRENT,
        rectangular=PublishedValuesRectangularModel(OMEGA_CURRENT),
        name="current",
    )


def best_omega_model() -> OmegaModel:
    """The model with the best possible exponent ``omega = 2``."""
    return OmegaModel(omega=OMEGA_BEST, rectangular=BestPossibleRectangularModel(), name="best")


def naive_omega_model() -> OmegaModel:
    """The schoolbook model ``omega = 3`` (no improvement possible)."""
    return OmegaModel(
        omega=OMEGA_NAIVE, rectangular=BlockPartitionRectangularModel(OMEGA_NAIVE), name="naive"
    )


def model_for_omega(omega: float) -> OmegaModel:
    """A model for an arbitrary square exponent with the block-partition
    rectangular bound (used by the omega-ablation experiment E8)."""
    return OmegaModel(
        omega=omega, rectangular=BlockPartitionRectangularModel(omega), name=f"omega={omega:g}"
    )


def _validate_exponents(a: float, b: float, c: float) -> None:
    if a < 0 or b < 0 or c < 0:
        raise ConfigurationError(
            f"rectangular exponents must be non-negative, got ({a}, {b}, {c})"
        )
