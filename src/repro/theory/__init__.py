"""Constraint systems, parameter solving, and exponent tables (the paper's
analytic results: Theorems 1 and 2, Sections 3.4 and 4, Appendix B)."""

from repro.theory.constraints import (
    Constraint,
    ConstraintEvaluation,
    ConstraintSystem,
    main_constraint_system,
    warmup_constraint_system,
)
from repro.theory.exponents import (
    HHH22_EXPONENT,
    LOWER_BOUND_EXPONENT,
    ExponentRow,
    OmegaSweepRow,
    comparison_table,
    improvement_margin,
    improvement_threshold,
    omega_sweep,
    predicted_speedup,
    update_time_exponent,
)
from repro.theory.parameters import (
    MainParameters,
    PublishedParameters,
    VerificationReport,
    WarmupParameters,
    published_parameters,
    solve_main_parameters,
    solve_warmup_parameters,
    sweep_omega,
    verify_published_parameters,
)

__all__ = [
    "Constraint",
    "ConstraintEvaluation",
    "ConstraintSystem",
    "main_constraint_system",
    "warmup_constraint_system",
    "MainParameters",
    "WarmupParameters",
    "PublishedParameters",
    "VerificationReport",
    "solve_main_parameters",
    "solve_warmup_parameters",
    "published_parameters",
    "verify_published_parameters",
    "sweep_omega",
    "ExponentRow",
    "OmegaSweepRow",
    "comparison_table",
    "update_time_exponent",
    "improvement_margin",
    "improvement_threshold",
    "omega_sweep",
    "predicted_speedup",
    "HHH22_EXPONENT",
    "LOWER_BOUND_EXPONENT",
]
