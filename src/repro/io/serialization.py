"""Persistence of update streams, workloads, and experiment results.

Reproducibility plumbing: benchmark runs and examples can save the exact
update stream they used (JSON lines) and the per-update metrics they measured
(CSV/JSON), so a result can be re-checked later or on another machine without
re-generating the workload.

Only plain-text formats are used; vertex labels must be JSON-serializable
(ints and strings cover every built-in workload).
"""

from __future__ import annotations

import csv
import json
import os
import zlib
from pathlib import Path
from typing import Iterable, List, Union

from repro.exceptions import ConfigurationError, SnapshotCorruptionError
from repro.graph.updates import EdgeUpdate, LayeredEdgeUpdate, UpdateKind, UpdateStream
from repro.instrumentation.metrics import UpdateMetrics, UpdateRecord

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Update streams
# ---------------------------------------------------------------------------
def edge_update_to_dict(update: EdgeUpdate) -> dict:
    """A JSON-friendly representation of a general-graph update."""
    return {"u": update.u, "v": update.v, "kind": update.kind.value}


def edge_update_from_dict(payload: dict) -> EdgeUpdate:
    """Inverse of :func:`edge_update_to_dict`."""
    try:
        kind = UpdateKind(payload["kind"])
        return EdgeUpdate(payload["u"], payload["v"], kind)
    except (KeyError, ValueError) as error:
        raise ConfigurationError(f"malformed edge-update payload: {payload!r}") from error


def layered_update_to_dict(update: LayeredEdgeUpdate) -> dict:
    """A JSON-friendly representation of a layered update."""
    return {
        "relation": update.relation,
        "left": update.left,
        "right": update.right,
        "kind": update.kind.value,
    }


def layered_update_from_dict(payload: dict) -> LayeredEdgeUpdate:
    """Inverse of :func:`layered_update_to_dict`."""
    try:
        kind = UpdateKind(payload["kind"])
        return LayeredEdgeUpdate(payload["relation"], payload["left"], payload["right"], kind)
    except (KeyError, ValueError) as error:
        raise ConfigurationError(f"malformed layered-update payload: {payload!r}") from error


def save_stream(stream: UpdateStream, path: PathLike) -> None:
    """Write a general update stream as JSON lines (one update per line)."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for update in stream:
            handle.write(json.dumps(edge_update_to_dict(update)) + "\n")


def load_stream(path: PathLike) -> UpdateStream:
    """Read an update stream written by :func:`save_stream`."""
    source = Path(path)
    updates: List[EdgeUpdate] = []
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{source}:{line_number}: not valid JSON: {line[:80]!r}"
                ) from error
            updates.append(edge_update_from_dict(payload))
    return UpdateStream(updates)


def save_layered_updates(updates: Iterable[LayeredEdgeUpdate], path: PathLike) -> None:
    """Write layered updates as JSON lines."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for update in updates:
            handle.write(json.dumps(layered_update_to_dict(update)) + "\n")


def load_layered_updates(path: PathLike) -> List[LayeredEdgeUpdate]:
    """Read layered updates written by :func:`save_layered_updates`."""
    source = Path(path)
    updates: List[LayeredEdgeUpdate] = []
    with source.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                updates.append(layered_update_from_dict(json.loads(line)))
    return updates


# ---------------------------------------------------------------------------
# Engine snapshots
# ---------------------------------------------------------------------------
#: On-disk snapshot format version; bumped on incompatible layout changes.
ENGINE_SNAPSHOT_VERSION = 1

_SNAPSHOT_KEYS = ("config", "count", "updates_processed", "vertices", "edges")


def _snapshot_checksum(payload: dict) -> int:
    """CRC32 over the canonical JSON of ``payload`` (``checksum`` excluded)."""
    body = {key: value for key, value in payload.items() if key != "checksum"}
    return zlib.crc32(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


def atomic_write_text(path: PathLike, text: str) -> None:
    """Crash-safe replace: write a sibling tmp file, fsync it, then rename.

    ``os.replace`` is atomic on POSIX, so readers only ever observe the old
    complete file or the new complete file — never a torn one.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def save_engine_snapshot(snapshot: dict, path: PathLike) -> None:
    """Persist a :class:`~repro.api.engine.EngineSnapshot` payload as JSON.

    ``snapshot`` is the ``to_dict()`` form.  Vertex labels may be ints,
    strings, or arbitrarily nested tuples of those (the layer-tagged labels a
    :class:`~repro.api.sources.TupleFeedSource` produces): tuples are encoded
    as JSON arrays and decoded back to tuples by
    :func:`load_engine_snapshot`.  Other label types fail ``json.dumps`` here,
    at save time.

    The write is atomic (tmp file + fsync + rename) and the payload carries a
    CRC32 content checksum that :func:`load_engine_snapshot` verifies, so a
    crash mid-save can never leave a half-written snapshot that later loads.
    """
    missing = sorted(set(_SNAPSHOT_KEYS) - set(snapshot))
    if missing:
        raise ConfigurationError(
            f"engine snapshot is missing key{'s' if len(missing) > 1 else ''}: "
            f"{', '.join(missing)}"
        )
    payload = dict(snapshot, version=ENGINE_SNAPSHOT_VERSION)
    payload["checksum"] = _snapshot_checksum(payload)
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def _decode_snapshot_label(value):
    """Undo JSON's tuple -> array encoding for one vertex label.

    Unambiguous because vertex labels must be hashable: a decoded list can
    only ever have started life as a tuple.
    """
    if isinstance(value, list):
        return tuple(_decode_snapshot_label(item) for item in value)
    return value


def load_engine_snapshot(path: PathLike) -> dict:
    """Read a snapshot written by :func:`save_engine_snapshot`.

    Edge pairs and tuple vertex labels come back as tuples (JSON arrays
    decode to lists, which are not hashable vertex material).  Every
    malformation — truncated or invalid JSON, a checksum mismatch, missing
    keys, structurally bad vertices/edges — raises
    :class:`~repro.exceptions.SnapshotCorruptionError` (a
    :class:`ConfigurationError` subclass) naming the file, never a raw
    ``json.JSONDecodeError`` or ``KeyError``.
    """
    source = Path(path)
    try:
        payload = json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SnapshotCorruptionError(f"{source}: not valid JSON") from error
    if not isinstance(payload, dict):
        raise SnapshotCorruptionError(
            f"{source}: expected a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("version")
    if version != ENGINE_SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"{source}: unsupported engine-snapshot version {version!r} "
            f"(expected {ENGINE_SNAPSHOT_VERSION})"
        )
    checksum = payload.pop("checksum", None)
    if checksum is not None and checksum != _snapshot_checksum(payload):
        raise SnapshotCorruptionError(
            f"{source}: content checksum mismatch (stored {checksum}, "
            f"computed {_snapshot_checksum(payload)}); the snapshot is corrupt"
        )
    payload.pop("version", None)
    missing = sorted(set(_SNAPSHOT_KEYS) - set(payload))
    if missing:
        raise SnapshotCorruptionError(
            f"{source}: snapshot is missing key{'s' if len(missing) > 1 else ''}: "
            f"{', '.join(missing)}"
        )
    try:
        payload["vertices"] = [
            _decode_snapshot_label(vertex) for vertex in payload["vertices"]
        ]
        payload["edges"] = [
            (_decode_snapshot_label(edge[0]), _decode_snapshot_label(edge[1]))
            for edge in payload["edges"]
        ]
    except (TypeError, IndexError, KeyError) as error:
        raise SnapshotCorruptionError(
            f"{source}: malformed vertices/edges payload: {error}"
        ) from error
    return payload


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
_METRICS_COLUMNS = ("index", "operations", "seconds", "edge_count", "is_insert")


def save_metrics_csv(metrics: UpdateMetrics, path: PathLike) -> None:
    """Write per-update metrics as CSV (one row per update)."""
    target = Path(path)
    with target.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_METRICS_COLUMNS)
        for record in metrics.records:
            writer.writerow(
                [record.index, record.operations, record.seconds, record.edge_count, int(record.is_insert)]
            )


def load_metrics_csv(path: PathLike) -> UpdateMetrics:
    """Read metrics written by :func:`save_metrics_csv`."""
    source = Path(path)
    metrics = UpdateMetrics()
    with source.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or set(_METRICS_COLUMNS) - set(reader.fieldnames):
            raise ConfigurationError(
                f"{source}: expected columns {_METRICS_COLUMNS}, got {reader.fieldnames}"
            )
        for row in reader:
            metrics.record(
                UpdateRecord(
                    index=int(row["index"]),
                    operations=int(row["operations"]),
                    seconds=float(row["seconds"]),
                    edge_count=int(row["edge_count"]),
                    is_insert=bool(int(row["is_insert"])),
                )
            )
    return metrics


def save_summary_json(summary_rows: Iterable[dict], path: PathLike) -> None:
    """Write a list of summary dictionaries (e.g. from the harness) as JSON."""
    target = Path(path)
    target.write_text(json.dumps(list(summary_rows), indent=2, sort_keys=True), encoding="utf-8")


def load_summary_json(path: PathLike) -> List[dict]:
    """Read summaries written by :func:`save_summary_json`."""
    source = Path(path)
    payload = json.loads(source.read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise ConfigurationError(f"{source}: expected a JSON list, got {type(payload).__name__}")
    return payload
