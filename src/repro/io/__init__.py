"""Persistence helpers for streams, layered updates, metrics, summaries, and
engine snapshots."""

from repro.io.serialization import (
    edge_update_from_dict,
    edge_update_to_dict,
    layered_update_from_dict,
    layered_update_to_dict,
    load_engine_snapshot,
    load_layered_updates,
    load_metrics_csv,
    load_stream,
    load_summary_json,
    save_engine_snapshot,
    save_layered_updates,
    save_metrics_csv,
    save_stream,
    save_summary_json,
)

__all__ = [
    "edge_update_to_dict",
    "edge_update_from_dict",
    "layered_update_to_dict",
    "layered_update_from_dict",
    "save_stream",
    "load_stream",
    "save_layered_updates",
    "load_layered_updates",
    "save_metrics_csv",
    "load_metrics_csv",
    "save_summary_json",
    "load_summary_json",
    "save_engine_snapshot",
    "load_engine_snapshot",
]
