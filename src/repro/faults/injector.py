"""Deterministic, seed-driven fault injection.

Chaos testing only proves something when the chaos is reproducible: a fault
schedule must fire at exactly the same write point or task index on every run
with the same seed, so a recovery failure found in CI can be replayed locally
byte for byte.  This module provides that schedule.

A :class:`Fault` names *where* (a site, e.g. one occurrence of a WAL append),
*what* (an action, e.g. a torn write), and *when* (the 0-based occurrence
index at that site, either pinned or drawn deterministically from the
injector's seed).  A :class:`FaultInjector` holds the schedule and is threaded
through the durability and execution layers behind ``if injector is not None``
checks — the hooks are free when no injector is attached, which is every
production configuration.

The injector only *decides*; the instrumented component *acts*.  A WAL that
receives a ``torn-write`` fault writes the partial record itself, because only
it knows the record bytes; the injector stays free of I/O and stays importable
from rank 0 of the layering DAG.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.exceptions import ConfigurationError

# -- sites ------------------------------------------------------------------
#: One WAL record append (occurrence index == the record's sequence number
#: for a log written by a single engine).
SITE_WAL_APPEND = "wal.append"
#: One periodic engine snapshot write.
SITE_SNAPSHOT_WRITE = "snapshot.write"
#: One shard task dispatched by a :class:`~repro.matmul.sharding.ShardExecutor`.
SITE_EXECUTOR_TASK = "executor.task"

FAULT_SITES = (SITE_WAL_APPEND, SITE_SNAPSHOT_WRITE, SITE_EXECUTOR_TASK)

# -- actions ----------------------------------------------------------------
#: Simulate process death at the site (before the write unless the fault's
#: payload says ``{"when": "after"}``).
ACTION_CRASH = "crash"
#: Write a strict byte prefix of the record, then crash (a torn tail).
ACTION_TORN_WRITE = "torn-write"
#: Write the record with a flipped byte, then crash (CRC must catch it).
ACTION_CORRUPT_RECORD = "corrupt-record"
#: Kill the worker process executing the task (``os._exit``); outside a
#: process pool this is downgraded to a transient error, because exiting a
#: thread or inline worker would kill the engine process itself.
ACTION_KILL_WORKER = "kill-worker"
#: Raise :class:`~repro.exceptions.InjectedTransientError` from the task.
ACTION_TRANSIENT_ERROR = "transient-error"
#: Sleep ``payload["seconds"]`` inside the task before computing, so a
#: configured task timeout fires in the parent.
ACTION_STALL = "stall"

FAULT_ACTIONS = (
    ACTION_CRASH,
    ACTION_TORN_WRITE,
    ACTION_CORRUPT_RECORD,
    ACTION_KILL_WORKER,
    ACTION_TRANSIENT_ERROR,
    ACTION_STALL,
)

#: Actions each site knows how to act on.
SITE_ACTIONS = {
    SITE_WAL_APPEND: (ACTION_CRASH, ACTION_TORN_WRITE, ACTION_CORRUPT_RECORD),
    SITE_SNAPSHOT_WRITE: (ACTION_CRASH, ACTION_TORN_WRITE),
    SITE_EXECUTOR_TASK: (ACTION_KILL_WORKER, ACTION_TRANSIENT_ERROR, ACTION_STALL),
}


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: fire ``action`` at occurrence ``at`` of ``site``.

    ``at=None`` asks the injector to draw the occurrence index deterministically
    from its seed, uniform over ``range(horizon)`` — the "crash at a random
    write point" shape the chaos suite uses.  ``times`` arms the fault for that
    many *consecutive* occurrences starting at ``at`` (a persistently failing
    worker is ``times`` large); each firing consumes one charge.  ``payload``
    carries action-specific knobs (``when``, ``keep_bytes``, ``seconds``).
    """

    site: str
    action: str
    at: Optional[int] = None
    horizon: int = 16
    times: int = 1
    payload: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; expected one of {FAULT_SITES}"
            )
        if self.action not in SITE_ACTIONS[self.site]:
            raise ConfigurationError(
                f"action {self.action!r} is not valid at site {self.site!r}; "
                f"expected one of {SITE_ACTIONS[self.site]}"
            )
        if self.at is not None and (not isinstance(self.at, int) or self.at < 0):
            raise ConfigurationError(f"fault occurrence index must be >= 0, got {self.at!r}")
        if self.horizon < 1:
            raise ConfigurationError(f"fault horizon must be positive, got {self.horizon}")
        if self.times < 1:
            raise ConfigurationError(f"fault times must be positive, got {self.times}")
        object.__setattr__(self, "payload", dict(self.payload))

    def describe(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "action": self.action,
            "at": self.at,
            "times": self.times,
            "payload": dict(self.payload),
        }


def derived_seed(seed: int, *parts: object) -> int:
    """A stable sub-seed for ``(seed, parts...)``.

    Hash-free (``hash(str)`` is salted per process) so the same schedule
    resolves identically across runs and machines.
    """
    text = ":".join([str(seed)] + [str(part) for part in parts])
    return zlib.crc32(text.encode("utf-8"))


class FaultInjector:
    """Arms a schedule of :class:`Fault` entries and fires them on demand.

    Instrumented components call :meth:`check` once per occurrence of their
    site; the call increments the site's occurrence counter and returns the
    fault armed for that occurrence (consuming one of its charges) or ``None``.
    Everything is resolved deterministically at construction: two injectors
    built from the same ``(faults, seed)`` fire identically.
    """

    def __init__(self, faults: Sequence[Fault] = (), seed: int = 0) -> None:
        self.seed = int(seed)
        resolved: List[Fault] = []
        for index, fault in enumerate(faults):
            if not isinstance(fault, Fault):
                raise ConfigurationError(
                    f"expected a Fault, got {type(fault).__name__} at schedule index {index}"
                )
            if fault.at is None:
                rng = random.Random(derived_seed(self.seed, fault.site, index))
                fault = replace(fault, at=rng.randrange(fault.horizon))
            resolved.append(fault)
        self.faults: List[Fault] = resolved
        self._charges: List[int] = [fault.times for fault in resolved]
        self._counts: Dict[str, int] = {}
        self.fired: List[Dict[str, object]] = []

    def occurrences(self, site: str) -> int:
        """How many times ``site`` has been checked so far."""
        return self._counts.get(site, 0)

    def check(self, site: str) -> Optional[Fault]:
        """Advance ``site`` by one occurrence; return the fault due now, if any."""
        occurrence = self._counts.get(site, 0)
        self._counts[site] = occurrence + 1
        for index, fault in enumerate(self.faults):
            if fault.site != site or self._charges[index] <= 0:
                continue
            start = fault.at
            if start <= occurrence < start + fault.times and self._charges[index] > 0:
                self._charges[index] -= 1
                self.fired.append(
                    {
                        "site": site,
                        "action": fault.action,
                        "occurrence": occurrence,
                        "schedule_index": index,
                    }
                )
                return fault
        return None

    def rng(self, *parts: object) -> random.Random:
        """A deterministic RNG namespaced by ``parts`` (for payload decisions)."""
        return random.Random(derived_seed(self.seed, *parts))

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled charge has fired."""
        return all(charge <= 0 for charge in self._charges)

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly record of the schedule and what has fired (the
        chaos suite uploads this as its CI artifact)."""
        return {
            "seed": self.seed,
            "faults": [fault.describe() for fault in self.faults],
            "fired": [dict(entry) for entry in self.fired],
            "occurrences": dict(self._counts),
            "exhausted": self.exhausted,
        }

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, faults={len(self.faults)}, "
            f"fired={len(self.fired)})"
        )
