"""Deterministic fault injection for chaos-testing the durability stack.

See :mod:`repro.faults.injector` for the model: a seed-driven
:class:`FaultInjector` arms a schedule of :class:`Fault` entries (crash at a
write point, kill a worker on task N, tear or corrupt a WAL record, raise a
transient task error) and the instrumented components — the write-ahead log,
the engine's snapshot writer, the shard executor — consult it behind
``if injector is not None`` hooks that cost nothing when no injector is
attached.
"""

from repro.faults.injector import (
    ACTION_CORRUPT_RECORD,
    ACTION_CRASH,
    ACTION_KILL_WORKER,
    ACTION_STALL,
    ACTION_TORN_WRITE,
    ACTION_TRANSIENT_ERROR,
    FAULT_ACTIONS,
    FAULT_SITES,
    SITE_ACTIONS,
    SITE_EXECUTOR_TASK,
    SITE_SNAPSHOT_WRITE,
    SITE_WAL_APPEND,
    Fault,
    FaultInjector,
    derived_seed,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "derived_seed",
    "FAULT_SITES",
    "FAULT_ACTIONS",
    "SITE_ACTIONS",
    "SITE_WAL_APPEND",
    "SITE_SNAPSHOT_WRITE",
    "SITE_EXECUTOR_TASK",
    "ACTION_CRASH",
    "ACTION_TORN_WRITE",
    "ACTION_CORRUPT_RECORD",
    "ACTION_KILL_WORKER",
    "ACTION_TRANSIENT_ERROR",
    "ACTION_STALL",
]
