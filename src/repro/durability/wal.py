"""The write-ahead log: crash-safe, replayable update durability.

Format
------
One JSON object per line, in :class:`~repro.api.sources.ReplaySource`'s exact
update encoding (``u``/``v``/``kind``) extended with two durability fields:

* ``seq`` — a per-record sequence number, contiguous within the file (the
  first record of a compacted log may start above zero);
* ``crc`` — a CRC32 trailer over the canonical JSON of the record without the
  ``crc`` field itself.

Because decoders of the base format ignore unknown keys, a WAL file *is* a
valid ``ReplaySource`` stream; the extra fields only matter to recovery, which
uses them to skip records already covered by a snapshot and to reject
corruption.

Crash semantics
---------------
Appends go through an unbuffered file descriptor, so a record is handed to the
OS the moment :meth:`WriteAheadLog.append` returns; the ``fsync_policy``
decides when it is forced to stable storage (``"always"`` per record,
``"batch"`` at each :meth:`commit` — the engine commits once per
apply/apply_batch call — ``"never"`` leaves it to the OS).  A crash can
therefore leave at most one torn record, at the tail.  Readers tolerate
exactly that: a record that fails validation is forgiven only when nothing
but blank space follows it; a bad record with more data after it is
mid-file corruption and raises :class:`~repro.exceptions.WalCorruptionError`.

Opening an existing log truncates a torn tail (after validating the prefix),
so the writer always resumes from the last durable record.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError, InjectedCrashError, WalCorruptionError
from repro.faults.injector import (
    ACTION_CORRUPT_RECORD,
    ACTION_CRASH,
    ACTION_TORN_WRITE,
    SITE_WAL_APPEND,
    Fault,
    FaultInjector,
)
from repro.graph.updates import EdgeUpdate
from repro.io.serialization import edge_update_from_dict, edge_update_to_dict

PathLike = Union[str, Path]

#: When the log is forced to stable storage: every record, every commit point
#: (one engine apply/apply_batch call), or never (the OS decides).
FSYNC_POLICIES = ("always", "batch", "never")

_CANONICAL = dict(sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------
def encode_wal_record(update: EdgeUpdate, seq: int) -> bytes:
    """One WAL line for ``update`` at sequence number ``seq`` (newline included)."""
    record = dict(edge_update_to_dict(update), seq=int(seq))
    crc = zlib.crc32(json.dumps(record, **_CANONICAL).encode("utf-8"))
    record["crc"] = crc
    return (json.dumps(record, **_CANONICAL) + "\n").encode("utf-8")


def decode_wal_record(
    line: str, path: Optional[PathLike] = None, line_number: Optional[int] = None
) -> Tuple[int, EdgeUpdate]:
    """Inverse of :func:`encode_wal_record`; raises :class:`WalCorruptionError`."""
    where = f"{path}:{line_number}: " if path is not None else ""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise WalCorruptionError(f"{where}not valid JSON: {line[:80]!r}") from error
    if not isinstance(payload, dict):
        raise WalCorruptionError(
            f"{where}expected a JSON object, got {type(payload).__name__}"
        )
    crc = payload.pop("crc", None)
    if not isinstance(crc, int):
        raise WalCorruptionError(f"{where}record has no integer crc trailer")
    expected = zlib.crc32(json.dumps(payload, **_CANONICAL).encode("utf-8"))
    if crc != expected:
        raise WalCorruptionError(
            f"{where}CRC mismatch: stored {crc}, computed {expected}"
        )
    seq = payload.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise WalCorruptionError(f"{where}record has no valid sequence number: {seq!r}")
    try:
        update = edge_update_from_dict(payload)
    except ConfigurationError as error:
        raise WalCorruptionError(f"{where}{error}") from error
    return seq, update


# ---------------------------------------------------------------------------
# Readers
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WalScan:
    """Validation summary of one log file."""

    first_seq: int          #: sequence number of the first record (-1 if empty)
    last_seq: int           #: sequence number of the last valid record (-1 if empty)
    num_records: int        #: valid records seen
    valid_bytes: int        #: byte length of the valid prefix (truncation point)
    torn_tail: bool         #: whether a torn final record was dropped
    torn_line: Optional[int]  #: line number of the torn record, if any


def scan_wal(path: PathLike, tolerate_torn_tail: bool = True) -> WalScan:
    """Validate a log end to end without materializing its updates.

    A record that fails validation is tolerated only when it is the final
    non-blank line (a torn tail) *and* ``tolerate_torn_tail`` is set; any bad
    record followed by more data raises :class:`WalCorruptionError`, as does a
    sequence gap anywhere.
    """
    source = Path(path)
    first_seq = -1
    last_seq = -1
    num_records = 0
    offset = 0
    valid_bytes = 0
    torn_line: Optional[int] = None
    torn_error: Optional[WalCorruptionError] = None
    with source.open("rb") as handle:
        for line_number, raw in enumerate(handle, start=1):
            stripped = raw.strip()
            offset += len(raw)
            if not stripped:
                continue
            if torn_error is not None:
                raise torn_error
            try:
                seq, _ = decode_wal_record(
                    stripped.decode("utf-8", errors="replace"), source, line_number
                )
            except WalCorruptionError as error:
                torn_error = error
                torn_line = line_number
                continue
            if last_seq >= 0 and seq != last_seq + 1:
                raise WalCorruptionError(
                    f"{source}:{line_number}: sequence gap: expected {last_seq + 1}, "
                    f"found {seq}"
                )
            if first_seq < 0:
                first_seq = seq
            last_seq = seq
            num_records += 1
            valid_bytes = offset
    if torn_error is not None and not tolerate_torn_tail:
        raise torn_error
    return WalScan(
        first_seq=first_seq,
        last_seq=last_seq,
        num_records=num_records,
        valid_bytes=valid_bytes,
        torn_tail=torn_error is not None,
        torn_line=torn_line,
    )


def replay_wal(
    path: PathLike, after_seq: int = -1, tolerate_torn_tail: bool = True
) -> Iterator[Tuple[int, EdgeUpdate]]:
    """Yield ``(seq, update)`` for every record with ``seq > after_seq``.

    Lazy (one line at a time); corruption semantics match :func:`scan_wal`.
    """
    source = Path(path)
    last_seq = -1
    pending: Optional[WalCorruptionError] = None
    with source.open("r", encoding="utf-8", errors="replace") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if pending is not None:
                raise pending
            try:
                seq, update = decode_wal_record(stripped, source, line_number)
            except WalCorruptionError as error:
                pending = error
                continue
            if last_seq >= 0 and seq != last_seq + 1:
                raise WalCorruptionError(
                    f"{source}:{line_number}: sequence gap: expected {last_seq + 1}, "
                    f"found {seq}"
                )
            last_seq = seq
            if seq > after_seq:
                yield seq, update
    if pending is not None and not tolerate_torn_tail:
        raise pending


def truncate_wal_after_seq(path: PathLike, seq: int) -> None:
    """Truncate the log file so no record with a sequence above ``seq`` survives.

    A record that fails to decode ends the valid prefix (everything from it on
    is being dropped anyway), so this also clears a torn tail.  File-level
    only — callers owning an open :class:`WriteAheadLog` go through
    :meth:`WriteAheadLog.truncate_to_seq`, which also fixes up the sequence
    counter and fd.
    """
    source = Path(path)
    keep_bytes = 0
    with source.open("rb") as handle:
        offset = 0
        for line_number, raw in enumerate(handle, start=1):
            offset += len(raw)
            stripped = raw.strip()
            if not stripped:
                continue
            try:
                record_seq, _ = decode_wal_record(
                    stripped.decode("utf-8", errors="replace"), source, line_number
                )
            except WalCorruptionError:
                break
            if record_seq > seq:
                break
            keep_bytes = offset
    os.truncate(source, keep_bytes)


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------
class WriteAheadLog:
    """Append-only durable update log with crash-tolerant reopen.

    ``min_next_seq`` floors the next sequence number (recovery passes the
    snapshot's sequence when the snapshot is ahead of a lost or compacted
    log).  ``injector`` threads a :class:`~repro.faults.FaultInjector` through
    the append path; ``None`` (the default) costs one attribute check.
    """

    def __init__(
        self,
        path: PathLike,
        fsync_policy: str = "batch",
        injector: Optional[FaultInjector] = None,
        min_next_seq: int = 0,
    ) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"fsync_policy must be one of {', '.join(FSYNC_POLICIES)}, "
                f"got {fsync_policy!r}"
            )
        self.path = Path(path)
        self.fsync_policy = fsync_policy
        self.injector = injector
        self.reopened_torn_tail = False
        next_seq = max(0, int(min_next_seq))
        if self.path.exists() and self.path.stat().st_size > 0:
            scan = scan_wal(self.path, tolerate_torn_tail=True)
            if scan.torn_tail:
                # Drop the torn record so the writer resumes from durable state.
                os.truncate(self.path, scan.valid_bytes)
                self.reopened_torn_tail = True
            next_seq = max(next_seq, scan.last_seq + 1)
        self._next_seq = next_seq
        # Unbuffered: a returned append() is in the OS, so a simulated crash
        # (which just closes the fd) can never surface half-buffered bytes
        # later, and fsync semantics are exactly the policy's.
        self._file = self.path.open("ab", buffering=0)
        self._closed = False
        self._dirty = False

    # -- introspection -------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended record (-1 when empty)."""
        return self._next_seq - 1

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ConfigurationError(f"write-ahead log {self.path} is closed")

    # -- appends -------------------------------------------------------------
    def append(self, update: EdgeUpdate) -> int:
        """Durably append one update; returns its sequence number."""
        self._ensure_open()
        seq = self._next_seq
        data = encode_wal_record(update, seq)
        if self.injector is not None:
            fault = self.injector.check(SITE_WAL_APPEND)
            if fault is not None:
                self._inject_append_fault(fault, data, seq)
        self._file.write(data)
        self._dirty = True
        self._next_seq = seq + 1
        if self.fsync_policy == "always":
            self._sync()
        return seq

    def append_batch(self, updates: Iterable[EdgeUpdate]) -> List[int]:
        """Append every update; the caller owns the commit point."""
        return [self.append(update) for update in updates]

    def commit(self) -> None:
        """Force appended records to stable storage per the fsync policy.

        A no-op when nothing was written since the last sync, so under the
        ``always`` policy (where :meth:`append` already synced) the engine's
        per-update commit costs no second fsync.
        """
        self._ensure_open()
        if self._dirty and self.fsync_policy in ("always", "batch"):
            self._sync()

    def _sync(self) -> None:
        os.fsync(self._file.fileno())
        self._dirty = False

    # -- fault actions -------------------------------------------------------
    def _inject_append_fault(self, fault: Fault, data: bytes, seq: int) -> None:
        """Act on an armed append fault; every branch simulates a crash."""
        if fault.action == ACTION_CRASH:
            if fault.payload.get("when") == "after":
                self._file.write(data)
                self._next_seq = seq + 1
                self._sync()
            self._simulate_crash(f"injected crash at {SITE_WAL_APPEND} seq={seq}")
        elif fault.action == ACTION_TORN_WRITE:
            keep = fault.payload.get("keep_bytes")
            if not isinstance(keep, int) or not 0 < keep < len(data):
                keep = max(1, len(data) // 2)
            self._file.write(data[:keep])
            self._simulate_crash(f"injected torn write at seq={seq} ({keep} bytes)")
        elif fault.action == ACTION_CORRUPT_RECORD:
            corrupted = bytearray(data)
            index = fault.payload.get("index")
            if not isinstance(index, int) or not 0 <= index < len(corrupted) - 1:
                index = len(corrupted) // 2
            corrupted[index] ^= 0x01
            self._file.write(bytes(corrupted))
            self._simulate_crash(f"injected corrupt record at seq={seq} (byte {index})")
        else:  # pragma: no cover - Fault validation pins site/action pairs
            raise ConfigurationError(
                f"fault action {fault.action!r} is not implemented at {SITE_WAL_APPEND}"
            )

    def _simulate_crash(self, message: str) -> None:
        """Close the fd (the OS keeps what it was handed) and die."""
        self._file.close()
        self._closed = True
        raise InjectedCrashError(message)

    # -- maintenance ---------------------------------------------------------
    def truncate_to_seq(self, seq: int) -> None:
        """Drop every record with a sequence number above ``seq``.

        The engine's rollback path: a batch that was logged but failed to
        apply never happened, so its records must not survive into recovery.
        The truncation is fsynced (unless the policy is ``never``) so a crash
        right after the rollback cannot resurrect the dropped records.
        """
        self._ensure_open()
        if seq >= self.last_seq:
            return
        self._file.close()
        truncate_wal_after_seq(self.path, seq)
        # The next append must continue the sequence right after ``seq``, NOT
        # after whatever records survive in the file: a compacted log can be
        # empty while the sequence counter is far above zero, and restarting
        # below the snapshot's wal_seq would make recovery silently skip
        # every later record.
        self._next_seq = max(0, seq + 1)
        self._file = self.path.open("ab", buffering=0)
        if self.fsync_policy != "never":
            self._sync()

    def compact(self, keep_after_seq: int) -> int:
        """Atomically rewrite the log keeping only records past ``keep_after_seq``.

        Called after a durable snapshot at ``keep_after_seq``: everything at or
        below it is covered by the snapshot.  Sequence numbers are preserved,
        so a compacted log's first record starts above zero.  Returns the
        number of records kept.
        """
        self._ensure_open()
        if self.fsync_policy != "never":
            # Land pending appends before rewriting; under ``never`` durability
            # is the OS's business, and the rewrite reads the page cache anyway.
            self._sync()
        tmp = self.path.with_name(self.path.name + ".compact.tmp")
        kept = 0
        with tmp.open("wb") as handle:
            for seq, update in replay_wal(self.path, after_seq=keep_after_seq):
                handle.write(encode_wal_record(update, seq))
                kept += 1
            handle.flush()
            os.fsync(handle.fileno())
        self._file.close()
        os.replace(tmp, self.path)
        self._file = self.path.open("ab", buffering=0)
        return kept

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Flush, fsync (unless policy is ``never``), and close; idempotent."""
        if self._closed:
            return
        if self.fsync_policy != "never":
            self._sync()
        self._file.close()
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self.path)!r}, fsync_policy={self.fsync_policy!r}, "
            f"last_seq={self.last_seq})"
        )


# ---------------------------------------------------------------------------
# Sidecar metadata
# ---------------------------------------------------------------------------
def wal_meta_path(path: PathLike) -> Path:
    """The config sidecar for a log: written once at WAL creation so recovery
    can rebuild the engine even when no snapshot ever landed."""
    wal = Path(path)
    return wal.with_name(wal.name + ".meta.json")


def save_wal_meta(path: PathLike, config: dict) -> None:
    """Atomically persist the engine config dict next to the log."""
    target = wal_meta_path(path)
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"version": 1, "config": dict(config)}, indent=2, sort_keys=True))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def load_wal_meta(path: PathLike) -> Optional[dict]:
    """The config dict saved by :func:`save_wal_meta`, or ``None`` if absent."""
    target = wal_meta_path(path)
    if not target.exists():
        return None
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"{target}: not valid JSON") from error
    if not isinstance(payload, dict) or not isinstance(payload.get("config"), dict):
        raise ConfigurationError(f"{target}: malformed WAL metadata sidecar")
    return dict(payload["config"])
