"""Crash-safe durability for :class:`~repro.api.engine.FourCycleEngine`.

Three pieces:

* :mod:`repro.durability.wal` — :class:`WriteAheadLog`, an append-only JSONL
  update log in :class:`~repro.api.sources.ReplaySource`'s format extended
  with per-record sequence numbers and a CRC32 trailer, with configurable
  fsync policy and crash-tolerant reopen;
* :mod:`repro.durability.snapshots` — checkpoint generations next to the log
  (``<wal>.snap-<seq>.json``), newest-valid-wins selection, pruning;
* :mod:`repro.durability.recovery` — :func:`recover`, which rebuilds an
  engine from the latest valid snapshot plus the WAL tail, tolerating exactly
  one torn (or counter-rejected) final record, and re-attaches the log.
"""

from repro.durability.recovery import RecoveryReport, recover
from repro.durability.snapshots import (
    DEFAULT_KEEP_SNAPSHOTS,
    latest_valid_snapshot,
    list_snapshot_paths,
    prune_snapshots,
    snapshot_path_for,
)
from repro.durability.wal import (
    FSYNC_POLICIES,
    WalScan,
    WriteAheadLog,
    decode_wal_record,
    encode_wal_record,
    load_wal_meta,
    replay_wal,
    save_wal_meta,
    scan_wal,
    truncate_wal_after_seq,
    wal_meta_path,
)

__all__ = [
    "WriteAheadLog",
    "FSYNC_POLICIES",
    "WalScan",
    "encode_wal_record",
    "decode_wal_record",
    "scan_wal",
    "replay_wal",
    "truncate_wal_after_seq",
    "wal_meta_path",
    "save_wal_meta",
    "load_wal_meta",
    "snapshot_path_for",
    "list_snapshot_paths",
    "latest_valid_snapshot",
    "prune_snapshots",
    "DEFAULT_KEEP_SNAPSHOTS",
    "recover",
    "RecoveryReport",
]
