"""Crash recovery: latest valid snapshot + WAL tail -> a consistent engine.

:func:`recover` is the single entry point a restarted process calls.  It

1. finds the newest snapshot generation whose checksum verifies (older
   generations, then no snapshot at all, are the fallbacks — a torn snapshot
   costs replay time, never the run);
2. rebuilds a :class:`~repro.api.engine.FourCycleEngine` from it (or from the
   config stored in the WAL's metadata sidecar when no snapshot ever landed);
3. replays every WAL record past the snapshot's sequence number through the
   engine's exact batch pipeline, tolerating exactly one torn final record —
   and, symmetrically, one *rejected* final record: an update the counter
   refused whose rollback truncate the crash beat to disk is re-rejected on
   replay and dropped from the log;
4. re-attaches the WAL so the recovered engine appends where the crashed one
   stopped.

Because every counter is exact and the WAL records updates in apply order,
the recovered count is bit-identical to an uninterrupted run over the same
durable prefix — the chaos suite asserts this for every counter and every
injected fault class.

The imports of :mod:`repro.api` live inside the function body: recovery is
*used by* the facade layer above it, and the late import is the repository's
sanctioned idiom for calling back up the DAG (see REP102).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.exceptions import ConfigurationError, ReproError
from repro.faults.injector import FaultInjector
from repro.durability.snapshots import latest_valid_snapshot
from repro.durability.wal import (
    load_wal_meta,
    replay_wal,
    scan_wal,
    truncate_wal_after_seq,
)

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RecoveryReport:
    """What recovery found and did — the chaos suite's CI artifact rows."""

    wal_path: str
    counter: str
    snapshot_path: Optional[str]  #: generation used, None = full-log replay
    snapshot_seq: int             #: WAL seq the snapshot covered (-1 = none)
    replayed_records: int         #: WAL tail records applied
    torn_tail_dropped: bool       #: whether the log ended in a torn record
    rejected_tail_dropped: bool   #: whether the final record was rejected and dropped
    last_seq: int                 #: last durable sequence number after recovery
    count: int                    #: recovered 4-cycle count

    def to_dict(self) -> dict:
        return {
            "wal_path": self.wal_path,
            "counter": self.counter,
            "snapshot_path": self.snapshot_path,
            "snapshot_seq": self.snapshot_seq,
            "replayed_records": self.replayed_records,
            "torn_tail_dropped": self.torn_tail_dropped,
            "rejected_tail_dropped": self.rejected_tail_dropped,
            "last_seq": self.last_seq,
            "count": self.count,
        }


def recover(
    wal_path: PathLike,
    config=None,
    fault_injector: Optional[FaultInjector] = None,
    attach: bool = True,
    batch_size: Optional[int] = None,
) -> Tuple[object, RecoveryReport]:
    """Rebuild an engine from ``wal_path`` and its snapshot generations.

    ``config`` (an :class:`~repro.api.config.EngineConfig`, a config dict, or
    a counter name) overrides the recorded configuration; normally it is
    ``None`` and the snapshot's (or metadata sidecar's) config is used.
    ``attach=False`` recovers a read-only engine without reopening the log.
    ``batch_size`` overrides the replay window (the final count is identical
    for every window size — the counters are exact — so this is purely a
    replay-throughput knob).  Returns ``(engine, report)``.
    """
    from repro.api.config import EngineConfig
    from repro.api.engine import FourCycleEngine

    wal = Path(wal_path)
    if not wal.exists():
        raise ConfigurationError(f"write-ahead log {wal} does not exist")

    found = latest_valid_snapshot(wal)
    snapshot_seq = -1
    snapshot_payload = None
    snapshot_path: Optional[Path] = None
    if found is not None:
        snapshot_seq, snapshot_payload, snapshot_path = found

    if config is None:
        if snapshot_payload is not None:
            config = EngineConfig.from_dict(snapshot_payload["config"])
        else:
            meta = load_wal_meta(wal)
            if meta is None:
                raise ConfigurationError(
                    f"cannot recover {wal}: no valid snapshot and no metadata "
                    f"sidecar; pass config= (an EngineConfig or counter name)"
                )
            config = EngineConfig.from_dict(meta)
    elif isinstance(config, str):
        config = EngineConfig(counter=config)
    elif not isinstance(config, EngineConfig):
        config = EngineConfig.from_dict(config)

    # Replay with the WAL detached: the records being replayed are already
    # durable, and appending them again would duplicate the log.
    replay_config = config.with_updates(wal_path=None, snapshot_every=None)
    if snapshot_payload is not None:
        payload = dict(snapshot_payload)
        payload["config"] = replay_config.to_dict()
        engine = FourCycleEngine.restore(payload)
    else:
        engine = FourCycleEngine(replay_config)

    scan = scan_wal(wal, tolerate_torn_tail=True)
    replayed = 0
    last_seq = snapshot_seq
    rejected_tail = False
    window_size = batch_size if batch_size is not None else max(config.batch_size, 1)
    window = []
    for seq, update in replay_wal(wal, after_seq=snapshot_seq):
        if seq == scan.last_seq:
            # The final record is the one place write-ahead order can leave a
            # committed-but-never-applied update: the engine commits, the
            # counter rejects, and a crash lands before the rollback truncate
            # is durable.  Apply it alone; if the counter rejects it now it was
            # rejected then, so drop it from the log like a torn tail.
            if window:
                _apply_window(engine, window)
                replayed += len(window)
                window = []
            try:
                engine.apply(update)
            except ReproError:
                truncate_wal_after_seq(wal, seq - 1)
                rejected_tail = True
                break
            replayed += 1
            last_seq = seq
            break
        window.append(update)
        last_seq = seq
        if len(window) >= window_size:
            _apply_window(engine, window)
            replayed += len(window)
            window = []
    if window:
        _apply_window(engine, window)
        replayed += len(window)
    durable_tail = scan.last_seq - 1 if rejected_tail else scan.last_seq
    last_seq = max(last_seq, durable_tail, snapshot_seq)

    if attach:
        engine.attach_wal(
            wal,
            fsync_policy=config.fsync_policy,
            snapshot_every=config.snapshot_every,
            fault_injector=fault_injector,
            min_next_seq=last_seq + 1,
        )

    report = RecoveryReport(
        wal_path=str(wal),
        counter=engine.name,
        snapshot_path=None if snapshot_path is None else str(snapshot_path),
        snapshot_seq=snapshot_seq,
        replayed_records=replayed,
        torn_tail_dropped=scan.torn_tail,
        rejected_tail_dropped=rejected_tail,
        last_seq=last_seq,
        count=engine.count,
    )
    return engine, report


def _apply_window(engine, window) -> None:
    """One replay window through the exact update pipeline."""
    if len(window) == 1:
        engine.apply(window[0])
    else:
        engine.apply_batch(window)
