"""Snapshot generations for a write-ahead log.

The engine periodically checkpoints next to its log as
``<wal>.snap-<seq>.json``, where ``seq`` is the last WAL sequence number the
snapshot covers; records above it are the replay tail.  Keeping the last few
generations (default two) means a snapshot torn by a crash costs a longer
replay, never the run: recovery walks generations newest-first and takes the
first one whose embedded checksum verifies, falling back to a full-log replay
when none does.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.io.serialization import load_engine_snapshot

PathLike = Union[str, Path]

#: Snapshot generations retained by :func:`prune_snapshots`.
DEFAULT_KEEP_SNAPSHOTS = 2

_SNAPSHOT_PATTERN = re.compile(r"\.snap-(\d+)\.json$")


def snapshot_path_for(wal_path: PathLike, seq: int) -> Path:
    """Where the snapshot covering WAL records ``<= seq`` lives."""
    wal = Path(wal_path)
    return wal.with_name(f"{wal.name}.snap-{max(seq, 0):012d}.json")


def list_snapshot_paths(wal_path: PathLike) -> List[Tuple[int, Path]]:
    """Every snapshot generation for ``wal_path``, ascending by sequence."""
    wal = Path(wal_path)
    found: List[Tuple[int, Path]] = []
    if not wal.parent.exists():
        return found
    for candidate in wal.parent.glob(f"{wal.name}.snap-*.json"):
        match = _SNAPSHOT_PATTERN.search(candidate.name)
        if match is not None:
            found.append((int(match.group(1)), candidate))
    found.sort(key=lambda entry: entry[0])
    return found


def latest_valid_snapshot(
    wal_path: PathLike,
) -> Optional[Tuple[int, dict, Path]]:
    """The newest snapshot that loads and verifies, or ``None``.

    Returns ``(seq, payload, path)``; generations that fail validation
    (torn file, checksum mismatch, missing keys) are skipped, not deleted —
    they are evidence.
    """
    for seq, path in reversed(list_snapshot_paths(wal_path)):
        try:
            payload = load_engine_snapshot(path)
        except ConfigurationError:
            # SnapshotCorruptionError included: fall back to the previous
            # generation (or a full replay) rather than failing recovery.
            continue
        embedded = payload.get("wal_seq")
        if isinstance(embedded, int) and not isinstance(embedded, bool):
            seq = embedded
        return seq, payload, path
    return None


def prune_snapshots(wal_path: PathLike, keep: int = DEFAULT_KEEP_SNAPSHOTS) -> List[Path]:
    """Delete all but the newest ``keep`` generations; returns what was removed."""
    if keep < 1:
        raise ConfigurationError(f"must keep at least one snapshot, got keep={keep}")
    generations = list_snapshot_paths(wal_path)
    removed: List[Path] = []
    for _, path in generations[:-keep]:
        path.unlink(missing_ok=True)
        removed.append(path)
    return removed
