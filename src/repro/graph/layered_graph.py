"""The 4-layered graph of Section 2.1.

A 4-layered graph has vertex set ``L1 ∪ L2 ∪ L3 ∪ L4`` where each layer is an
independent set and edges only exist between consecutive layers (wrapping
around).  The four edge sets are the binary relations

* ``A(L1, L2)``,
* ``B(L2, L3)``,
* ``C(L3, L4)``,
* ``D(L4, L1)``,

exactly the database framing of the paper: layers are attributes, vertices are
attribute values, edges are tuples, and the number of layered 4-cycles equals
the size of the cyclic join ``A ⋈ B ⋈ C ⋈ D``.

:class:`LayeredGraph` stores every relation in both directions (left-to-right
and right-to-left adjacency) so the algorithms can iterate neighborhoods from
either side in O(degree) time, and exposes static counting utilities (layered
2-paths, 3-paths, 4-cycles) used as ground truth by the tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set

import numpy as np

from repro.exceptions import DuplicateEdgeError, LayerError, MissingEdgeError
from repro.graph.updates import RELATION_NAMES, LayeredEdgeUpdate, UpdateKind

Vertex = Hashable

#: Which (left layer, right layer) each relation connects.
RELATION_LAYERS: Dict[str, tuple[int, int]] = {
    "A": (1, 2),
    "B": (2, 3),
    "C": (3, 4),
    "D": (4, 1),
}

#: For every layer, the (relation, side) pairs that touch it.  ``side`` is
#: ``"left"`` when vertices of the layer appear as the first attribute of the
#: relation and ``"right"`` when they appear as the second.
LAYER_RELATIONS: Dict[int, tuple[tuple[str, str], tuple[str, str]]] = {
    1: (("A", "left"), ("D", "right")),
    2: (("B", "left"), ("A", "right")),
    3: (("C", "left"), ("B", "right")),
    4: (("D", "left"), ("C", "right")),
}

#: The relations the paper uses to *classify* vertices of each layer:
#: ``L1`` by its degree in ``A``, ``L4`` by its degree in ``C`` (Section 3.1),
#: ``L2`` by its combined degree in ``A`` and ``B``, and ``L3`` by its combined
#: degree in ``B`` and ``C`` (Section 4).
CLASSIFICATION_RELATIONS: Dict[int, tuple[tuple[str, str], ...]] = {
    1: (("A", "left"),),
    2: (("A", "right"), ("B", "left")),
    3: (("B", "right"), ("C", "left")),
    4: (("C", "right"),),
}


class _Relation:
    """One bipartite relation stored as forward and backward adjacency."""

    __slots__ = ("name", "forward", "backward", "num_edges")

    def __init__(self, name: str) -> None:
        self.name = name
        self.forward: Dict[Vertex, Set[Vertex]] = {}
        self.backward: Dict[Vertex, Set[Vertex]] = {}
        self.num_edges = 0

    def has(self, left: Vertex, right: Vertex) -> bool:
        neighbors = self.forward.get(left)
        return neighbors is not None and right in neighbors

    def insert(self, left: Vertex, right: Vertex) -> None:
        if self.has(left, right):
            raise DuplicateEdgeError(
                f"tuple ({left!r}, {right!r}) is already present in relation {self.name}"
            )
        self.forward.setdefault(left, set()).add(right)
        self.backward.setdefault(right, set()).add(left)
        self.num_edges += 1

    def delete(self, left: Vertex, right: Vertex) -> None:
        if not self.has(left, right):
            raise MissingEdgeError(
                f"tuple ({left!r}, {right!r}) is not present in relation {self.name}"
            )
        self.forward[left].discard(right)
        self.backward[right].discard(left)
        self.num_edges -= 1

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        for left, rights in self.forward.items():
            for right in rights:
                yield (left, right)


class LayeredGraph:
    """A fully dynamic 4-layered graph.

    Vertices are identified by their label *within a layer*: the same label may
    appear in several layers and denotes distinct vertices (this is exactly how
    the Section 8 reduction uses the structure: every general vertex is copied
    into all four layers).
    """

    def __init__(self, updates: Iterable[LayeredEdgeUpdate] = ()) -> None:
        self._relations: Dict[str, _Relation] = {name: _Relation(name) for name in RELATION_NAMES}
        for update in updates:
            self.apply(update)

    # -- structure ---------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Total number of edges over all four relations (the paper's ``m``)."""
        return sum(relation.num_edges for relation in self._relations.values())

    def relation_size(self, relation: str) -> int:
        """Number of tuples currently in ``relation``."""
        return self._require(relation).num_edges

    def has_edge(self, relation: str, left: Vertex, right: Vertex) -> bool:
        """Whether ``(left, right)`` is currently a tuple of ``relation``."""
        return self._require(relation).has(left, right)

    def relation_edges(self, relation: str) -> Iterator[tuple[Vertex, Vertex]]:
        """Iterate over the tuples of ``relation`` as ``(left, right)`` pairs."""
        return self._require(relation).edges()

    def neighbors(self, relation: str, vertex: Vertex, side: str = "left") -> Set[Vertex]:
        """Neighbors of ``vertex`` through ``relation``.

        ``side="left"`` treats ``vertex`` as the left attribute and returns its
        right-layer neighbors; ``side="right"`` does the converse.  The
        returned set is live internal state and must not be mutated.
        """
        rel = self._require(relation)
        if side == "left":
            return rel.forward.get(vertex, _EMPTY_SET)
        if side == "right":
            return rel.backward.get(vertex, _EMPTY_SET)
        raise LayerError(f"side must be 'left' or 'right', got {side!r}")

    def degree(self, relation: str, vertex: Vertex, side: str = "left") -> int:
        """Degree of ``vertex`` in a single relation, from the given side."""
        return len(self.neighbors(relation, vertex, side))

    def layer_degree(self, layer: int, vertex: Vertex) -> int:
        """Total degree of a vertex of ``layer`` over both incident relations."""
        pairs = LAYER_RELATIONS.get(layer)
        if pairs is None:
            raise LayerError(f"layer must be 1..4, got {layer!r}")
        return sum(self.degree(relation, vertex, side) for relation, side in pairs)

    def classification_degree(self, layer: int, vertex: Vertex) -> int:
        """The degree the paper uses to classify a vertex of ``layer``.

        ``L1``/``L4`` vertices are classified by their degree in ``A``/``C``
        only; ``L2``/``L3`` vertices by their combined degree in the two
        relations other than ``D`` that touch them (Sections 3.1 and 4).
        """
        pairs = CLASSIFICATION_RELATIONS.get(layer)
        if pairs is None:
            raise LayerError(f"layer must be 1..4, got {layer!r}")
        return sum(self.degree(relation, vertex, side) for relation, side in pairs)

    def layer_vertices(self, layer: int) -> Set[Vertex]:
        """All vertices of ``layer`` that currently have at least one edge."""
        pairs = LAYER_RELATIONS.get(layer)
        if pairs is None:
            raise LayerError(f"layer must be 1..4, got {layer!r}")
        result: Set[Vertex] = set()
        for relation, side in pairs:
            rel = self._require(relation)
            adjacency = rel.forward if side == "left" else rel.backward
            for vertex, neighbors in adjacency.items():
                if neighbors:
                    result.add(vertex)
        return result

    # -- updates -----------------------------------------------------------
    def insert(self, relation: str, left: Vertex, right: Vertex) -> None:
        """Insert tuple ``(left, right)`` into ``relation``."""
        self._require(relation).insert(left, right)

    def delete(self, relation: str, left: Vertex, right: Vertex) -> None:
        """Delete tuple ``(left, right)`` from ``relation``."""
        self._require(relation).delete(left, right)

    def apply(self, update: LayeredEdgeUpdate) -> None:
        """Apply a single layered update."""
        if update.kind is UpdateKind.INSERT:
            self.insert(update.relation, update.left, update.right)
        else:
            self.delete(update.relation, update.left, update.right)

    def apply_all(self, updates: Iterable[LayeredEdgeUpdate]) -> None:
        for update in updates:
            self.apply(update)

    # -- static counting (ground truth for tests) ---------------------------
    def count_wedges(self, first: str, second: str, left: Vertex, right: Vertex) -> int:
        """Number of layered 2-paths ``left - x - right`` through relations
        ``first`` then ``second`` (e.g. ``A`` then ``B`` counts paths from
        ``L1`` to ``L3``)."""
        forward = self.neighbors(first, left, "left")
        backward = self.neighbors(second, right, "right")
        if len(forward) > len(backward):
            forward, backward = backward, forward
        return sum(1 for middle in forward if middle in backward)

    def count_three_paths(self, left: Vertex, right: Vertex, chain: tuple[str, str, str] = ("A", "B", "C")) -> int:
        """Number of layered 3-paths from ``left`` to ``right`` through the
        given relation chain (default ``A`` -> ``B`` -> ``C``), i.e. the entry
        ``(A · B · C)[left, right]``."""
        first, second, third = chain
        total = 0
        ends = self.neighbors(third, right, "right")
        for middle1 in self.neighbors(first, left, "left"):
            seconds = self.neighbors(second, middle1, "left")
            if len(seconds) > len(ends):
                total += sum(1 for middle2 in ends if middle2 in seconds)
            else:
                total += sum(1 for middle2 in seconds if middle2 in ends)
        return total

    def count_layered_four_cycles(self) -> int:
        """The exact number of layered 4-cycles (the cyclic join size).

        Computed by summing, over every tuple ``(v4, v1)`` of ``D``, the number
        of layered 3-paths from ``v1`` to ``v4`` through ``A``, ``B``, ``C``.
        """
        total = 0
        for v4, v1 in self.relation_edges("D"):
            total += self.count_three_paths(v1, v4)
        return total

    # -- matrix export -----------------------------------------------------
    def relation_matrix(
        self,
        relation: str,
        left_order: list[Vertex] | None = None,
        right_order: list[Vertex] | None = None,
        dtype=np.int64,
    ) -> tuple[np.ndarray, list[Vertex], list[Vertex]]:
        """Export ``relation`` as a dense 0/1 matrix.

        Returns ``(matrix, left_order, right_order)``; orders default to the
        sorted set of vertices with non-zero degree on each side, which keeps
        the matrices as small as the paper's dimension-trimming argument
        (Claim 3.4) requires.
        """
        rel = self._require(relation)
        if left_order is None:
            left_order = _sorted_vertices(rel.forward)
        if right_order is None:
            right_order = _sorted_vertices(rel.backward)
        left_index = {vertex: position for position, vertex in enumerate(left_order)}
        right_index = {vertex: position for position, vertex in enumerate(right_order)}
        matrix = np.zeros((len(left_order), len(right_order)), dtype=dtype)
        for left, right in rel.edges():
            row = left_index.get(left)
            column = right_index.get(right)
            if row is not None and column is not None:
                matrix[row, column] = 1
        return matrix, left_order, right_order

    def count_layered_four_cycles_matrix(self) -> int:
        """The layered 4-cycle count computed with dense matrix products.

        Used by tests as an independent cross-check of
        :meth:`count_layered_four_cycles`.
        """
        l1 = sorted(self.layer_vertices(1), key=repr)
        l2 = sorted(self.layer_vertices(2), key=repr)
        l3 = sorted(self.layer_vertices(3), key=repr)
        l4 = sorted(self.layer_vertices(4), key=repr)
        if not (l1 and l2 and l3 and l4):
            return 0
        a, _, _ = self.relation_matrix("A", l1, l2)
        b, _, _ = self.relation_matrix("B", l2, l3)
        c, _, _ = self.relation_matrix("C", l3, l4)
        d, _, _ = self.relation_matrix("D", l4, l1)
        paths = a @ b @ c
        return int(np.sum(paths * d.T))

    # -- misc ----------------------------------------------------------------
    def copy(self) -> "LayeredGraph":
        clone = LayeredGraph()
        for name, relation in self._relations.items():
            target = clone._relations[name]
            target.forward = {vertex: set(neighbors) for vertex, neighbors in relation.forward.items()}
            target.backward = {vertex: set(neighbors) for vertex, neighbors in relation.backward.items()}
            target.num_edges = relation.num_edges
        return clone

    def _require(self, relation: str) -> _Relation:
        rel = self._relations.get(relation)
        if rel is None:
            raise LayerError(f"unknown relation {relation!r}; expected one of {RELATION_NAMES}")
        return rel

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}={relation.num_edges}" for name, relation in self._relations.items())
        return f"LayeredGraph({sizes})"


def _sorted_vertices(adjacency: Dict[Vertex, Set[Vertex]]) -> list[Vertex]:
    """Vertices with at least one incident edge, deterministically ordered."""
    vertices = [vertex for vertex, neighbors in adjacency.items() if neighbors]
    try:
        return sorted(vertices)  # type: ignore[type-var]
    except TypeError:
        return sorted(vertices, key=repr)


#: Shared immutable empty set.
_EMPTY_SET: frozenset = frozenset()
