"""Static (from-scratch) counting utilities.

These are the ground-truth oracles the dynamic algorithms are validated
against.  Two independent methods are provided for 4-cycle counting — the
closed-walk trace formula and wedge enumeration — so the test suite can check
them against each other as well as against the dynamic counters.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Tuple

import numpy as np

from repro.graph.dynamic_graph import DynamicGraph
from repro.kernels import exact_integer_matmul

Vertex = Hashable


def _export_adjacency(graph: DynamicGraph) -> np.ndarray:
    """Adjacency matrix in whatever order is cheapest to produce.

    Order-insensitive callers (trace/walk formulas) take the interned export
    when available — one vectorized scatter, no vertex sort — and fall back to
    the label-keyed export otherwise.
    """
    if graph.is_interned:
        matrix, _ = graph.interned_adjacency_matrix(dtype=np.int64)
        return matrix
    matrix, _ = graph.adjacency_matrix(dtype=np.int64)
    return matrix


def four_cycles_from_csr_square(square, degrees: np.ndarray, num_edges: int) -> int:
    """Exact 4-cycle count from the sparse self-product of the adjacency.

    The trace formula of :func:`four_cycles_from_adjacency` evaluated without
    a dense matrix: for symmetric ``A``, ``tr(A^4)`` is the squared Frobenius
    norm of ``A^2``, which is the sum of the squared stored entries of the
    SpGEMM product ``square`` (a :class:`~repro.matmul.engine.CsrMatrix`);
    ``degrees`` is the per-vertex degree vector.
    """
    if num_edges == 0:
        return 0
    walk_count = int((square.data * square.data).sum())
    degenerate = 2 * num_edges + 2 * int(np.sum(degrees * (degrees - 1)))
    remaining = walk_count - degenerate
    if remaining % 8 != 0:
        raise AssertionError(
            f"trace formula produced a non-multiple of 8 ({remaining}); "
            "the CSR adjacency export is inconsistent"
        )
    return remaining // 8


def closed_four_walks_from_adjacency(
    matrix: np.ndarray, square: np.ndarray | None = None
) -> int:
    """``tr(A^4)`` for a symmetric 0/1 adjacency matrix.

    Computed as the squared Frobenius norm of ``A^2`` — one dense product
    instead of the two a literal fourth power costs.  ``square`` short-cuts
    callers that already hold ``A^2``.
    """
    if square is None:
        square = exact_integer_matmul(matrix, matrix)
    return int((square * square).sum())


def four_cycles_from_adjacency(
    matrix: np.ndarray, num_edges: int, square: np.ndarray | None = None
) -> int:
    """Exact 4-cycle count from a symmetric 0/1 adjacency matrix.

    The closed-walk trace formula shared by every vectorized recount path
    (brute-force and counter batch hooks, static validation):
    ``C4 = (tr(A^4) - 2 m - 2 * sum_v deg(v) (deg(v) - 1)) / 8``.
    """
    walk_count = closed_four_walks_from_adjacency(matrix, square)
    degrees = matrix.sum(axis=1)
    degenerate = 2 * num_edges + 2 * int(np.sum(degrees * (degrees - 1)))
    remaining = walk_count - degenerate
    if remaining % 8 != 0:
        raise AssertionError(
            f"trace formula produced a non-multiple of 8 ({remaining}); "
            "the adjacency matrix export is inconsistent"
        )
    return remaining // 8


def count_four_cycles_trace(graph: DynamicGraph) -> int:
    """Exact number of 4-cycles via the closed-walk trace formula.

    ``tr(A^4)`` counts closed 4-walks.  Removing the degenerate walks (back and
    forth over one edge, and "cherries" re-using the center vertex) and
    dividing by the 8 automorphic traversals of a 4-cycle gives

    ``C4 = (tr(A^4) - 2 m - 2 * sum_v deg(v) (deg(v) - 1)) / 8``.
    """
    if graph.num_edges == 0:
        return 0
    return four_cycles_from_adjacency(_export_adjacency(graph), graph.num_edges)


def count_closed_four_walks(graph: DynamicGraph) -> int:
    """The number of closed 4-walks, ``tr(A^4)``.

    Used to validate the Section 8 reduction: the layered 4-cycle count of the
    reduced 4-layered graph equals this quantity.
    """
    if graph.num_edges == 0:
        return 0
    return closed_four_walks_from_adjacency(_export_adjacency(graph))


def count_four_cycles_wedges(graph: DynamicGraph) -> int:
    """Exact number of 4-cycles by counting wedges between vertex pairs.

    Every 4-cycle is determined by its two diagonal (opposite) vertex pairs.
    For each unordered pair ``{u, v}`` with ``c`` common neighbors there are
    ``c * (c - 1) / 2`` 4-cycles using ``{u, v}`` as one diagonal, and each
    4-cycle is counted once per diagonal, i.e. twice in total.
    """
    wedge_counts: Dict[Tuple[Vertex, Vertex], int] = {}
    for center in graph.vertices():
        neighbors = sorted(graph.neighbors(center), key=repr)
        for i, first in enumerate(neighbors):
            for second in neighbors[i + 1:]:
                key = (first, second)
                wedge_counts[key] = wedge_counts.get(key, 0) + 1
    doubled = sum(count * (count - 1) // 2 for count in wedge_counts.values())
    if doubled % 2 != 0:
        raise AssertionError(
            f"wedge enumeration produced an odd doubled count ({doubled}); "
            "4-cycles must be counted exactly twice"
        )
    return doubled // 2


def count_four_cycles_through_edge(graph: DynamicGraph, u: Vertex, v: Vertex) -> int:
    """Number of 4-cycles that use the edge ``{u, v}``.

    Equal to the number of simple 3-paths between ``u`` and ``v`` avoiding the
    edge itself; the edge does not need to be present in the graph (the paper
    queries before inserting / after deleting).
    """
    return count_three_paths(graph, u, v)


def count_three_paths(graph: DynamicGraph, u: Vertex, v: Vertex) -> int:
    """Number of simple 3-paths ``u - x - y - v`` (``u, x, y, v`` all distinct).

    Brute-force enumeration over ``N(u)`` and ``N(v)``; used as ground truth in
    tests and by the brute-force counter.
    """
    total = 0
    for x in graph.neighbors(u):
        if x == v:
            continue
        for y in graph.neighbors(v):
            if y == u or y == x:
                continue
            if graph.has_edge(x, y):
                total += 1
    return total


def count_wedges_between(graph: DynamicGraph, u: Vertex, v: Vertex) -> int:
    """Number of 2-paths (wedges) ``u - x - v``, i.e. common neighbors."""
    return len(graph.common_neighbors(u, v))


def total_wedges(graph: DynamicGraph) -> int:
    """Total number of wedges in the graph: ``sum_v C(deg(v), 2)``."""
    return sum(
        graph.degree(vertex) * (graph.degree(vertex) - 1) // 2 for vertex in graph.vertices()
    )


def count_four_cycles_edge_list(edges: Iterable[tuple[Vertex, Vertex]]) -> int:
    """Convenience wrapper: count 4-cycles of a static edge list."""
    graph = DynamicGraph(edges=edges)
    return count_four_cycles_trace(graph)
