"""Vertex interning: stable label <-> contiguous integer-id mapping.

Every hot path in the reproduction ultimately iterates adjacency structures
keyed by *vertex labels* — arbitrary hashable Python objects.  That keeps the
public API ergonomic (callers use whatever ids their data has), but it means
the inner loops pay label hashing and dict probing instead of arithmetic.

:class:`VertexInterner` is the bridge between the two worlds.  It assigns each
distinct label a small contiguous integer id (0, 1, 2, ...) the first time the
label is seen and never reuses or reorders ids afterwards.  Structures indexed
by interned ids can therefore be plain Python lists or numpy arrays, and a
whole neighborhood (or a whole matrix) can cross the label/id boundary once
per *bulk operation* instead of once per element.

One interner instance is shared by a :class:`~repro.graph.dynamic_graph.DynamicGraph`
and every derived view attached to it (CSR caches, adjacency-matrix exports,
counter fast paths), so integer ids are directly comparable across all of
them.  Ids are stable across deletions: deleting a vertex's last edge does not
free its id — the id space only grows, matching the graph's own "vertices stay
registered" semantics.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional

Vertex = Hashable


class VertexInterner:
    """Bidirectional label <-> contiguous int-id mapping with stable ids."""

    __slots__ = ("_ids", "_labels")

    def __init__(self, labels: Iterable[Vertex] = ()) -> None:
        self._ids: Dict[Vertex, int] = {}
        self._labels: List[Vertex] = []
        for label in labels:
            self.intern(label)

    def intern(self, label: Vertex) -> int:
        """The id of ``label``, assigning the next free id on first sight."""
        vid = self._ids.get(label)
        if vid is None:
            vid = len(self._labels)
            self._ids[label] = vid
            self._labels.append(label)
        return vid

    def intern_many(self, labels: Iterable[Vertex]) -> List[int]:
        """Intern several labels at once, returning their ids in order."""
        return [self.intern(label) for label in labels]

    def id_of(self, label: Vertex) -> int:
        """The id of an already-interned label (raises ``KeyError`` if new)."""
        return self._ids[label]

    def get_id(self, label: Vertex) -> Optional[int]:
        """The id of ``label``, or ``None`` if it has never been interned."""
        return self._ids.get(label)

    def label_of(self, vid: int) -> Vertex:
        """The label owning id ``vid`` (raises ``IndexError`` for unknown ids)."""
        return self._labels[vid]

    @property
    def labels(self) -> List[Vertex]:
        """All interned labels in id order (live list; do not mutate)."""
        return self._labels

    def copy(self) -> "VertexInterner":
        clone = VertexInterner()
        clone._ids = dict(self._ids)
        clone._labels = list(self._labels)
        return clone

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Vertex) -> bool:
        return label in self._ids

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._labels)

    def __repr__(self) -> str:
        return f"VertexInterner(size={len(self._labels)})"
