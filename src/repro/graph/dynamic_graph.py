"""A simple undirected graph under fully dynamic edge updates.

:class:`DynamicGraph` is the substrate every general-graph counter in
:mod:`repro.core` builds on.  It stores adjacency sets, keeps the edge count in
sync, enforces the simple-graph invariants the paper assumes (Section 2.1:
no self-loops, no multi-edges), and exposes exactly the primitives the
algorithms need: neighborhood iteration, degree queries, membership tests, and
an adjacency-matrix export used by the brute-force reference counter and by
the matrix-multiplication engine.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, Iterator, Sequence, Set, Union

import numpy as np

from repro.exceptions import (
    DuplicateEdgeError,
    MissingEdgeError,
    SelfLoopError,
    UnknownVertexError,
)
from repro.graph.updates import (
    EdgeUpdate,
    UpdateBatch,
    UpdateKind,
    _canonical_first,
    normalize_batch,
)

Vertex = Hashable


class DynamicGraph:
    """A simple undirected graph supporting edge insertions and deletions.

    Vertices are created lazily: inserting an edge implicitly adds its
    endpoints, and :meth:`add_vertex` can pre-register isolated vertices (the
    paper's graphs have a fixed vertex set ``V`` with edges arriving over
    time).  Deleting the last edge of a vertex keeps the vertex registered so
    degree-0 vertices remain queryable.
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[tuple[Vertex, Vertex]] = (),
    ) -> None:
        self._adjacency: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges = 0
        for vertex in vertices:
            self.add_vertex(vertex)
        for u, v in edges:
            self.insert_edge(u, v)

    # -- basic structure ---------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of registered vertices (including isolated ones)."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Current number of edges, the paper's ``m``."""
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all registered vertices."""
        return iter(self._adjacency)

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        """Iterate over all edges, each reported once in canonical order."""
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                if _canonical_first(u, v):
                    yield (u, v)

    def add_vertex(self, vertex: Vertex) -> None:
        """Register ``vertex`` (a no-op if it already exists)."""
        if vertex not in self._adjacency:
            self._adjacency[vertex] = set()

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the undirected edge ``{u, v}`` is currently present."""
        neighbors = self._adjacency.get(u)
        return neighbors is not None and v in neighbors

    def degree(self, vertex: Vertex, strict: bool = False) -> int:
        """The degree of ``vertex``; 0 for unknown vertices unless ``strict``."""
        neighbors = self._adjacency.get(vertex)
        if neighbors is None:
            if strict:
                raise UnknownVertexError(f"vertex {vertex!r} is not in the graph")
            return 0
        return len(neighbors)

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """The neighbor set of ``vertex`` (empty set for unknown vertices).

        The returned set is the live internal set; callers must not mutate it.
        """
        return self._adjacency.get(vertex, _EMPTY_SET)

    def common_neighbors(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Vertices adjacent to both ``u`` and ``v`` (the wedges between them)."""
        first = self._adjacency.get(u, _EMPTY_SET)
        second = self._adjacency.get(v, _EMPTY_SET)
        if len(first) > len(second):
            first, second = second, first
        return {w for w in first if w in second}

    # -- updates -----------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert the undirected edge ``{u, v}``.

        Raises :class:`SelfLoopError` for ``u == v`` and
        :class:`DuplicateEdgeError` if the edge is already present.
        """
        if u == v:
            raise SelfLoopError(f"cannot insert self-loop at vertex {u!r}")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adjacency[u]:
            raise DuplicateEdgeError(f"edge ({u!r}, {v!r}) is already present")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete the undirected edge ``{u, v}``.

        Raises :class:`MissingEdgeError` if the edge is not present.
        """
        neighbors = self._adjacency.get(u)
        if neighbors is None or v not in neighbors:
            raise MissingEdgeError(f"edge ({u!r}, {v!r}) is not present")
        neighbors.remove(v)
        self._adjacency[v].remove(u)
        self._num_edges -= 1

    def apply(self, update: EdgeUpdate) -> None:
        """Apply a single :class:`EdgeUpdate` (insert or delete)."""
        if update.kind is UpdateKind.INSERT:
            self.insert_edge(update.u, update.v)
        else:
            self.delete_edge(update.u, update.v)

    def apply_all(self, updates: Iterable[EdgeUpdate]) -> None:
        """Apply every update in ``updates`` in order."""
        for update in updates:
            self.apply(update)

    # -- bulk updates --------------------------------------------------------
    def insert_edges(self, edges: Iterable[tuple[Vertex, Vertex]]) -> int:
        """Insert several edges at once, returning how many were inserted.

        Equivalent to calling :meth:`insert_edge` per edge but with vertex
        registration inlined, so repeated endpoints are not re-looked-up
        through :meth:`add_vertex` on every call.
        """
        adjacency = self._adjacency
        inserted = 0
        for u, v in edges:
            if u == v:
                raise SelfLoopError(f"cannot insert self-loop at vertex {u!r}")
            neighbors_u = adjacency.get(u)
            if neighbors_u is None:
                neighbors_u = set()
                adjacency[u] = neighbors_u
            neighbors_v = adjacency.get(v)
            if neighbors_v is None:
                neighbors_v = set()
                adjacency[v] = neighbors_v
            if v in neighbors_u:
                raise DuplicateEdgeError(f"edge ({u!r}, {v!r}) is already present")
            neighbors_u.add(v)
            neighbors_v.add(u)
            self._num_edges += 1
            inserted += 1
        return inserted

    def delete_edges(self, edges: Iterable[tuple[Vertex, Vertex]]) -> int:
        """Delete several edges at once, returning how many were deleted."""
        adjacency = self._adjacency
        deleted = 0
        for u, v in edges:
            neighbors = adjacency.get(u)
            if neighbors is None or v not in neighbors:
                raise MissingEdgeError(f"edge ({u!r}, {v!r}) is not present")
            neighbors.remove(v)
            adjacency[v].remove(u)
            self._num_edges -= 1
            deleted += 1
        return deleted

    def apply_batch(self, updates: Union[UpdateBatch, Iterable[EdgeUpdate]]) -> UpdateBatch:
        """Apply a window of updates as one normalized batch.

        Raw updates are normalized against the current edge set (cancelling
        insert/delete pairs and validating consistency once per distinct edge);
        an already-normalized :class:`UpdateBatch` is applied as-is.  Net
        deletions are applied before net insertions.  Every vertex the raw
        window touches is registered — even when its updates cancelled — so
        the resulting graph (vertices included) matches a per-update replay.
        Returns the batch that was applied.
        """
        if isinstance(updates, UpdateBatch):
            batch = updates
        else:
            batch = normalize_batch(updates, self.has_edge)
        for vertex in batch.touched_vertices:
            self.add_vertex(vertex)
        self.delete_edges(update.endpoints for update in batch.deletions)
        self.insert_edges(update.endpoints for update in batch.insertions)
        return batch

    # -- derived views -----------------------------------------------------
    def copy(self) -> "DynamicGraph":
        """An independent deep copy of the graph."""
        clone = DynamicGraph()
        clone._adjacency = {vertex: set(neighbors) for vertex, neighbors in self._adjacency.items()}
        clone._num_edges = self._num_edges
        return clone

    def degree_histogram(self) -> Dict[int, int]:
        """Map from degree value to the number of vertices with that degree."""
        return dict(Counter(len(neighbors) for neighbors in self._adjacency.values()))

    def max_degree(self) -> int:
        """The maximum degree over all vertices (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(neighbors) for neighbors in self._adjacency.values())

    def h_index(self) -> int:
        """The graph h-index: the largest ``h`` with ``h`` vertices of degree
        at least ``h`` (the parameter of Eppstein–Spiro dynamic counting,
        mentioned in the paper's related work).

        Computed from the degree histogram with an early exit: only the
        distinct degree values down to the answer are visited, instead of
        materializing and sorting the full per-vertex degree list.
        """
        histogram = Counter(len(neighbors) for neighbors in self._adjacency.values())
        at_least = 0
        h = 0
        for degree in sorted(histogram, reverse=True):
            at_least += histogram[degree]
            h = max(h, min(degree, at_least))
            if at_least >= degree:
                break
        return h

    def vertex_order(self) -> list[Vertex]:
        """A deterministic ordering of the vertices (sorted when comparable)."""
        vertices = list(self._adjacency)
        try:
            return sorted(vertices)  # type: ignore[type-var]
        except TypeError:
            return sorted(vertices, key=repr)

    def adjacency_matrix(
        self, order: Sequence[Vertex] | None = None, dtype=np.int64
    ) -> tuple[np.ndarray, list[Vertex]]:
        """The dense adjacency matrix and the vertex order it uses.

        ``order`` fixes the row/column ordering; by default the deterministic
        :meth:`vertex_order` is used so repeated exports are comparable.
        """
        ordered = list(order) if order is not None else self.vertex_order()
        index = {vertex: position for position, vertex in enumerate(ordered)}
        matrix = np.zeros((len(ordered), len(ordered)), dtype=dtype)
        for u, v in self.edges():
            if u in index and v in index:
                matrix[index[u], index[v]] = 1
                matrix[index[v], index[u]] = 1
        return matrix, ordered

    def to_edge_set(self) -> set[tuple[Vertex, Vertex]]:
        """The current edge set as canonical pairs."""
        return set(self.edges())

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return f"DynamicGraph(n={self.num_vertices}, m={self.num_edges})"


#: Shared immutable empty set returned for unknown vertices.
_EMPTY_SET: frozenset = frozenset()
