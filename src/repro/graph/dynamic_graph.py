"""A simple undirected graph under fully dynamic edge updates.

:class:`DynamicGraph` is the substrate every general-graph counter in
:mod:`repro.core` builds on.  It stores adjacency sets, keeps the edge count in
sync, enforces the simple-graph invariants the paper assumes (Section 2.1:
no self-loops, no multi-edges), and exposes exactly the primitives the
algorithms need: neighborhood iteration, degree queries, membership tests, and
an adjacency-matrix export used by the brute-force reference counter and by
the matrix-multiplication engine.

Performance architecture.  By default the graph additionally maintains an
**interned** representation: a :class:`~repro.graph.interning.VertexInterner`
maps every label to a contiguous integer id, and adjacency is mirrored as
int-id sets indexed by id.  A CSR view (``indptr``/``indices`` numpy arrays)
of that representation is cached and rebuilt lazily whenever the graph has
mutated since the last export.  The derived views — ``common_neighbors``,
``degree_histogram``, ``adjacency_matrix``, ``edges`` — use the interned
representation when present, which turns label-keyed Python loops into integer
set operations and vectorized numpy scatters; counters build their batched
numpy kernels on the same view (see :meth:`interned_adjacency_matrix`).
Constructing with ``interned=False`` disables the mirror entirely and every
consumer falls back to the original label-keyed scalar code, which is the
reference the property tests compare the fast paths against.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Union

import numpy as np

from repro.exceptions import (
    DuplicateEdgeError,
    MissingEdgeError,
    SelfLoopError,
    UnknownVertexError,
)
from repro.exceptions import ConfigurationError
from repro.graph.interning import VertexInterner
from repro.graph.updates import (
    EdgeUpdate,
    UpdateBatch,
    UpdateKind,
    _canonical_first,
    normalize_batch,
)
from repro.kernels import CsrMatrix, expand_csr_rows

Vertex = Hashable


class DynamicGraph:
    """A simple undirected graph supporting edge insertions and deletions.

    Vertices are created lazily: inserting an edge implicitly adds its
    endpoints, and :meth:`add_vertex` can pre-register isolated vertices (the
    paper's graphs have a fixed vertex set ``V`` with edges arriving over
    time).  Deleting the last edge of a vertex keeps the vertex registered so
    degree-0 vertices remain queryable.

    ``interned=True`` (the default) mirrors adjacency into integer-id sets
    behind a shared :class:`~repro.graph.interning.VertexInterner`, enabling
    the vectorized derived views documented in the module docstring.
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[tuple[Vertex, Vertex]] = (),
        interned: bool = True,
    ) -> None:
        self._adjacency: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges = 0
        self._interner: Optional[VertexInterner] = VertexInterner() if interned else None
        #: Int-id adjacency, indexed by interned id (None when not interned).
        self._int_adjacency: List[Set[int]] = []
        #: Bumped on every structural mutation; derived-view caches key on it.
        self._version = 0
        self._csr_cache: Optional[tuple[int, np.ndarray, np.ndarray]] = None
        for vertex in vertices:
            self.add_vertex(vertex)
        for u, v in edges:
            self.insert_edge(u, v)

    # -- basic structure ---------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of registered vertices (including isolated ones)."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Current number of edges, the paper's ``m``."""
        return self._num_edges

    @property
    def is_interned(self) -> bool:
        """Whether the integer-interned fast-path representation is active."""
        return self._interner is not None

    @property
    def interner(self) -> Optional[VertexInterner]:
        """The shared vertex interner (``None`` when ``interned=False``)."""
        return self._interner

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever the graph structure changes."""
        return self._version

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all registered vertices."""
        return iter(self._adjacency)

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        """Iterate over all edges, each reported once in canonical order.

        On the interned path each edge is enumerated once by comparing integer
        ids (``u_id < v_id``) instead of calling the label comparison helper
        per *oriented* pair, and the emitted pair is canonicalized with one
        inline label comparison; non-comparable label mixes fall back to the
        repr-keyed scalar path wholesale.
        """
        if self._interner is not None:
            labels = self._interner.labels
            pairs: list[tuple[Vertex, Vertex]] = []
            try:
                for uid, neighbor_ids in enumerate(self._int_adjacency):
                    u = labels[uid]
                    for vid in neighbor_ids:
                        if uid < vid:
                            v = labels[vid]
                            pairs.append((u, v) if u <= v else (v, u))  # type: ignore[operator]
            except TypeError:
                return iter(self._edges_scalar())
            return iter(pairs)
        return self._edges_scalar()

    def _edges_scalar(self) -> Iterator[tuple[Vertex, Vertex]]:
        """Label-keyed edge enumeration (repr fallback for exotic labels)."""
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                if _canonical_first(u, v):
                    yield (u, v)

    def add_vertex(self, vertex: Vertex) -> None:
        """Register ``vertex`` (a no-op if it already exists)."""
        if vertex not in self._adjacency:
            self._adjacency[vertex] = set()
            if self._interner is not None:
                self._interner.intern(vertex)
                self._int_adjacency.append(set())
            self._version += 1

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the undirected edge ``{u, v}`` is currently present."""
        neighbors = self._adjacency.get(u)
        return neighbors is not None and v in neighbors

    def degree(self, vertex: Vertex, strict: bool = False) -> int:
        """The degree of ``vertex``; 0 for unknown vertices unless ``strict``."""
        neighbors = self._adjacency.get(vertex)
        if neighbors is None:
            if strict:
                raise UnknownVertexError(f"vertex {vertex!r} is not in the graph")
            return 0
        return len(neighbors)

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """The neighbor set of ``vertex`` (empty set for unknown vertices).

        The returned set is the live internal set; callers must not mutate it.
        """
        return self._adjacency.get(vertex, _EMPTY_SET)

    def neighbor_ids(self, vertex: Vertex) -> Set[int]:
        """The interned neighbor-id set of ``vertex`` (fast-path only).

        Empty set for unknown vertices; raises :class:`ConfigurationError`
        when the graph is not interned.  Live internal set; do not mutate.
        """
        if self._interner is None:
            raise ConfigurationError("neighbor_ids requires an interned graph")
        vid = self._interner.get_id(vertex)
        if vid is None:
            return _EMPTY_INT_SET
        return self._int_adjacency[vid]

    def common_neighbors(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Vertices adjacent to both ``u`` and ``v`` (the wedges between them).

        On the interned path the intersection runs over integer-id sets
        (cheap hashing) and only the result crosses back to labels.
        """
        if self._interner is not None:
            uid = self._interner.get_id(u)
            vid = self._interner.get_id(v)
            if uid is None or vid is None:
                return set()
            labels = self._interner.labels
            return {labels[w] for w in self._int_adjacency[uid] & self._int_adjacency[vid]}
        first = self._adjacency.get(u, _EMPTY_SET)
        second = self._adjacency.get(v, _EMPTY_SET)
        if len(first) > len(second):
            first, second = second, first
        return {w for w in first if w in second}

    # -- updates -----------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert the undirected edge ``{u, v}``.

        Raises :class:`SelfLoopError` for ``u == v`` and
        :class:`DuplicateEdgeError` if the edge is already present.
        """
        if u == v:
            raise SelfLoopError(f"cannot insert self-loop at vertex {u!r}")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adjacency[u]:
            raise DuplicateEdgeError(f"edge ({u!r}, {v!r}) is already present")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        if self._interner is not None:
            uid = self._interner.id_of(u)
            vid = self._interner.id_of(v)
            self._int_adjacency[uid].add(vid)
            self._int_adjacency[vid].add(uid)
        self._num_edges += 1
        self._version += 1

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete the undirected edge ``{u, v}``.

        Raises :class:`MissingEdgeError` if the edge is not present.
        """
        neighbors = self._adjacency.get(u)
        if neighbors is None or v not in neighbors:
            raise MissingEdgeError(f"edge ({u!r}, {v!r}) is not present")
        neighbors.remove(v)
        self._adjacency[v].remove(u)
        if self._interner is not None:
            uid = self._interner.id_of(u)
            vid = self._interner.id_of(v)
            self._int_adjacency[uid].discard(vid)
            self._int_adjacency[vid].discard(uid)
        self._num_edges -= 1
        self._version += 1

    def apply(self, update: EdgeUpdate) -> None:
        """Apply a single :class:`EdgeUpdate` (insert or delete)."""
        if update.kind is UpdateKind.INSERT:
            self.insert_edge(update.u, update.v)
        else:
            self.delete_edge(update.u, update.v)

    def apply_all(self, updates: Iterable[EdgeUpdate]) -> None:
        """Apply every update in ``updates`` in order."""
        for update in updates:
            self.apply(update)

    # -- bulk updates --------------------------------------------------------
    def insert_edges(self, edges: Iterable[tuple[Vertex, Vertex]]) -> int:
        """Insert several edges at once, returning how many were inserted.

        Equivalent to calling :meth:`insert_edge` per edge but with vertex
        registration inlined, so repeated endpoints are not re-looked-up
        through :meth:`add_vertex` on every call.
        """
        adjacency = self._adjacency
        interner = self._interner
        int_adjacency = self._int_adjacency
        inserted = 0
        try:
            for u, v in edges:
                if u == v:
                    raise SelfLoopError(f"cannot insert self-loop at vertex {u!r}")
                neighbors_u = adjacency.get(u)
                if neighbors_u is None:
                    neighbors_u = set()
                    adjacency[u] = neighbors_u
                    if interner is not None:
                        interner.intern(u)
                        int_adjacency.append(set())
                neighbors_v = adjacency.get(v)
                if neighbors_v is None:
                    neighbors_v = set()
                    adjacency[v] = neighbors_v
                    if interner is not None:
                        interner.intern(v)
                        int_adjacency.append(set())
                if v in neighbors_u:
                    raise DuplicateEdgeError(f"edge ({u!r}, {v!r}) is already present")
                neighbors_u.add(v)
                neighbors_v.add(u)
                if interner is not None:
                    uid = interner.id_of(u)
                    vid = interner.id_of(v)
                    int_adjacency[uid].add(vid)
                    int_adjacency[vid].add(uid)
                self._num_edges += 1
                inserted += 1
        finally:
            # In the finally so a mid-loop validation error (with some edges
            # already applied) still invalidates the derived-view caches.
            self._version += 1
        return inserted

    def delete_edges(self, edges: Iterable[tuple[Vertex, Vertex]]) -> int:
        """Delete several edges at once, returning how many were deleted."""
        adjacency = self._adjacency
        interner = self._interner
        int_adjacency = self._int_adjacency
        deleted = 0
        try:
            for u, v in edges:
                neighbors = adjacency.get(u)
                if neighbors is None or v not in neighbors:
                    raise MissingEdgeError(f"edge ({u!r}, {v!r}) is not present")
                neighbors.remove(v)
                adjacency[v].remove(u)
                if interner is not None:
                    uid = interner.id_of(u)
                    vid = interner.id_of(v)
                    int_adjacency[uid].discard(vid)
                    int_adjacency[vid].discard(uid)
                self._num_edges -= 1
                deleted += 1
        finally:
            # See insert_edges: caches must not survive a partial bulk delete.
            self._version += 1
        return deleted

    def apply_batch(self, updates: Union[UpdateBatch, Iterable[EdgeUpdate]]) -> UpdateBatch:
        """Apply a window of updates as one normalized batch.

        Raw updates are normalized against the current edge set (cancelling
        insert/delete pairs and validating consistency once per distinct edge);
        an already-normalized :class:`UpdateBatch` is applied as-is.  Net
        deletions are applied before net insertions.  Every vertex the raw
        window touches is registered — even when its updates cancelled — so
        the resulting graph (vertices included) matches a per-update replay.
        Returns the batch that was applied.
        """
        if isinstance(updates, UpdateBatch):
            batch = updates
        else:
            batch = normalize_batch(updates, self.has_edge)
        for vertex in batch.touched_vertices:
            self.add_vertex(vertex)
        self.delete_edges(update.endpoints for update in batch.deletions)
        self.insert_edges(update.endpoints for update in batch.insertions)
        return batch

    # -- derived views -----------------------------------------------------
    def copy(self) -> "DynamicGraph":
        """An independent deep copy of the graph."""
        clone = DynamicGraph(interned=self._interner is not None)
        clone._adjacency = {vertex: set(neighbors) for vertex, neighbors in self._adjacency.items()}
        clone._num_edges = self._num_edges
        if self._interner is not None:
            clone._interner = self._interner.copy()
            clone._int_adjacency = [set(neighbor_ids) for neighbor_ids in self._int_adjacency]
        return clone

    def csr_view(self) -> tuple[np.ndarray, np.ndarray]:
        """A CSR view ``(indptr, indices)`` of the interned adjacency.

        ``indices[indptr[i]:indptr[i + 1]]`` holds the neighbor ids of the
        vertex with interned id ``i``.  The view is cached and rebuilt lazily
        the first time it is requested after a mutation (so a whole batched
        kernel pays one O(n + m) rebuild, not one per export).  The returned
        arrays are shared with the cache; callers must not mutate them.
        """
        if self._interner is None:
            raise ConfigurationError("csr_view requires an interned graph")
        cache = self._csr_cache
        if cache is not None and cache[0] == self._version:
            return cache[1], cache[2]
        int_adjacency = self._int_adjacency
        n = len(int_adjacency)
        indptr = np.zeros(n + 1, dtype=np.int64)
        for vid, neighbor_ids in enumerate(int_adjacency):
            indptr[vid + 1] = len(neighbor_ids)
        np.cumsum(indptr, out=indptr)
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for vid, neighbor_ids in enumerate(int_adjacency):
            if neighbor_ids:
                indices[indptr[vid]:indptr[vid + 1]] = list(neighbor_ids)
        self._csr_cache = (self._version, indptr, indices)
        return indptr, indices

    def csr_matrix(self) -> CsrMatrix:
        """The adjacency as a positional :class:`~repro.matmul.engine.CsrMatrix`.

        Row/column position ``i`` belongs to the vertex with interned id ``i``
        (``interner.labels`` order), entries are all ones.  Shares the cached
        arrays of :meth:`csr_view`; callers must not mutate the result.  This
        is the operand the batched SpGEMM rebuild kernels consume.
        """
        indptr, indices = self.csr_view()
        return CsrMatrix.from_parts(
            indptr, indices, np.ones(len(indices), dtype=np.int64), len(indptr) - 1
        )

    def interned_update_delta(self, batch: UpdateBatch) -> CsrMatrix:
        """The signed adjacency delta of a normalized batch, in interned ids.

        Entry ``(u, v)`` is ``+1`` for a net insertion and ``-1`` for a net
        deletion, stored in both orientations (the adjacency is symmetric), so
        for the pre-batch adjacency ``A_old`` and the post-batch ``A_new``
        this is exactly ``ΔA = A_new - A_old``.  Must be called *after* the
        batch has been applied (so every endpoint is interned); the matrix is
        shaped to the current id universe.
        """
        if self._interner is None:
            raise ConfigurationError("interned_update_delta requires an interned graph")
        id_of = self._interner.id_of
        size = len(batch)
        rows = np.empty(2 * size, dtype=np.int64)
        cols = np.empty(2 * size, dtype=np.int64)
        data = np.empty(2 * size, dtype=np.int64)
        cursor = 0
        for updates, sign in ((batch.deletions, -1), (batch.insertions, +1)):
            for update in updates:
                uid = id_of(update.u)
                vid = id_of(update.v)
                rows[cursor], cols[cursor], data[cursor] = uid, vid, sign
                rows[cursor + 1], cols[cursor + 1], data[cursor + 1] = vid, uid, sign
                cursor += 2
        n = len(self._interner)
        return CsrMatrix.from_coo(rows, cols, data, n, n)

    def interned_adjacency_matrix(self, dtype=np.int64) -> tuple[np.ndarray, List[Vertex]]:
        """The dense adjacency matrix in interned-id order.

        Returns ``(matrix, labels)`` where row/column ``i`` belongs to
        ``labels[i]`` (the interner's id order).  This skips the deterministic
        sort of :meth:`vertex_order` entirely — batched kernels that only need
        *some* consistent order (wedge rebuilds, trace counts) should use this
        export; it is built by one vectorized scatter over the CSR view.
        """
        indptr, indices = self.csr_view()
        n = len(indptr) - 1
        matrix = np.zeros((n, n), dtype=dtype)
        if len(indices):
            matrix[expand_csr_rows(indptr), indices] = 1
        return matrix, self._interner.labels  # type: ignore[union-attr]

    def degree_histogram(self) -> Dict[int, int]:
        """Map from degree value to the number of vertices with that degree.

        When the CSR view is warm (the common case inside batched kernels,
        which have just exported it), the degrees fall out of ``indptr`` as
        one vectorized ``diff`` + ``bincount``; otherwise the plain counting
        loop is used — rebuilding the CSR just for a histogram would cost more
        than it saves.
        """
        cache = self._csr_cache
        if cache is not None and cache[0] == self._version:
            degrees = np.diff(cache[1])
            if not len(degrees):
                return {}
            counts = np.bincount(degrees)
            (nonzero,) = np.nonzero(counts)
            return {int(degree): int(counts[degree]) for degree in nonzero}
        return dict(Counter(len(neighbors) for neighbors in self._adjacency.values()))

    def max_degree(self) -> int:
        """The maximum degree over all vertices (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(neighbors) for neighbors in self._adjacency.values())

    def h_index(self) -> int:
        """The graph h-index: the largest ``h`` with ``h`` vertices of degree
        at least ``h`` (the parameter of Eppstein–Spiro dynamic counting,
        mentioned in the paper's related work).

        Computed from the degree histogram with an early exit: only the
        distinct degree values down to the answer are visited, instead of
        materializing and sorting the full per-vertex degree list.
        """
        histogram = self.degree_histogram()
        at_least = 0
        h = 0
        for degree in sorted(histogram, reverse=True):
            at_least += histogram[degree]
            h = max(h, min(degree, at_least))
            if at_least >= degree:
                break
        return h

    def vertex_order(self) -> list[Vertex]:
        """A deterministic ordering of the vertices (sorted when comparable)."""
        vertices = list(self._adjacency)
        try:
            return sorted(vertices)  # type: ignore[type-var]
        except TypeError:
            return sorted(vertices, key=repr)

    def adjacency_matrix(
        self, order: Sequence[Vertex] | None = None, dtype=np.int64
    ) -> tuple[np.ndarray, list[Vertex]]:
        """The dense adjacency matrix and the vertex order it uses.

        ``order`` fixes the row/column ordering; by default the deterministic
        :meth:`vertex_order` is used so repeated exports are comparable.  On
        the interned path the matrix is filled by one vectorized scatter from
        the CSR view (ids are translated to positions through one numpy take
        instead of two dict lookups per edge).
        """
        ordered = list(order) if order is not None else self.vertex_order()
        if self._interner is not None:
            return self._adjacency_matrix_interned(ordered, dtype), ordered
        index = {vertex: position for position, vertex in enumerate(ordered)}
        matrix = np.zeros((len(ordered), len(ordered)), dtype=dtype)
        for u, v in self.edges():
            if u in index and v in index:
                matrix[index[u], index[v]] = 1
                matrix[index[v], index[u]] = 1
        return matrix, ordered

    def _adjacency_matrix_interned(self, ordered: list[Vertex], dtype) -> np.ndarray:
        indptr, indices = self.csr_view()
        n_ids = len(indptr) - 1
        # position[vid] = row/column of that id in `ordered`, -1 when excluded.
        position = np.full(n_ids, -1, dtype=np.int64)
        interner = self._interner
        assert interner is not None
        for pos, vertex in enumerate(ordered):
            vid = interner.get_id(vertex)
            if vid is not None:
                position[vid] = pos
        matrix = np.zeros((len(ordered), len(ordered)), dtype=dtype)
        if len(indices):
            row_pos = position[expand_csr_rows(indptr)]
            col_pos = position[indices]
            keep = (row_pos >= 0) & (col_pos >= 0)
            matrix[row_pos[keep], col_pos[keep]] = 1
        return matrix

    def to_edge_set(self) -> set[tuple[Vertex, Vertex]]:
        """The current edge set as canonical pairs."""
        return set(self.edges())

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return f"DynamicGraph(n={self.num_vertices}, m={self.num_edges})"


#: Shared immutable empty sets returned for unknown vertices.
_EMPTY_SET: frozenset = frozenset()
_EMPTY_INT_SET: frozenset = frozenset()
