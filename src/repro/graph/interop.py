"""Optional interoperability with NetworkX.

NetworkX is not a runtime dependency of the package; these helpers import it
lazily so that users who already model their data as ``networkx.Graph`` objects
can feed it to the counters (and validate the counters against NetworkX-based
enumeration in the test suite).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from repro.exceptions import ConfigurationError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import UpdateStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx

Vertex = Hashable


def _require_networkx():
    try:
        import networkx
    except ImportError as error:  # pragma: no cover - exercised only without networkx
        raise ConfigurationError(
            "networkx is not installed; install the 'dev' extra to use the interop helpers"
        ) from error
    return networkx


def from_networkx(graph: "networkx.Graph") -> DynamicGraph:
    """Convert an undirected simple ``networkx.Graph`` into a :class:`DynamicGraph`.

    Self-loops are rejected (the paper's model forbids them); multigraphs and
    directed graphs are rejected as well.
    """
    networkx = _require_networkx()
    if graph.is_directed() or graph.is_multigraph():
        raise ConfigurationError("only undirected simple graphs are supported")
    result = DynamicGraph(vertices=graph.nodes())
    for u, v in graph.edges():
        if u == v:
            raise ConfigurationError(f"self-loop at {u!r} is not allowed in a simple graph")
        result.insert_edge(u, v)
    del networkx
    return result


def to_networkx(graph: DynamicGraph) -> "networkx.Graph":
    """Convert a :class:`DynamicGraph` into a ``networkx.Graph``."""
    networkx = _require_networkx()
    result = networkx.Graph()
    result.add_nodes_from(graph.vertices())
    result.add_edges_from(graph.edges())
    return result


def stream_from_networkx(graph: "networkx.Graph") -> UpdateStream:
    """An insertion-only stream that builds the given NetworkX graph."""
    _require_networkx()
    return UpdateStream.from_edges((u, v) for u, v in graph.edges() if u != v)


def count_four_cycles_networkx(graph: "networkx.Graph") -> int:
    """Count 4-cycles of a NetworkX graph by counting wedges between pairs.

    Independent of the package's own static counters; used as a third opinion
    in tests when NetworkX is available.
    """
    networkx = _require_networkx()
    del networkx
    total_pairs = 0
    nodes = list(graph.nodes())
    index = {node: position for position, node in enumerate(nodes)}
    for first in nodes:
        neighbors_first = set(graph.neighbors(first))
        for second in nodes:
            if index[second] <= index[first]:
                continue
            common = len(neighbors_first & set(graph.neighbors(second)))
            total_pairs += common * (common - 1) // 2
    return total_pairs // 2
