"""Edge-update primitives for fully dynamic graphs.

The fully dynamic model of the paper (Section 1) feeds the algorithm a stream
of edge insertions and deletions over a simple graph that starts empty.  This
module defines the small value types that represent those updates:

* :class:`UpdateKind` — insertion or deletion.
* :class:`EdgeUpdate` — an undirected edge update on a general graph.
* :class:`LayeredEdgeUpdate` — an update to one of the relations ``A``, ``B``,
  ``C``, ``D`` of a 4-layered graph (Section 2.1).
* :class:`UpdateStream` — an ordered, validated sequence of updates with a few
  convenience constructors used by the workload generators and the harness.
* :class:`UpdateBatch` / :func:`normalize_batch` — a canonicalized window of
  updates for the batched fast paths: insert/delete pairs on the same edge are
  cancelled, consistency is validated once against a live-edge snapshot, and
  the surviving net updates are ordered deletions-first so they can be applied
  in bulk.  Replaying a normalized batch produces the same graph — and hence
  the same 4-cycle count — as replaying the raw window, so counts are exact at
  batch boundaries.

All value types are immutable so they can be hashed, put in sets, and replayed
any number of times.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator, Optional, Sequence

from repro.exceptions import ConfigurationError, InvalidUpdateError, SelfLoopError

Vertex = Hashable

#: The four relations of a 4-layered graph, in the order used by the paper:
#: ``A(L1, L2)``, ``B(L2, L3)``, ``C(L3, L4)``, ``D(L4, L1)``.
RELATION_NAMES = ("A", "B", "C", "D")


class UpdateKind(enum.Enum):
    """Whether an update inserts or deletes an edge/tuple."""

    INSERT = "insert"
    DELETE = "delete"

    @property
    def sign(self) -> int:
        """``+1`` for insertions and ``-1`` for deletions.

        The paper maintains counts by adding the number of 4-cycles through a
        newly inserted edge and subtracting the number through a deleted edge;
        the sign is that multiplier.
        """
        return 1 if self is UpdateKind.INSERT else -1

    def inverse(self) -> "UpdateKind":
        """Return the opposite kind (insert <-> delete)."""
        return UpdateKind.DELETE if self is UpdateKind.INSERT else UpdateKind.INSERT


@dataclass(frozen=True)
class EdgeUpdate:
    """A single undirected edge update ``(u, v)`` on a general graph.

    The endpoints are stored in a canonical order (sorted by ``repr`` for
    heterogeneous vertex labels, by value when comparable) so that
    ``EdgeUpdate(1, 2, INSERT) == EdgeUpdate(2, 1, INSERT)``.
    """

    u: Vertex
    v: Vertex
    kind: UpdateKind = UpdateKind.INSERT

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise SelfLoopError(
                f"self-loop update on vertex {self.u!r} is not allowed in a simple graph"
            )
        first, second = _canonical_order(self.u, self.v)
        object.__setattr__(self, "u", first)
        object.__setattr__(self, "v", second)

    @property
    def endpoints(self) -> tuple[Vertex, Vertex]:
        """The canonically ordered endpoint pair."""
        return (self.u, self.v)

    @property
    def is_insert(self) -> bool:
        return self.kind is UpdateKind.INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind is UpdateKind.DELETE

    @property
    def sign(self) -> int:
        """``+1`` for an insertion, ``-1`` for a deletion."""
        return self.kind.sign

    def inverse(self) -> "EdgeUpdate":
        """Return the update that undoes this one."""
        return EdgeUpdate(self.u, self.v, self.kind.inverse())

    def touches(self, vertex: Vertex) -> bool:
        """Whether ``vertex`` is one of the endpoints."""
        return vertex == self.u or vertex == self.v

    def other_endpoint(self, vertex: Vertex) -> Vertex:
        """Given one endpoint, return the other one."""
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise InvalidUpdateError(f"{vertex!r} is not an endpoint of {self!r}")

    @classmethod
    def insert(cls, u: Vertex, v: Vertex) -> "EdgeUpdate":
        """Convenience constructor for an insertion."""
        return cls(u, v, UpdateKind.INSERT)

    @classmethod
    def delete(cls, u: Vertex, v: Vertex) -> "EdgeUpdate":
        """Convenience constructor for a deletion."""
        return cls(u, v, UpdateKind.DELETE)


@dataclass(frozen=True)
class LayeredEdgeUpdate:
    """An update to a single relation of a 4-layered graph.

    ``relation`` is one of ``"A"``, ``"B"``, ``"C"``, ``"D"``; ``left`` lives
    in the relation's left layer and ``right`` in its right layer (``A`` goes
    from ``L1`` to ``L2`` and so on, wrapping around with ``D`` from ``L4`` to
    ``L1``).  Unlike :class:`EdgeUpdate`, the pair is *ordered*: the layered
    graph distinguishes which endpoint lies in which layer.
    """

    relation: str
    left: Vertex
    right: Vertex
    kind: UpdateKind = UpdateKind.INSERT

    def __post_init__(self) -> None:
        if self.relation not in RELATION_NAMES:
            raise InvalidUpdateError(
                f"unknown relation {self.relation!r}; expected one of {RELATION_NAMES}"
            )

    @property
    def sign(self) -> int:
        return self.kind.sign

    @property
    def is_insert(self) -> bool:
        return self.kind is UpdateKind.INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind is UpdateKind.DELETE

    def inverse(self) -> "LayeredEdgeUpdate":
        """Return the update that undoes this one."""
        return LayeredEdgeUpdate(self.relation, self.left, self.right, self.kind.inverse())

    @classmethod
    def insert(cls, relation: str, left: Vertex, right: Vertex) -> "LayeredEdgeUpdate":
        return cls(relation, left, right, UpdateKind.INSERT)

    @classmethod
    def delete(cls, relation: str, left: Vertex, right: Vertex) -> "LayeredEdgeUpdate":
        return cls(relation, left, right, UpdateKind.DELETE)


@dataclass(frozen=True)
class UpdateBatch:
    """A canonicalized window of edge updates.

    Produced by :func:`normalize_batch`.  The batch stores only the *net*
    updates of the window — insert/delete pairs on the same edge cancel — split
    into deletions and insertions.  Against the live-edge snapshot the window
    was normalized for, every deletion targets a live edge and every insertion
    an absent one, so the batch can be applied deletions-first without any
    per-update validation, in any interleaving.

    ``raw_size`` is the length of the original window (the number of logical
    stream positions the batch consumes) and ``cancelled`` how many of those
    raw updates annihilated each other.  ``touched_vertices`` covers **every**
    vertex named by the raw window — including endpoints of cancelled pairs —
    so consumers can reproduce the vertex registration a per-update replay
    would have performed.
    """

    deletions: tuple[EdgeUpdate, ...]
    insertions: tuple[EdgeUpdate, ...]
    raw_size: int
    cancelled: int = 0
    touched_vertices: frozenset = field(default_factory=frozenset)

    def __len__(self) -> int:
        """Number of surviving net updates."""
        return len(self.deletions) + len(self.insertions)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        """Iterate the net updates in canonical order (deletions first)."""
        yield from self.deletions
        yield from self.insertions

    def __bool__(self) -> bool:
        return bool(self.deletions or self.insertions)

    @property
    def is_empty(self) -> bool:
        """Whether every raw update was cancelled (the batch is a no-op)."""
        return not (self.deletions or self.insertions)

    @property
    def num_insertions(self) -> int:
        return len(self.insertions)

    @property
    def num_deletions(self) -> int:
        return len(self.deletions)

    def net_edge_delta(self) -> int:
        """The change in the number of live edges after applying the batch."""
        return len(self.insertions) - len(self.deletions)


def simulate_window_presence(
    updates: Iterable,
    key_of: Callable,
    is_key_live: Callable,
    is_insert_of: Callable,
    what: str,
) -> tuple[dict, dict, list, int]:
    """Shared first pass of batch normalization (edges *and* tuples).

    Walks a raw window once, simulating per-key presence: each distinct key is
    probed against the live snapshot exactly once (via ``is_key_live``), each
    update is validated against the simulated state, and toggles are tracked.
    Returns ``(initially, present, first_touch_order, raw_size)``; the caller
    derives net deletions (initially live, finally absent) and net insertions
    (initially absent, finally live) from the first two maps.

    Raises :class:`InvalidUpdateError` on an insertion of a present key or a
    deletion of an absent one, accounting for earlier updates in the window;
    ``what`` names the key kind in the error message.
    """
    initially: dict = {}
    present: dict = {}
    order: list = []
    raw_size = 0
    for position, update in enumerate(updates):
        raw_size += 1
        key = key_of(update)
        live = present.get(key)
        if live is None:
            live = bool(is_key_live(key))
            initially[key] = live
            order.append(key)
        if is_insert_of(update):
            if live:
                raise InvalidUpdateError(
                    f"batch update #{position} inserts {what} {key} which is already present"
                )
            present[key] = True
        else:
            if not live:
                raise InvalidUpdateError(
                    f"batch update #{position} deletes {what} {key} which is not present"
                )
            present[key] = False
    return initially, present, order, raw_size


def normalize_batch(
    updates: Iterable[EdgeUpdate],
    is_edge_live: Optional[Callable[[Vertex, Vertex], bool]] = None,
) -> UpdateBatch:
    """Canonicalize a window of updates against a live-edge snapshot.

    ``is_edge_live`` answers membership queries against the graph state the
    window will be applied to (e.g. ``DynamicGraph.has_edge``); ``None`` means
    an empty graph.  Each distinct edge is probed at most once — validation is
    amortized across the window instead of paid per update.

    Raises :class:`InvalidUpdateError` if the window is inconsistent (an
    insertion of a present edge or a deletion of an absent one, accounting for
    earlier updates in the same window).
    """

    def key_of(update) -> tuple[Vertex, Vertex]:
        if not isinstance(update, EdgeUpdate):
            raise InvalidUpdateError(
                f"batch elements must be EdgeUpdate, got {type(update).__name__}"
            )
        return update.endpoints

    initially, present, order, raw_size = simulate_window_presence(
        updates,
        key_of,
        (lambda key: is_edge_live(key[0], key[1])) if is_edge_live is not None else lambda key: False,
        lambda update: update.is_insert,
        "edge",
    )
    deletions: list[EdgeUpdate] = []
    insertions: list[EdgeUpdate] = []
    touched: set[Vertex] = set()
    for key in order:
        touched.update(key)
        before, after = initially[key], present[key]
        if before == after:
            continue
        if after:
            insertions.append(EdgeUpdate(key[0], key[1], UpdateKind.INSERT))
        else:
            deletions.append(EdgeUpdate(key[0], key[1], UpdateKind.DELETE))
    net = len(deletions) + len(insertions)
    return UpdateBatch(
        deletions=tuple(deletions),
        insertions=tuple(insertions),
        raw_size=raw_size,
        cancelled=raw_size - net,
        touched_vertices=frozenset(touched),
    )


class UpdateStream(Sequence[EdgeUpdate]):
    """An ordered sequence of :class:`EdgeUpdate` objects.

    The stream is the unit the workload generators produce and the experiment
    harness replays.  Besides sequence behaviour it offers:

    * :meth:`validate` — check the stream is *consistent*: no duplicate
      insertions and no deletions of absent edges when replayed from an empty
      graph (or from ``initial_edges``).
    * :meth:`final_edges` — the edge set after replaying the whole stream.
    * :meth:`insertions_only` / :meth:`prefix` — simple slicing helpers.
    """

    def __init__(self, updates: Iterable[EdgeUpdate] = ()) -> None:
        self._updates: list[EdgeUpdate] = list(updates)
        for update in self._updates:
            if not isinstance(update, EdgeUpdate):
                raise InvalidUpdateError(
                    f"UpdateStream elements must be EdgeUpdate, got {type(update).__name__}"
                )

    # -- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self._updates)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return UpdateStream(self._updates[index])
        return self._updates[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, UpdateStream):
            return self._updates == other._updates
        return NotImplemented

    def __repr__(self) -> str:
        inserts = sum(1 for update in self._updates if update.is_insert)
        deletes = len(self._updates) - inserts
        return f"UpdateStream(total={len(self._updates)}, inserts={inserts}, deletes={deletes})"

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Vertex, Vertex]]) -> "UpdateStream":
        """Build an insertion-only stream from an iterable of edges."""
        return cls(EdgeUpdate.insert(u, v) for u, v in edges)

    @classmethod
    def build_then_teardown(cls, edges: Iterable[tuple[Vertex, Vertex]]) -> "UpdateStream":
        """Insert every edge, then delete them all in reverse order.

        A handy stress pattern: the final graph is empty, so any counter must
        report zero 4-cycles at the end.
        """
        edge_list = list(edges)
        inserts = [EdgeUpdate.insert(u, v) for u, v in edge_list]
        deletes = [EdgeUpdate.delete(u, v) for u, v in reversed(edge_list)]
        return cls(inserts + deletes)

    # -- derived views -----------------------------------------------------
    def append(self, update: EdgeUpdate) -> None:
        """Append a single update to the stream."""
        if not isinstance(update, EdgeUpdate):
            raise InvalidUpdateError(
                f"UpdateStream elements must be EdgeUpdate, got {type(update).__name__}"
            )
        self._updates.append(update)

    def extend(self, updates: Iterable[EdgeUpdate]) -> None:
        """Append several updates to the stream."""
        for update in updates:
            self.append(update)

    def prefix(self, length: int) -> "UpdateStream":
        """The first ``length`` updates as a new stream."""
        return UpdateStream(self._updates[:length])

    def batched(self, batch_size: int) -> Iterator["UpdateStream"]:
        """Split the stream into consecutive windows of ``batch_size`` updates.

        The last window may be shorter.  Each window is a plain (raw) stream;
        normalization against the live graph happens at apply time, inside the
        consumer's ``apply_batch``.
        """
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        for start in range(0, len(self._updates), batch_size):
            yield UpdateStream(self._updates[start:start + batch_size])

    def insertions_only(self) -> "UpdateStream":
        """A stream containing only the insertion updates, in order."""
        return UpdateStream(update for update in self._updates if update.is_insert)

    def deletions_only(self) -> "UpdateStream":
        """A stream containing only the deletion updates, in order."""
        return UpdateStream(update for update in self._updates if update.is_delete)

    def num_insertions(self) -> int:
        return sum(1 for update in self._updates if update.is_insert)

    def num_deletions(self) -> int:
        return sum(1 for update in self._updates if update.is_delete)

    def vertices(self) -> set[Vertex]:
        """All vertices touched by any update in the stream."""
        seen: set[Vertex] = set()
        for update in self._updates:
            seen.add(update.u)
            seen.add(update.v)
        return seen

    def max_live_edges(self, initial_edges: Iterable[tuple[Vertex, Vertex]] = ()) -> int:
        """The maximum number of live edges at any point while replaying."""
        live = {_canonical_order(u, v) for u, v in initial_edges}
        peak = len(live)
        for update in self._updates:
            if update.is_insert:
                live.add(update.endpoints)
            else:
                live.discard(update.endpoints)
            peak = max(peak, len(live))
        return peak

    def final_edges(
        self, initial_edges: Iterable[tuple[Vertex, Vertex]] = ()
    ) -> set[tuple[Vertex, Vertex]]:
        """The live edge set after replaying the whole stream.

        Raises :class:`InvalidUpdateError` if the stream is inconsistent.
        """
        live = {_canonical_order(u, v) for u, v in initial_edges}
        for position, update in enumerate(self._updates):
            key = update.endpoints
            if update.is_insert:
                if key in live:
                    raise InvalidUpdateError(
                        f"update #{position} inserts edge {key} which is already present"
                    )
                live.add(key)
            else:
                if key not in live:
                    raise InvalidUpdateError(
                        f"update #{position} deletes edge {key} which is not present"
                    )
                live.remove(key)
        return live

    def validate(self, initial_edges: Iterable[tuple[Vertex, Vertex]] = ()) -> bool:
        """Return ``True`` if the stream replays consistently from
        ``initial_edges`` (every insertion is new, every deletion exists)."""
        try:
            self.final_edges(initial_edges)
        except InvalidUpdateError:
            return False
        return True


def _canonical_first(u: Vertex, v: Vertex) -> bool:
    """Whether ``u`` comes first in the canonical order of the pair.

    Comparable values (the common case: integer or string vertex ids) are
    ordered by value; mixed or non-comparable labels fall back to ``repr``.
    """
    try:
        return u <= v  # type: ignore[operator]
    except TypeError:
        return repr(u) <= repr(v)


def _canonical_order(u: Vertex, v: Vertex) -> tuple[Vertex, Vertex]:
    """Order an endpoint pair deterministically (see :func:`_canonical_first`)."""
    return (u, v) if _canonical_first(u, v) else (v, u)
