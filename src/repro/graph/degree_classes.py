"""Degree-class machinery of Sections 3.1, 4, 6 and 7.

The algorithms partition vertices by degree:

* Endpoint layers ``L1``/``L4`` (classified by their degree in ``A``/``C``):
  **High** (degree in ``[m^{2/3-eps}, n]``), **Medium**
  (``[m^{1/3+eps}, 2 m^{2/3-eps}]``), **Low** (``[0, 2 m^{1/3+eps}]``), and —
  once Assumption 1 is dropped (Section 6) — **Tiny**
  (``[0, 2 m^{1/3-2eps}]``).
* Middle layers ``L2``/``L3`` (classified by their combined degree in the two
  incident data relations): **Dense** (``[m^{2/3-eps}, n]``), **Sparse**
  (``[0, 2 m^{2/3-eps}]``), and **Tiny**.
* Inside the warm-up algorithm (Section 3.1), the per-chunk classes
  **chunk-Dense** / **chunk-Sparse** with threshold ``m^{1/3-eps2}`` on the
  degree *within a chunk* ``B_i``.

Every pair of adjacent classes overlaps by a factor of two.  The overlap is
what makes Section 7 work: a vertex only changes class after its degree has
doubled or halved since it entered the overlap region, so the (expensive)
rebuilding of its data structures can be charged to the edge updates that
caused the degree change while keeping a *worst-case* bound — the rebuild for
a vertex starts when it enters the overlap region and is spread over the
updates incident to it.  :class:`HysteresisClassifier` implements exactly that
"only reclassify after leaving the overlap" rule.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.exceptions import ConfigurationError

Vertex = Hashable


class EndpointClass(enum.Enum):
    """Degree classes for vertices of the endpoint layers ``L1`` and ``L4``."""

    TINY = "tiny"
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


class MiddleClass(enum.Enum):
    """Degree classes for vertices of the middle layers ``L2`` and ``L3``."""

    TINY = "tiny"
    SPARSE = "sparse"
    DENSE = "dense"


@dataclass(frozen=True)
class ClassThresholds:
    """The numeric degree thresholds for a given edge count ``m`` and ``eps``.

    The fields follow the paper's definitions.  ``*_min`` is the smallest
    degree at which a vertex is *allowed* to be in the class, ``*_max`` the
    largest; adjacent classes overlap by a factor of two.
    """

    m: int
    eps: float
    tiny_max: float
    low_max: float
    medium_min: float
    medium_max: float
    high_min: float
    sparse_max: float
    dense_min: float

    @classmethod
    def from_edge_count(cls, m: int, eps: float) -> "ClassThresholds":
        """Compute thresholds for the current number of edges ``m``.

        ``m`` may be zero (the dynamic graph starts empty); all thresholds are
        then zero except the upper limits, which are at least one so that the
        first few edges classify every vertex as tiny/low/sparse.
        """
        if m < 0:
            raise ConfigurationError(f"edge count must be non-negative, got {m}")
        if eps < 0 or eps > 1 / 6:
            raise ConfigurationError(
                f"eps must lie in [0, 1/6] (constraint Eq. (11) of the paper), got {eps}"
            )
        effective_m = max(m, 1)
        third = effective_m ** (1.0 / 3.0)
        two_thirds = effective_m ** (2.0 / 3.0)
        tiny_max = 2.0 * effective_m ** (1.0 / 3.0 - 2.0 * eps)
        low_max = 2.0 * effective_m ** (1.0 / 3.0 + eps)
        medium_min = effective_m ** (1.0 / 3.0 + eps)
        medium_max = 2.0 * effective_m ** (2.0 / 3.0 - eps)
        high_min = effective_m ** (2.0 / 3.0 - eps)
        sparse_max = 2.0 * effective_m ** (2.0 / 3.0 - eps)
        dense_min = effective_m ** (2.0 / 3.0 - eps)
        # Guard against degenerate tiny graphs where the power laws collapse.
        del third, two_thirds
        return cls(
            m=m,
            eps=eps,
            tiny_max=tiny_max,
            low_max=low_max,
            medium_min=medium_min,
            medium_max=medium_max,
            high_min=high_min,
            sparse_max=sparse_max,
            dense_min=dense_min,
        )

    # -- admissibility -----------------------------------------------------
    def admissible_endpoint_classes(self, degree: int) -> tuple[EndpointClass, ...]:
        """All endpoint classes whose degree range contains ``degree``.

        Ranges overlap, so the result can contain one or two classes (two when
        the vertex sits in a transition region).
        """
        classes: list[EndpointClass] = []
        if degree <= self.tiny_max:
            classes.append(EndpointClass.TINY)
        if degree <= self.low_max:
            classes.append(EndpointClass.LOW)
        if self.medium_min <= degree <= self.medium_max:
            classes.append(EndpointClass.MEDIUM)
        if degree >= self.high_min:
            classes.append(EndpointClass.HIGH)
        if not classes:
            # Numerically impossible in theory (the ranges cover [0, n]); keep
            # a safe fallback for pathological float corner cases.
            classes.append(EndpointClass.HIGH if degree > self.medium_max else EndpointClass.LOW)
        return tuple(classes)

    def admissible_middle_classes(self, degree: int) -> tuple[MiddleClass, ...]:
        """All middle classes whose degree range contains ``degree``."""
        classes: list[MiddleClass] = []
        if degree <= self.tiny_max:
            classes.append(MiddleClass.TINY)
        if degree <= self.sparse_max:
            classes.append(MiddleClass.SPARSE)
        if degree >= self.dense_min:
            classes.append(MiddleClass.DENSE)
        if not classes:
            classes.append(MiddleClass.DENSE if degree > self.sparse_max else MiddleClass.SPARSE)
        return tuple(classes)

    def canonical_endpoint_class(self, degree: int) -> EndpointClass:
        """A deterministic, non-overlapping class assignment.

        Used where a single class is needed without hysteresis (for example
        when classifying a static snapshot): below ``tiny_max / 2`` is tiny,
        below ``medium_min`` is low, below ``high_min`` is medium, else high.
        """
        if degree < self.tiny_max / 2.0:
            return EndpointClass.TINY
        if degree < self.medium_min:
            return EndpointClass.LOW
        if degree < self.high_min:
            return EndpointClass.MEDIUM
        return EndpointClass.HIGH

    def canonical_middle_class(self, degree: int) -> MiddleClass:
        """Deterministic single-class assignment for middle-layer vertices."""
        if degree < self.tiny_max / 2.0:
            return MiddleClass.TINY
        if degree < self.dense_min:
            return MiddleClass.SPARSE
        return MiddleClass.DENSE


@dataclass(frozen=True)
class ChunkThresholds:
    """Per-chunk dense/sparse thresholds of the warm-up algorithm.

    Inside a chunk ``B_i`` of size ``m^{2/3 - eps1}``, a vertex of ``L2`` or
    ``L3`` is chunk-dense when its degree *within the chunk* is at least
    ``m^{1/3 - eps2}`` and chunk-sparse otherwise (Section 3.1).
    """

    m: int
    eps1: float
    eps2: float
    chunk_size: float
    chunk_dense_min: float

    @classmethod
    def from_edge_count(cls, m: int, eps1: float, eps2: float) -> "ChunkThresholds":
        if m < 0:
            raise ConfigurationError(f"edge count must be non-negative, got {m}")
        effective_m = max(m, 1)
        chunk_size = effective_m ** (2.0 / 3.0 - eps1)
        chunk_dense_min = effective_m ** (1.0 / 3.0 - eps2)
        return cls(m=m, eps1=eps1, eps2=eps2, chunk_size=chunk_size, chunk_dense_min=chunk_dense_min)

    def is_chunk_dense(self, degree_in_chunk: int) -> bool:
        """Whether a degree within a single chunk makes the vertex chunk-dense."""
        return degree_in_chunk >= self.chunk_dense_min


class HysteresisClassifier:
    """Tracks per-vertex classes and only reclassifies outside the overlap.

    The paper's Assumption 2 (vertices never change class) is removed in
    Section 7 by exploiting the overlapping class ranges: a vertex that enters
    an overlap region keeps its old class while the data structures for the
    prospective new class are built in the background, and the switch happens
    only when the degree leaves the region.  This classifier reproduces that
    rule for endpoint classes; middle classes use the analogous dense/sparse
    overlap.

    The classifier is deliberately independent of any particular graph object:
    callers push ``(vertex, new_degree)`` observations and read back the stable
    class.  :meth:`observe` returns the transition (``old``, ``new``) when a
    reclassification happens, so the counters can trigger their Section 7
    rebuild hooks.
    """

    def __init__(self, thresholds: ClassThresholds, kind: str = "endpoint") -> None:
        if kind not in ("endpoint", "middle"):
            raise ConfigurationError(f"kind must be 'endpoint' or 'middle', got {kind!r}")
        self._thresholds = thresholds
        self._kind = kind
        self._classes: Dict[Vertex, object] = {}

    @property
    def thresholds(self) -> ClassThresholds:
        return self._thresholds

    def set_thresholds(self, thresholds: ClassThresholds) -> None:
        """Replace the thresholds (e.g. after ``m`` changed substantially).

        Existing assignments are kept; vertices migrate lazily on their next
        :meth:`observe` call, mirroring the paper's rule that rebuild work is
        charged to updates incident to the transitioning vertex.
        """
        self._thresholds = thresholds

    def current_class(self, vertex: Vertex) -> Optional[object]:
        """The currently assigned class, or ``None`` if never observed."""
        return self._classes.get(vertex)

    def observe(self, vertex: Vertex, degree: int):
        """Record the new degree of ``vertex`` and return a transition if any.

        Returns ``None`` when the class did not change and the tuple
        ``(old_class, new_class)`` when it did (``old_class`` is ``None`` on
        first observation).
        """
        admissible = self._admissible(degree)
        current = self._classes.get(vertex)
        if current is not None and current in admissible:
            return None
        new_class = admissible[len(admissible) // 2] if len(admissible) > 1 else admissible[0]
        # Prefer the class adjacent to the current one so transitions move one
        # step at a time (tiny -> low -> medium -> high), as in the paper.
        if current is not None:
            new_class = self._closest_class(current, admissible)
        self._classes[vertex] = new_class
        return (current, new_class)

    def drop(self, vertex: Vertex) -> None:
        """Forget a vertex (used when a vertex becomes isolated)."""
        self._classes.pop(vertex, None)

    def vertices_in_class(self, cls: object) -> list[Vertex]:
        """All vertices currently assigned to ``cls``."""
        return [vertex for vertex, assigned in self._classes.items() if assigned is cls]

    def class_sizes(self) -> Dict[object, int]:
        """Histogram of class -> number of assigned vertices."""
        sizes: Dict[object, int] = {}
        for assigned in self._classes.values():
            sizes[assigned] = sizes.get(assigned, 0) + 1
        return sizes

    # -- internals -----------------------------------------------------------
    def _admissible(self, degree: int):
        if self._kind == "endpoint":
            return self._thresholds.admissible_endpoint_classes(degree)
        return self._thresholds.admissible_middle_classes(degree)

    def _closest_class(self, current: object, admissible) -> object:
        order = (
            [EndpointClass.TINY, EndpointClass.LOW, EndpointClass.MEDIUM, EndpointClass.HIGH]
            if self._kind == "endpoint"
            else [MiddleClass.TINY, MiddleClass.SPARSE, MiddleClass.DENSE]
        )
        current_position = order.index(current) if current in order else 0
        best = admissible[0]
        best_distance = math.inf
        for candidate in admissible:
            distance = abs(order.index(candidate) - current_position)
            if distance < best_distance:
                best = candidate
                best_distance = distance
        return best
