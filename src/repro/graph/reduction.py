"""The general-graph to 4-layered-graph reduction of Section 8.

The paper solves the layered problem (Theorem 2) and then observes that
counting 4-cycles in a general simple graph reduces to it: build a layered
graph ``G'`` whose four layers are each a copy of ``V``, and for every edge
``{u, v}`` of ``G`` put the (symmetric) pair into each of the relations
``A, B, C, D``.  One general update therefore expands into eight layered
updates (two orientations times four relations).

Update ordering matters for exactness (Claim 8.1): on an *insertion* the query
is asked against ``A, B, C`` *before* the new edge reaches them (the paper says
"insert in D then C then B then A" — the query happens at the ``D`` step); on a
*deletion* the edge is removed from ``A, B, C`` first and the query is asked
afterwards.  With that ordering every 3-walk counted between ``u`` and ``v`` is
a genuine 3-path, so the maintained count is exact.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.graph.updates import EdgeUpdate, LayeredEdgeUpdate, UpdateKind

Vertex = Hashable

#: Relation order used when expanding an insertion.  The query relation ``D``
#: comes first so the query sees ``A, B, C`` without the new edge.
_INSERTION_ORDER = ("D", "C", "B", "A")
#: Deletions are expanded in the reverse order: the edge leaves ``A, B, C``
#: before the query at ``D``.
_DELETION_ORDER = ("A", "B", "C", "D")


def expand_general_update(update: EdgeUpdate) -> list[LayeredEdgeUpdate]:
    """Expand one general-graph update into its eight layered updates.

    Both orientations of the undirected edge are materialized in every
    relation, because in the reduction each relation's matrix *is* the
    (symmetric) adjacency matrix of the general graph.
    """
    order = _INSERTION_ORDER if update.kind is UpdateKind.INSERT else _DELETION_ORDER
    expanded: list[LayeredEdgeUpdate] = []
    for relation in order:
        expanded.append(LayeredEdgeUpdate(relation, update.u, update.v, update.kind))
        expanded.append(LayeredEdgeUpdate(relation, update.v, update.u, update.kind))
    return expanded


def expand_general_stream(updates: Iterable[EdgeUpdate]) -> Iterator[LayeredEdgeUpdate]:
    """Expand a whole general-graph update stream, preserving order."""
    for update in updates:
        yield from expand_general_update(update)


def query_pair(update: EdgeUpdate) -> tuple[Vertex, Vertex]:
    """The ``(L1 vertex, L4 vertex)`` pair whose 3-path count equals the number
    of general 4-cycles through the updated edge.

    For the undirected edge ``{u, v}`` the paper queries the ``D``-edge
    ``(v ∈ L4, u ∈ L1)``; the number of layered 3-paths from ``u ∈ L1`` to
    ``v ∈ L4`` through ``A, B, C`` (each equal to the adjacency matrix) is the
    number of 3-paths from ``u`` to ``v`` in the general graph, i.e. the number
    of 4-cycles through ``{u, v}``.
    """
    return (update.u, update.v)


def expected_layered_cycle_count(adjacency_closed_four_walks: int) -> int:
    """The layered 4-cycle count of the reduced graph ``G'``.

    Because every layer is a full copy of ``V`` and every relation equals the
    adjacency matrix, a layered 4-cycle of ``G'`` is exactly a closed 4-walk of
    the general graph (the four layer-vertices are distinct as layered vertices
    even when their labels repeat), so the layered count equals ``tr(A^4)``.

    This is deliberately *not* ``8 x`` the general 4-cycle count: the paper's
    equivalence (Claim 8.1) is about the per-update query — the walks counted
    between the endpoints of the updated edge are all genuine 3-paths because
    the edge is absent from ``A, B, C`` at query time — not about the totals of
    the two counting problems.  Tests use this helper to cross-check the
    reduction against the closed-walk count.
    """
    return adjacency_closed_four_walks


def general_four_cycles_from_reduction_queries(query_answers_signed_sum: int) -> int:
    """The maintained general 4-cycle count is simply the signed sum of the
    per-update query answers (number of 3-paths between the updated edge's
    endpoints), as in Algorithm 1.  Provided for documentation symmetry."""
    return query_answers_signed_sum
