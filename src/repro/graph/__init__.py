"""Graph substrate: dynamic simple graphs, vertex interning, 4-layered
graphs, updates, degree classes, and static counting oracles."""

from repro.graph.interning import VertexInterner
from repro.graph.degree_classes import (
    ChunkThresholds,
    ClassThresholds,
    EndpointClass,
    HysteresisClassifier,
    MiddleClass,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.layered_graph import (
    CLASSIFICATION_RELATIONS,
    LAYER_RELATIONS,
    RELATION_LAYERS,
    LayeredGraph,
)
from repro.graph.reduction import (
    expand_general_stream,
    expand_general_update,
    expected_layered_cycle_count,
    query_pair,
)
from repro.graph.static_counts import (
    closed_four_walks_from_adjacency,
    count_closed_four_walks,
    four_cycles_from_adjacency,
    count_four_cycles_edge_list,
    count_four_cycles_through_edge,
    count_four_cycles_trace,
    count_four_cycles_wedges,
    count_three_paths,
    count_wedges_between,
    total_wedges,
)
from repro.graph.updates import (
    RELATION_NAMES,
    EdgeUpdate,
    LayeredEdgeUpdate,
    UpdateBatch,
    UpdateKind,
    UpdateStream,
    normalize_batch,
)

__all__ = [
    "ChunkThresholds",
    "ClassThresholds",
    "EndpointClass",
    "HysteresisClassifier",
    "MiddleClass",
    "DynamicGraph",
    "VertexInterner",
    "LayeredGraph",
    "RELATION_LAYERS",
    "LAYER_RELATIONS",
    "CLASSIFICATION_RELATIONS",
    "expand_general_update",
    "expand_general_stream",
    "query_pair",
    "expected_layered_cycle_count",
    "closed_four_walks_from_adjacency",
    "count_closed_four_walks",
    "four_cycles_from_adjacency",
    "count_four_cycles_trace",
    "count_four_cycles_wedges",
    "count_four_cycles_edge_list",
    "count_four_cycles_through_edge",
    "count_three_paths",
    "count_wedges_between",
    "total_wedges",
    "EdgeUpdate",
    "LayeredEdgeUpdate",
    "UpdateBatch",
    "UpdateKind",
    "UpdateStream",
    "normalize_batch",
    "RELATION_NAMES",
]
