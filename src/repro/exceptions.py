"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  The hierarchy mirrors the subsystems of the
package: graph errors, layered-graph errors, update-stream errors, theory
(constraint-system) errors, matrix-multiplication errors, and database/IVM
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class InvalidUpdateError(ReproError):
    """Raised when an edge update is malformed or inconsistent with the
    current graph state (e.g. deleting a never-inserted edge while replaying a
    stream in strict mode)."""


class SelfLoopError(GraphError, InvalidUpdateError):
    """Raised when an operation would create a self-loop.

    The paper only considers simple graphs (Section 2.1): no self-loops and no
    multi-edges, so attempting ``insert_edge(v, v)`` is always an error.  It is
    both a graph error and an update error because self-loops can surface
    either when mutating a graph directly or when constructing an update.
    """


class DuplicateEdgeError(GraphError):
    """Raised when inserting an edge that is already present.

    Simple graphs do not allow multi-edges; a duplicate insertion almost always
    indicates a bug in the update stream, so it is rejected loudly instead of
    being ignored.
    """


class MissingEdgeError(GraphError):
    """Raised when deleting an edge that is not present in the graph."""


class UnknownVertexError(GraphError):
    """Raised when an operation references a vertex the graph has never seen
    and the operation requires it to exist (e.g. a degree query with
    ``strict=True``)."""


class LayerError(GraphError):
    """Raised for violations of the 4-layered graph structure.

    Examples: referencing a relation other than ``A``/``B``/``C``/``D`` or
    adding an edge whose endpoints are not in the two layers that the relation
    connects.
    """


class CounterStateError(ReproError):
    """Raised when a dynamic counter is driven into an inconsistent state,
    for instance querying a counter that has been explicitly invalidated."""


class MatmulError(ReproError):
    """Base class for matrix-multiplication engine errors."""


class DimensionMismatchError(MatmulError):
    """Raised when two matrices with incompatible shapes are multiplied."""


class ConstraintError(ReproError):
    """Raised when a constraint system is infeasible or a requested parameter
    set violates the paper's constraints."""


class ConfigurationError(ReproError):
    """Raised for invalid configuration values (negative phase sizes,
    out-of-range exponents, unknown counter names, and similar)."""


class DurabilityError(ReproError):
    """Base class for write-ahead-log and snapshot durability errors."""


class WalCorruptionError(DurabilityError):
    """Raised when a write-ahead-log record fails validation (bad JSON, CRC
    mismatch, sequence gap) anywhere other than the single torn final record
    that crash recovery tolerates."""


class SnapshotCorruptionError(DurabilityError, ConfigurationError):
    """Raised when a persisted engine snapshot is malformed (truncated file,
    invalid JSON, missing keys, checksum mismatch).

    Subclasses :class:`ConfigurationError` so callers that predate the
    durability layer and catch the broader class keep working.
    """


class RecoverableEngineError(ReproError):
    """Raised when an engine with an attached WAL fails mid-batch and
    fail-stops.

    Carries ``last_durable_seq``, the sequence number of the last WAL record
    that is both durable and applied; :func:`repro.durability.recover` rebuilds
    a consistent engine at exactly that point.
    """

    def __init__(self, message: str, last_durable_seq: int = -1) -> None:
        super().__init__(message)
        self.last_durable_seq = last_durable_seq


class FaultInjectionError(ReproError):
    """Base class for errors raised deliberately by the fault injector."""


class InjectedCrashError(FaultInjectionError):
    """Raised by an injected crash fault to simulate the process dying at a
    write point; the in-memory engine must be considered lost and recovery
    must proceed from disk alone."""


class InjectedTransientError(FaultInjectionError):
    """Raised by an injected transient fault inside a shard task; a correct
    executor retries and succeeds once the fault schedule is exhausted."""


class ServiceError(ReproError):
    """Base class for errors raised by the always-on HTTP service layer
    (:mod:`repro.service`): bad requests, unknown or duplicate tenants, and
    fail-stopped engines awaiting recovery."""


class RelationError(ReproError):
    """Base class for errors raised by the database layer."""


class DuplicateTupleError(RelationError):
    """Raised when inserting a tuple that is already present in a relation
    (relations are sets, exactly like the paper's simple-graph edges)."""


class MissingTupleError(RelationError):
    """Raised when deleting a tuple that is not present in a relation."""


class SchemaError(RelationError):
    """Raised when relations are combined with incompatible schemas, e.g. a
    cyclic join whose attribute chain does not close."""
