"""repro — fully dynamic 4-cycle counting with fast matrix multiplication.

A production-quality reproduction of

    Sepehr Assadi and Vihan Shah,
    "An Improved Fully Dynamic Algorithm for Counting 4-Cycles in General
    Graphs Using Fast Matrix Multiplication", PODS 2025 (arXiv:2504.10748).

The package provides:

* :mod:`repro.core` — exact fully dynamic 4-cycle counters: the paper's main
  algorithm (phases + degree classes + FMM), the Section 3 warm-up algorithm,
  the [HHH22] ``O(m^{2/3})`` baseline, the Appendix A ``O(n)`` wedge counter,
  and a brute-force reference; plus the layered 4-cycle counter of Theorem 2.
* :mod:`repro.graph` — dynamic simple graphs, 4-layered graphs, the general↔
  layered reduction of Section 8, degree classes, and static counting oracles.
* :mod:`repro.matmul` — matrix representations, (fast) multiplication
  backends, rectangular products, the ``omega`` cost models, and the phase
  work scheduler.
* :mod:`repro.theory` — the paper's constraint systems, parameter solving
  (Theorem 1/2 constants), and exponent tables.
* :mod:`repro.db` — binary relations, cyclic joins, and the incrementally
  maintained join-count view (the paper's IVM framing).
* :mod:`repro.workloads` — synthetic graph and join update-stream generators.
* :mod:`repro.instrumentation` — operation-count cost model, per-update
  metrics, and the experiment harness.

Quickstart::

    from repro import AssadiShahCounter

    counter = AssadiShahCounter()
    counter.insert_edge("a", "b")
    counter.insert_edge("b", "c")
    counter.insert_edge("c", "d")
    counter.insert_edge("d", "a")
    assert counter.count == 1
"""

from repro.api import (
    CounterSpec,
    EngineConfig,
    EngineEvent,
    EngineSnapshot,
    FourCycleEngine,
    GeneratorSource,
    ReplaySource,
    TupleFeedSource,
    UpdateSource,
    available_specs,
    counter_spec,
    register_spec,
)
from repro.core import (
    AssadiShahCounter,
    BruteForceCounter,
    DynamicFourCycleCounter,
    HHH22Counter,
    LayeredFourCycleCounter,
    PhaseFMMCounter,
    WedgeCounter,
    available_counters,
    create_counter,
    register_counter,
)
from repro.db import CyclicJoinCountView, TupleUpdate
from repro.graph import (
    DynamicGraph,
    EdgeUpdate,
    VertexInterner,
    LayeredGraph,
    UpdateBatch,
    UpdateKind,
    UpdateStream,
    normalize_batch,
)
from repro.theory import (
    published_parameters,
    solve_main_parameters,
    solve_warmup_parameters,
    verify_published_parameters,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "EngineConfig",
    "FourCycleEngine",
    "EngineEvent",
    "EngineSnapshot",
    "CounterSpec",
    "counter_spec",
    "available_specs",
    "register_spec",
    "UpdateSource",
    "GeneratorSource",
    "ReplaySource",
    "TupleFeedSource",
    "DynamicFourCycleCounter",
    "BruteForceCounter",
    "WedgeCounter",
    "HHH22Counter",
    "PhaseFMMCounter",
    "AssadiShahCounter",
    "LayeredFourCycleCounter",
    "available_counters",
    "create_counter",
    "register_counter",
    "DynamicGraph",
    "VertexInterner",
    "LayeredGraph",
    "EdgeUpdate",
    "UpdateKind",
    "UpdateStream",
    "UpdateBatch",
    "normalize_batch",
    "CyclicJoinCountView",
    "TupleUpdate",
    "solve_main_parameters",
    "solve_warmup_parameters",
    "published_parameters",
    "verify_published_parameters",
]
