"""E3 — Appendix B: the published parameter values satisfy every constraint."""

from __future__ import annotations

from repro.analysis import experiment_e3_constraint_verification, text_table


def test_e3_constraint_verification(benchmark, report_sink):
    rows = benchmark(experiment_e3_constraint_verification)
    report_sink.append(("E3 Appendix B constraint verification", text_table(rows, float_digits=6)))
    assert rows, "expected constraint evaluations"
    assert all(row.satisfied for row in rows)
    # Both parameter regimes and both constraint systems are covered.
    assert {row.regime for row in rows} == {"current", "best"}
    assert {row.system for row in rows} == {"main", "warm-up"}
    assert len(rows) == 2 * (3 + 5)
