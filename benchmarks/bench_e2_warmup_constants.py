"""E2 — warm-up algorithm constants (Section 3.4): eps1 and eps2.

The omega = 2 regime is re-derived exactly (eps1 = 1/24, eps2 = 5/24).  The
current-omega regime depends on the [ADW+25] rectangular exponent tables (not
reproducible offline); the solver's value under the block-partition bound is
reported next to the published value, and E3 verifies the published value
against all constraints.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiment_e2_warmup_constants, text_table


def test_e2_warmup_constants(benchmark, report_sink):
    rows = benchmark(experiment_e2_warmup_constants)
    report_sink.append(("E2 warm-up constants", text_table(rows, float_digits=8)))
    by_regime = {row.regime: row for row in rows}
    assert by_regime["best"].eps1_solved == pytest.approx(1 / 24, abs=1e-6)
    assert by_regime["best"].eps2_solved == pytest.approx(5 / 24, abs=1e-6)
    assert by_regime["best"].matches
    # The current regime's solver value is positive and satisfies the system;
    # exact agreement with the published value needs the ADW+25 tables.
    assert by_regime["current"].eps1_solved > 0
