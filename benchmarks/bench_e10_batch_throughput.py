"""E10 — batched update pipeline: updates/sec versus batch size.

Replays the standard dense churn workload through every registered counter at
batch sizes 1 (the per-update path), 8, 64 and 256, measuring end-to-end
wall-clock throughput of the ``apply_batch`` pipeline.  The acceptance claim:
the amortized fast paths of the brute-force and wedge counters (one recount /
one vectorized wedge rebuild per batch) are at least 3x faster than their
per-update paths at batch size >= 64, while every run stays exact (each final
count is verified against a from-scratch recount, and all batch sizes must
agree — the batch/unbatch equivalence contract).
"""

from __future__ import annotations

from repro.analysis import (
    experiment_e10_batch_throughput,
    text_table,
    write_bench_artifact,
)
from repro.core.registry import available_counters

BATCH_SIZES = (1, 8, 64, 256)


def _best_speedups(rows):
    speedups = {(row.counter, row.batch_size): row.speedup_vs_unbatched for row in rows}
    return {
        name: max(speedups[(name, size)] for size in BATCH_SIZES if size >= 64)
        for name in ("brute-force", "wedge")
    }


def test_e10_batch_throughput(benchmark, report_sink):
    rows = benchmark.pedantic(
        experiment_e10_batch_throughput,
        kwargs={"batch_sizes": BATCH_SIZES},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("E10 batch-pipeline throughput", text_table(rows, float_digits=2)))
    write_bench_artifact("E10", {"batch_sizes": list(BATCH_SIZES)}, rows)
    # Every registered counter ran at every batch size, and stayed exact.
    assert {row.counter for row in rows} == set(available_counters())
    assert all(row.consistent for row in rows)
    # The amortized fast paths pay off: >= 3x updates/sec at batch size >= 64.
    # This is the repo's one wall-clock assertion (the acceptance claim is a
    # throughput ratio, so operation counts cannot stand in for it); measured
    # margins are ~10-35x against the 3x floor, and a transient scheduler
    # stall gets one clean re-measurement before failing.
    # (Deliberately no timing floor for the deferred-check counters: their
    # win is modest and wall-clock ratios near 1x would flake on shared CI
    # runners.  Exactness is still asserted for them above.)
    best = _best_speedups(rows)
    if min(best.values()) < 3.0:
        best = _best_speedups(experiment_e10_batch_throughput(batch_sizes=BATCH_SIZES))
    for name, speedup in best.items():
        assert speedup >= 3.0, f"{name}: expected >= 3x at batch >= 64, got {speedup:.2f}x"
