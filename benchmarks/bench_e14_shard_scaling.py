"""E14 — shard-parallel SpGEMM and rebuild scaling over row-partitioned CSR.

Runs the whole-product ``csr_spgemm`` and the hhh22 masked rebuild on the E12
community instance at ``workers`` in {1, 2, 4} through
:class:`~repro.matmul.sharding.ShardExecutor`.  The acceptance claims:

* **bit-identity on every row** — the sharded product reproduces the serial
  kernel's CSR arrays exactly, and the rebuild's 4-cycle count matches the
  disjoint-clique closed form at every worker count (the experiment raises on
  any divergence, and ``consistent`` is what CI gates on — never timing);
* at the full-size profile (``repro-4cycles bench --experiments e14``,
  recorded in ``BENCH_E14.json`` at n=6144 / 13.6M expansion work), at least
  one kernel family reaches **>= 1.6x** over its ``workers=1`` serial
  baseline at ``workers=4`` — on a single-core host that margin comes
  entirely from per-shard column compression (each shard multiplies against
  a right operand compressed to its column footprint, shrinking the
  dense-scratch merges); on multicore hosts the worker pool adds true
  parallelism on top.

This wrapper runs a medium-size profile (so tier-1 stays fast) and records it
as ``BENCH_E14_MEDIUM.json`` — a different artifact name than the CLI's
full-profile ``BENCH_E14.json``, so the two writers never clobber each other.
Timing at the medium size is reported, not asserted: the speedup floor is a
full-profile claim and lives with ``BENCH_E14.json``.
"""

from __future__ import annotations

from repro.analysis import (
    experiment_e14_shard_scaling,
    text_table,
    write_bench_artifact,
)

PARAMS = {
    "community_count": 64,
    "community_size": 32,
    "workers": (1, 2, 4),
    "churn_edges": 64,
    "repeats": 2,
    "seed": 0,
}


def test_e14_shard_scaling(benchmark, report_sink):
    rows = benchmark.pedantic(
        experiment_e14_shard_scaling,
        kwargs=PARAMS,
        rounds=1,
        iterations=1,
    )
    report_sink.append(("E14 shard-parallel scaling", text_table(rows, float_digits=2)))
    write_bench_artifact("E14_MEDIUM", PARAMS, rows)
    # Exactness is non-negotiable (the experiment also raises on divergence);
    # both kernel families must cover the whole sweep.
    assert all(row.consistent for row in rows)
    kernels = {row.kernel.split(":")[0] for row in rows}
    assert kernels == {"spgemm", "hhh22-masked-rebuild"}
    for kernel in kernels:
        variants = [row.variant for row in rows if row.kernel.split(":")[0] == kernel]
        assert variants == [f"workers={count}" for count in PARAMS["workers"]]
