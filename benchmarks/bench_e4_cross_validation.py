"""E4 — correctness cross-validation of every counter on every workload.

Every registered counter must agree with the brute-force reference after every
update of every catalogue workload (Erdős–Rényi, power-law, hubs, sliding
window, churn).
"""

from __future__ import annotations

from repro.analysis import experiment_e4_cross_validation, text_table


def test_e4_cross_validation(benchmark, report_sink):
    rows = benchmark.pedantic(
        experiment_e4_cross_validation,
        kwargs={"scale": 1, "updates_per_workload": 120, "seed": 0},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("E4 cross-validation", text_table(rows, float_digits=1)))
    assert all(row.validated for row in rows)
    # Within each workload all counters report the same final count.
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row.workload, set()).add(row.final_count)
    assert all(len(counts) == 1 for counts in by_workload.values())
