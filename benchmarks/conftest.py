"""Shared configuration for the benchmark suite.

Every benchmark module regenerates one experiment of DESIGN.md (E1–E9) and
prints its result table; run with ``-s`` to see the tables inline, e.g.::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def report_sink():
    """Collects (title, table) pairs and prints them at the end of the session."""
    collected: list[tuple[str, str]] = []
    yield collected
    if collected:
        print("\n")
        for title, table in collected:
            print(f"\n=== {title} ===")
            print(table)
