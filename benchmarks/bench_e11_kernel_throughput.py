"""E11 — integer-interned kernels: vectorized versus scalar throughput.

Replays the standard dense churn workload through the wedge/HHH22/assadi-shah
counters three ways (per-update scalar, batched scalar, batched vectorized)
and times the cached-CSR dense ``multiply_chain`` against the label-dict
export, plus the interned graph microkernels.  The acceptance claims:

* the wedge-counter vectorized batch path is at least **5x** updates/sec over
  the seed per-update scalar path;
* the cached-CSR dense ``multiply_chain`` is at least **3x** over the
  label-dict dense path;
* every variant of every kernel produces **bit-identical results** (4-cycle
  counts verified against from-scratch recounts, matrix products compared
  entry for entry) — the experiment itself raises on any mismatch.

Results are also written to ``BENCH_E11.json`` so the perf trajectory is
machine-readable across PRs.
"""

from __future__ import annotations

from repro.analysis import (
    experiment_e11_kernel_throughput,
    text_table,
    write_bench_artifact,
)

PARAMS = {"num_vertices": 32, "num_updates": 2560, "batch_size": 256}


def _vectorized_speedups(rows):
    return {
        row.kernel: row.speedup_vs_scalar for row in rows if row.variant == "vectorized"
    }


def test_e11_kernel_throughput(benchmark, report_sink):
    rows = benchmark.pedantic(
        experiment_e11_kernel_throughput,
        kwargs=PARAMS,
        rounds=1,
        iterations=1,
    )
    report_sink.append(("E11 interned kernel throughput", text_table(rows, float_digits=2)))
    write_bench_artifact("E11", PARAMS, rows)
    # Exactness is non-negotiable (the experiment also raises on divergence).
    assert all(row.exact for row in rows)
    # Wall-clock floors for the two acceptance kernels; measured margins are
    # well above them (~9x and ~5x), and a transient scheduler stall gets one
    # clean re-measurement before failing, as in E10.
    best = _vectorized_speedups(rows)
    if best["wedge-updates"] < 5.0 or best["multiply-chain-dense"] < 3.0:
        best = _vectorized_speedups(experiment_e11_kernel_throughput(**PARAMS))
    assert best["wedge-updates"] >= 5.0, (
        f"wedge batch path: expected >= 5x over the scalar path, got "
        f"{best['wedge-updates']:.2f}x"
    )
    assert best["multiply-chain-dense"] >= 3.0, (
        f"dense multiply_chain: expected >= 3x over the label-dict path, got "
        f"{best['multiply-chain-dense']:.2f}x"
    )
