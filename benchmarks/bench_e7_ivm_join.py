"""E7 — incremental view maintenance of the cyclic join count (Figure 1 framing).

Four relations receive random tuple inserts/deletes; the COUNT(*) view over
their cyclic join is maintained after every update and checked against a
from-scratch join at the end.
"""

from __future__ import annotations

from repro.analysis import experiment_e7_ivm_join, text_table


def test_e7_ivm_join(benchmark, report_sink):
    rows = benchmark.pedantic(
        experiment_e7_ivm_join,
        kwargs={"domain_sizes": (8, 16, 32), "updates_per_domain": 300},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("E7 IVM cyclic-join view", text_table(rows, float_digits=6)))
    assert all(row.consistent for row in rows)
    assert [row.domain_size for row in rows] == [8, 16, 32]
    # Smaller domains collide more, so the join count is larger there.
    assert rows[0].final_join_count >= rows[-1].final_join_count
