"""E9 — phase-length ablation for the phase/FMM counter.

Short phases mean small new-phase deltas (cheap queries) but frequent matrix
products; long phases amortize the products but force larger lazy delta scans.
The experiment sweeps the phase length on a skewed stream and reports the
per-update cost statistics and the number of completed phases.
"""

from __future__ import annotations

from repro.analysis import experiment_e9_phase_ablation, text_table


def test_e9_phase_ablation(benchmark, report_sink):
    rows = benchmark.pedantic(
        experiment_e9_phase_ablation,
        kwargs={"phase_lengths": (4, 16, 64, 256), "num_vertices": 36, "num_updates": 300},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("E9 phase-length ablation", text_table(rows, float_digits=1)))
    assert [row.phase_length for row in rows] == [4, 16, 64, 256]
    # More, shorter phases complete than long ones.
    assert rows[0].phases_completed > rows[-1].phases_completed
    for row in rows:
        assert row.mean_operations > 0
        assert row.max_operations >= row.p99_operations
