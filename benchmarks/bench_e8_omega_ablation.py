"""E8 — omega ablation: the update-time exponent as a function of omega.

Reproduces the paper's observations that (a) the improvement exists exactly
when omega < 2.5, (b) Strassen's bound is not sufficient, and (c) the headline
exponents are 0.65686 (current omega) and 0.625 (omega = 2) against the 2/3 of
[HHH22] and the 1/2 lower bound.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import experiment_e8_omega_ablation, text_table


def test_e8_omega_ablation(benchmark, report_sink):
    result = benchmark(experiment_e8_omega_ablation, 0.05)
    report_sink.append(("E8 omega sweep", text_table(result.rows, float_digits=6)))
    report_sink.append(("E8 headline comparison", text_table(result.headline, float_digits=6)))
    rows = result.rows
    # Improvement exactly below 2.5.
    for row in rows:
        assert row.improves == (row.omega < 2.5)
    # Monotone: a better omega never hurts.
    exponents = [row.update_time_exponent for row in rows]
    assert exponents == sorted(exponents)
    assert exponents[0] == pytest.approx(0.625)
    assert exponents[-1] == pytest.approx(2 / 3)
    # Strassen's exponent is above the threshold.
    assert math.log2(7) > 2.5
