"""E6 — worst-case versus amortized per-update cost on an adversarial stream.

The paper's bound is worst-case, so the metric of interest is the maximum (and
p99) per-update cost relative to the mean on a hub-heavy stream that stresses
the high/dense degree classes.
"""

from __future__ import annotations

from repro.analysis import experiment_e6_worst_case, text_table


def test_e6_worst_case(benchmark, report_sink):
    rows = benchmark.pedantic(
        experiment_e6_worst_case,
        kwargs={"num_vertices": 40, "num_updates": 300},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("E6 worst-case vs amortized", text_table(rows, float_digits=1)))
    assert {row.counter for row in rows} == {"wedge", "hhh22", "phase-fmm", "assadi-shah"}
    for row in rows:
        assert row.max_operations >= row.p99_operations >= 0
        assert row.worst_to_mean_ratio >= 1.0
