"""E12 — CSR SpGEMM versus the dict and dense product backends.

Multiplies three instance families (clique-community adjacency at < 2%
density, uniform 1%-density integer matrices, and 30%-dense small matrices)
on the dict ``SparseBackend``, the vectorized ``CsrBackend``, and the BLAS
``DenseBackend``, and replays a standing-graph churn stream through the wedge
counter's full-rebuild, incremental, and automatic batch-hook modes.  The
acceptance claims:

* on the sparse structured instance the CSR backend is at least **3x** the
  dict backend and at least **1.5x** dense BLAS (the full-size profile of
  ``repro-4cycles bench --experiments e12``, recorded in ``BENCH_E12.json``
  at n=6144 / 0.77% density, measures ~9-10x over dict and >20x over dense);
* the incremental wedge hook is at least **1.3x** the full rebuild on the
  churn stream, and the automatic mode never loses to rebuilding by more
  than measurement noise;
* every backend and every hook mode produces **bit-identical results** — the
  experiment raises on any divergence, and ``consistent`` is true on every
  row (this, not timing, is what CI gates on).

This wrapper runs a medium-size profile (so tier-1 stays fast) and records it
as ``BENCH_E12_MEDIUM.json`` — a different artifact name than the CLI's
full-profile ``BENCH_E12.json``, so the two writers never clobber each other.
"""

from __future__ import annotations

from repro.analysis import (
    experiment_e12_spgemm_backends,
    text_table,
    write_bench_artifact,
)

PARAMS = {
    "community_count": 64,
    "community_size": 32,
    "uniform_dimension": 256,
    "dense_dimension": 96,
    "wedge_vertices": 1024,
    "wedge_base_edges": 6144,
    "wedge_churn_updates": 1024,
    "wedge_batch_size": 128,
}


def _speedups(rows):
    communities = {
        row.variant: row
        for row in rows
        if row.kernel.startswith("product:communities")
    }
    wedge = {row.variant: row for row in rows if row.kernel == "wedge-batch-hook"}
    return {
        "csr_vs_sparse": communities["csr"].speedup_vs_baseline,
        "csr_vs_dense": communities["dense"].seconds / communities["csr"].seconds,
        "incremental": wedge["incremental"].speedup_vs_baseline,
    }


def test_e12_spgemm_backends(benchmark, report_sink):
    rows = benchmark.pedantic(
        experiment_e12_spgemm_backends,
        kwargs=PARAMS,
        rounds=1,
        iterations=1,
    )
    report_sink.append(("E12 sparse-vs-dense product backends", text_table(rows, float_digits=2)))
    write_bench_artifact("E12_MEDIUM", PARAMS, rows)
    # Exactness is non-negotiable (the experiment also raises on divergence).
    assert all(row.consistent for row in rows)
    # Wall-clock floors for the acceptance kernels; measured margins are well
    # above them (~6.5x, ~5.5x, ~2.4x), and a transient scheduler stall gets
    # one clean re-measurement before failing, as in E10/E11.
    best = _speedups(rows)
    if (
        best["csr_vs_sparse"] < 3.0
        or best["csr_vs_dense"] < 1.5
        or best["incremental"] < 1.3
    ):
        best = _speedups(experiment_e12_spgemm_backends(**PARAMS))
    assert best["csr_vs_sparse"] >= 3.0, (
        f"CSR SpGEMM: expected >= 3x over the dict backend on the sparse "
        f"structured instance, got {best['csr_vs_sparse']:.2f}x"
    )
    assert best["csr_vs_dense"] >= 1.5, (
        f"CSR SpGEMM: expected >= 1.5x over dense BLAS on the sparse "
        f"structured instance, got {best['csr_vs_dense']:.2f}x"
    )
    assert best["incremental"] >= 1.3, (
        f"incremental wedge hook: expected >= 1.3x over the full rebuild, "
        f"got {best['incremental']:.2f}x"
    )
