"""E15 — always-on service load: concurrent HTTP ingestion over one engine.

Drives the :mod:`repro.service` HTTP layer end to end through real sockets:
hundreds (medium profile) to thousands (full profile) of connection-per-request
clients ingest disjoint per-client update streams into a single durable
(WAL-attached) served engine while reader clients poll the published counts
view, and per-request latency percentiles (p50/p95/p99) are recorded.  The
acceptance claims:

* **exactness under concurrency on every row** — the experiment raises unless
  every request succeeded, the served final count is bit-identical to the
  reference replay (one client block times the client count; blocks are
  disjoint so arrival order cannot matter), the WAL cursor covers every
  logged record, and a server-side from-scratch recount agrees
  (``consistent`` is what CI gates on — never timing);
* at the full-size profile (``repro-4cycles bench --experiments e15``,
  recorded in ``BENCH_E15.json``), the service sustains **>= 1000 concurrent
  ingestion clients** against one durable engine with zero failed requests.

This wrapper runs a medium-size profile (so tier-1 stays fast) and records it
as ``BENCH_E15_MEDIUM.json`` — a different artifact name than the CLI's
full-profile ``BENCH_E15.json``, so the two writers never clobber each other.
Latency percentiles at the medium size are reported, not asserted: timing
claims live with the full-profile artifact.
"""

from __future__ import annotations

from repro.analysis import (
    experiment_e15_service_load,
    text_table,
    write_bench_artifact,
)

PARAMS = {
    "clients": 256,
    "batches_per_client": 2,
    "batch_size": 4,
    "block": 8,
    "readers": 32,
    "reader_polls": 2,
    "counter": "wedge",
}


def test_e15_service_load(benchmark, report_sink):
    rows = benchmark.pedantic(
        experiment_e15_service_load,
        kwargs=PARAMS,
        rounds=1,
        iterations=1,
    )
    report_sink.append(("E15 always-on service load", text_table(rows, float_digits=2)))
    write_bench_artifact("E15_MEDIUM", PARAMS, rows)
    # Exactness is non-negotiable (the experiment also raises on divergence).
    assert all(row.consistent for row in rows)
    assert all(row.errors == 0 for row in rows)
    ingest = next(row for row in rows if row.scenario == "ingest")
    assert ingest.clients == PARAMS["clients"]
    assert ingest.requests == PARAMS["clients"] * PARAMS["batches_per_client"]
    assert ingest.operations == ingest.requests * PARAMS["batch_size"]
    read = next(row for row in rows if row.scenario == "read-while-ingest")
    assert read.requests == PARAMS["readers"] * PARAMS["reader_polls"]
    # Percentiles are ordered by construction; a violation means the sample
    # aggregation itself broke.
    assert ingest.p50_ms <= ingest.p95_ms <= ingest.p99_ms
