"""E1 — Theorem 1/2 constants: eps and delta for omega = 2.371339 and omega = 2.

Reproduces the headline constants of the paper's abstract / Theorem 1:
``eps = 0.009811`` (current omega) and ``eps = 1/24`` (best possible omega),
with ``delta = 3 eps``.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiment_e1_theorem_constants, text_table


def test_e1_theorem_constants(benchmark, report_sink):
    rows = benchmark(experiment_e1_theorem_constants)
    report_sink.append(("E1 Theorem 1/2 constants", text_table(rows, float_digits=7)))
    by_regime = {row.regime: row for row in rows}
    assert by_regime["current"].eps_solved == pytest.approx(0.0098109, abs=1e-6)
    assert by_regime["current"].exponent_solved == pytest.approx(0.65686, abs=1e-5)
    assert by_regime["best"].eps_solved == pytest.approx(1 / 24, abs=1e-9)
    assert by_regime["best"].delta_solved == pytest.approx(1 / 8, abs=1e-9)
    assert all(row.matches for row in rows)
