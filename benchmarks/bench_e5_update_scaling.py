"""E5 — update-cost scaling versus m (operation counts and fitted exponents).

The shape being reproduced: the stored-structure algorithms (HHH22, phase-FMM,
the main algorithm) pay far less per update than the simple O(n) wedge counter
as the graph grows, and their fitted cost exponents are sublinear in m.  The
theoretical exponents (2/3 for HHH22, 2/3 - eps for the paper) are printed
alongside; Python operation counts are not expected to match them exactly, only
to preserve the ordering.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.analysis import experiment_e5_update_scaling, text_table


def test_e5_update_scaling(benchmark, report_sink):
    result = benchmark.pedantic(
        experiment_e5_update_scaling,
        kwargs={"sizes": (16, 32, 64, 96), "updates_per_vertex": 7},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("E5 scaling points", text_table(result.points, float_digits=1)))
    exponent_rows = [
        {
            "counter": name,
            "fitted_exponent": result.fitted_exponents.get(name),
            "theoretical_exponent": result.theoretical_exponents.get(name),
        }
        for name in sorted(result.fitted_exponents)
    ]
    report_sink.append(("E5 fitted cost exponents", text_table(exponent_rows, float_digits=3)))

    by_counter = {}
    for point in result.points:
        by_counter.setdefault(point.counter, []).append(point)
    # The live edge count must grow across the series for every counter ...
    for name, points in by_counter.items():
        assert points[-1].final_edges > points[0].final_edges
    # ... and at the largest size the class/phase based baseline must not lose
    # to the brute-force scanner (the "who wins" shape of the paper's story).
    largest = {p.counter: p for p in result.points if p.num_vertices == 96}
    assert largest["hhh22"].mean_operations <= largest["brute-force"].mean_operations * 1.5
    assert all(asdict(point)["mean_operations"] > 0 for point in result.points)
