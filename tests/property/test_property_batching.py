"""Property tests for the batched update pipeline.

The central invariant of the batch refactor: **for any consistent stream,
batched and unbatched processing yield identical counts** — at every batch
boundary and at the end — for every registered counter and for the IVM view.
The streams are random mixed insert/delete workloads and the batch sizes cover
the per-update path (1), a small odd window (7), the fast-path regime (64) and
a single whole-stream batch.
"""

from __future__ import annotations

import pytest

from repro.api import available_counter_names, counter_spec
from repro.db.ivm import CyclicJoinCountView
from repro.graph.updates import EdgeUpdate
from repro.workloads.join_workloads import batched_join_workload, random_join_workload

from tests.conftest import random_dynamic_stream

STREAM_LENGTH = 160
BATCH_SIZES = (1, 7, 64, STREAM_LENGTH)


def boundary_indices(total: int, batch_size: int) -> list[int]:
    """Stream positions at which batch boundaries fall (last update of each
    window), as indices into the per-update count trajectory."""
    return [min(start + batch_size, total) - 1 for start in range(0, total, batch_size)]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("name", sorted(available_counter_names()))
def test_counter_batch_unbatch_equivalence(name, seed):
    stream = random_dynamic_stream(num_vertices=14, num_updates=STREAM_LENGTH, seed=seed,
                                   delete_fraction=0.35)
    reference = counter_spec(name).create()
    trajectory = [reference.apply(update) for update in stream]
    for batch_size in BATCH_SIZES:
        counter = counter_spec(name).create()
        boundary_counts = [counter.apply_batch(window) for window in stream.batched(batch_size)]
        expected = [trajectory[index] for index in boundary_indices(len(stream), batch_size)]
        assert boundary_counts == expected, (
            f"{name} diverged at batch size {batch_size}: {boundary_counts} != {expected}"
        )
        assert counter.count == reference.count
        assert counter.updates_processed == len(stream)
        # Full graph-state equivalence, vertex registration included (a
        # cancelled pair must still register its endpoints).
        assert counter.num_vertices == reference.num_vertices
        assert counter.graph.to_edge_set() == reference.graph.to_edge_set()
        assert counter.is_consistent()


@pytest.mark.parametrize("seed", [0, 1])
def test_ivm_view_batch_unbatch_equivalence(seed):
    workload = random_join_workload(domain_size=8, num_updates=STREAM_LENGTH, seed=seed)
    reference = CyclicJoinCountView()
    trajectory = [reference.apply(update) for update in workload]
    for batch_size in BATCH_SIZES:
        view = CyclicJoinCountView()
        boundary_counts = [
            view.apply_batch(window) for window in batched_join_workload(workload, batch_size)
        ]
        expected = [trajectory[index] for index in boundary_indices(len(workload), batch_size)]
        assert boundary_counts == expected
        assert view.count == reference.count
        assert view.updates_processed == len(workload)
        assert view.is_consistent()


@pytest.mark.parametrize("name", sorted(available_counter_names()))
def test_counter_cancellation_within_batch(name):
    """A window whose inserts and deletes annihilate is a no-op for the count."""
    counter = counter_spec(name).create()
    counter.insert_edge(0, 1)
    counter.insert_edge(1, 2)
    counter.insert_edge(2, 3)
    before = counter.count
    window = [
        EdgeUpdate.insert(0, 3),   # new edge ...
        EdgeUpdate.delete(0, 3),   # ... cancelled
        EdgeUpdate.delete(1, 2),   # existing edge removed ...
        EdgeUpdate.insert(1, 2),   # ... and restored
    ]
    assert counter.apply_batch(window) == before
    assert counter.updates_processed == 3 + len(window)
    assert counter.is_consistent()
