"""Property-based tests (hypothesis) for the dynamic counters.

The central invariant: after replaying *any* consistent update stream, every
counter reports exactly the number of 4-cycles of the resulting graph, and the
count after every prefix matches the brute-force reference.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import available_counter_names, counter_spec
from repro.graph.static_counts import count_four_cycles_trace, count_four_cycles_wedges
from repro.graph.updates import EdgeUpdate, UpdateStream

COUNTER_NAMES = sorted(available_counter_names())
FAST_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def consistent_streams(draw, max_vertices: int = 8, max_updates: int = 60) -> UpdateStream:
    """Generate a consistent fully dynamic update stream.

    At every step, choose to insert a random absent edge or delete a random
    present one; the result is always a valid stream.
    """
    num_vertices = draw(st.integers(min_value=4, max_value=max_vertices))
    length = draw(st.integers(min_value=0, max_value=max_updates))
    live: list[tuple[int, int]] = []
    live_set: set[tuple[int, int]] = set()
    updates: list[EdgeUpdate] = []
    for _ in range(length):
        delete = live and draw(st.booleans())
        if delete:
            index = draw(st.integers(min_value=0, max_value=len(live) - 1))
            edge = live.pop(index)
            live_set.discard(edge)
            updates.append(EdgeUpdate.delete(*edge))
        else:
            u = draw(st.integers(min_value=0, max_value=num_vertices - 1))
            v = draw(st.integers(min_value=0, max_value=num_vertices - 1))
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in live_set:
                continue
            live.append(key)
            live_set.add(key)
            updates.append(EdgeUpdate.insert(*key))
    return UpdateStream(updates)


@given(stream=consistent_streams())
@FAST_SETTINGS
def test_static_oracles_agree(stream):
    """The two static counting formulas agree on arbitrary graphs."""
    from repro.graph.dynamic_graph import DynamicGraph

    graph = DynamicGraph()
    graph.apply_all(stream)
    assert count_four_cycles_trace(graph) == count_four_cycles_wedges(graph)


@given(stream=consistent_streams())
@FAST_SETTINGS
def test_wedge_counter_matches_static(stream):
    counter = counter_spec("wedge").create()
    counter.apply_all(stream)
    assert counter.count == count_four_cycles_trace(counter.graph)


@given(stream=consistent_streams())
@FAST_SETTINGS
def test_hhh22_matches_static(stream):
    counter = counter_spec("hhh22").create()
    counter.apply_all(stream)
    assert counter.count == count_four_cycles_trace(counter.graph)


@given(stream=consistent_streams(max_updates=40), phase_length=st.integers(min_value=1, max_value=20))
@FAST_SETTINGS
def test_phase_fmm_matches_static_for_any_phase_length(stream, phase_length):
    counter = counter_spec("phase-fmm").create(phase_length=phase_length)
    counter.apply_all(stream)
    assert counter.count == count_four_cycles_trace(counter.graph)


@given(stream=consistent_streams(max_updates=40), phase_length=st.integers(min_value=1, max_value=20))
@FAST_SETTINGS
def test_assadi_shah_matches_static_for_any_phase_length(stream, phase_length):
    counter = counter_spec("assadi-shah").create(phase_length=phase_length)
    counter.apply_all(stream)
    assert counter.count == count_four_cycles_trace(counter.graph)


@given(stream=consistent_streams(max_updates=40))
@FAST_SETTINGS
def test_all_counters_agree_pairwise(stream):
    counts = set()
    for name in COUNTER_NAMES:
        counter = counter_spec(name).create()
        counter.apply_all(stream)
        counts.add(counter.count)
    assert len(counts) == 1


@given(stream=consistent_streams(max_updates=40))
@FAST_SETTINGS
def test_insert_then_delete_is_identity(stream):
    """Applying a stream and then its exact reversal restores a zero count."""
    counter = counter_spec("wedge").create()
    counter.apply_all(stream)
    for update in reversed(list(stream)):
        counter.apply(update.inverse())
    assert counter.count == 0
    assert counter.num_edges == 0
