"""Property tests (hypothesis): shard-parallel counters are bit-identical.

The shard layer's contract is that ``workers`` is pure performance: for any
consistent update stream, any batch window, any worker count, and any
execution policy, a counter built with ``workers > 1`` reports exactly the
counts (and, for the wedge counter, exactly the maintained wedge matrix) of
the serial ``workers=1`` counter.  The executors are re-armed with
``min_shard_work=1`` so even the tiny hypothesis graphs genuinely split into
multiple shards — the default floor would collapse them back to the serial
kernel and the test would pin nothing.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import counter_spec
from repro.matmul.sharding import ShardExecutor

from tests.property.test_property_counters import consistent_streams

#: The counters whose batch hooks route products through the shard executor.
SHARDED_COUNTERS = ("wedge", "hhh22", "assadi-shah")
FAST_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _sharded_counter(name: str, workers: int, policy: str = "serial", backend: str = "csr"):
    """A counter whose executor shards aggressively even on tiny graphs."""
    counter = counter_spec(name).create(backend=backend, workers=workers)
    executor = ShardExecutor(workers=workers, policy=policy, min_shard_work=1)
    counter.shard_executor = executor
    oracle = getattr(counter, "_oracle", None)
    if oracle is not None and hasattr(oracle, "shard_executor"):
        oracle.shard_executor = executor
    counter.batch_fast_path_threshold = 1
    return counter


def _replay_in_batches(counter, stream, window: int):
    counts = []
    updates = list(stream)
    for start in range(0, len(updates), window):
        counter.apply_batch(updates[start : start + window])
        counts.append(counter.count)
    return counts


@given(
    name=st.sampled_from(SHARDED_COUNTERS),
    backend=st.sampled_from(["auto", "dense", "csr"]),
    workers=st.sampled_from([2, 4]),
    window=st.integers(min_value=1, max_value=16),
    stream=consistent_streams(max_vertices=8, max_updates=40),
)
@FAST_SETTINGS
def test_sharded_counters_match_serial_at_every_batch_boundary(
    name, backend, workers, window, stream
):
    # The serial reference always runs the CSR kernels, so a dense/auto
    # sharded run also re-pins cross-backend equality along the way.
    serial = counter_spec(name).create(backend="csr", workers=1)
    serial.batch_fast_path_threshold = 1
    sharded = _sharded_counter(name, workers, backend=backend)
    assert _replay_in_batches(sharded, stream, window) == _replay_in_batches(
        serial, stream, window
    )


@given(
    workers=st.sampled_from([2, 4]),
    stream=consistent_streams(max_vertices=8, max_updates=40),
)
@FAST_SETTINGS
def test_sharded_wedge_matrix_is_bit_identical(workers, stream):
    serial = counter_spec("wedge").create(backend="csr", workers=1)
    serial.batch_fast_path_threshold = 1
    sharded = _sharded_counter("wedge", workers)
    serial.apply_batch(list(stream))
    sharded.apply_batch(list(stream))
    assert sharded.count == serial.count
    reference = serial.wedge_matrix
    actual = sharded.wedge_matrix
    assert set(actual.row_labels()) == set(reference.row_labels())
    for label in reference.row_labels():
        assert dict(actual.row(label)) == dict(reference.row(label))


@given(stream=consistent_streams(max_vertices=8, max_updates=40))
@FAST_SETTINGS
def test_thread_policy_matches_serial_policy(stream):
    # One pooled policy exercised end-to-end through a counter; process pools
    # are covered at the matmul layer (tests/matmul/test_sharding.py) where
    # each case pays the fork cost once instead of per hypothesis example.
    updates = list(stream)
    inline = _sharded_counter("hhh22", workers=2, policy="serial")
    pooled = _sharded_counter("hhh22", workers=2, policy="thread")
    inline.apply_batch(updates)
    pooled.apply_batch(updates)
    assert pooled.count == inline.count
    pooled.shard_executor.close()
