"""Property tests for the interned fast paths.

The central invariant of the interning refactor: **the vectorized paths are
pure accelerations** — for any consistent stream, a counter with interning
enabled and one with interning disabled (every fast path falls back to the
seed scalar code) produce identical count trajectories, at batch sizes
covering the per-update path (1), a small odd window (7), and the fast-path
regime (64).
"""

from __future__ import annotations

import pytest

from repro.api import available_counter_names, counter_spec
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import EdgeUpdate

from tests.conftest import random_dynamic_stream

STREAM_LENGTH = 160
BATCH_SIZES = (1, 7, 64)


def _trajectory(name: str, stream, batch_size: int, interned: bool) -> list[int]:
    counter = counter_spec(name).create(interned=interned)
    if batch_size <= 1:
        return [counter.apply(update) for update in stream]
    return [counter.apply_batch(window) for window in stream.batched(batch_size)]


@pytest.mark.parametrize("name", sorted(available_counter_names()))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_interned_and_scalar_trajectories_identical(name, batch_size):
    """Interned and scalar paths agree at every (batch-boundary) count."""
    stream = random_dynamic_stream(num_vertices=14, num_updates=STREAM_LENGTH, seed=23)
    interned = _trajectory(name, stream, batch_size, interned=True)
    scalar = _trajectory(name, stream, batch_size, interned=False)
    assert interned == scalar


@pytest.mark.parametrize("name", sorted(available_counter_names()))
def test_interned_counter_is_consistent_after_mixed_batches(name):
    """Ragged batch sizes through the interned fast paths stay exact."""
    stream = random_dynamic_stream(num_vertices=12, num_updates=120, seed=5)
    counter = counter_spec(name).create(interned=True)
    position = 0
    for size in (1, 7, 64, 3, 45):
        window = stream[position:position + size]
        position += size
        counter.apply_batch(window)
    assert counter.is_consistent()


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_interned_paths_handle_heterogeneous_labels(batch_size):
    """Tuple/string labelled streams run the same through both modes.

    Exercises the interner's label round-trip inside a real counter (the
    wedge counter's batched rebuild exports and re-imports every label).
    """
    base = random_dynamic_stream(num_vertices=10, num_updates=96, seed=11)
    relabel = lambda v: ("shard", v) if v % 2 == 0 else f"v{v}"  # noqa: E731
    stream = [
        EdgeUpdate(relabel(update.u), relabel(update.v), update.kind) for update in base
    ]
    from repro.graph.updates import UpdateStream

    stream = UpdateStream(stream)
    for name in ("brute-force", "wedge", "hhh22"):
        interned = _trajectory(name, stream, batch_size, interned=True)
        scalar = _trajectory(name, stream, batch_size, interned=False)
        assert interned == scalar


def test_interned_graph_batch_equals_scalar_graph_batch():
    """DynamicGraph.apply_batch is mode-independent (vertices included)."""
    stream = random_dynamic_stream(num_vertices=12, num_updates=100, seed=3)
    interned = DynamicGraph()
    scalar = DynamicGraph(interned=False)
    for window in stream.batched(16):
        interned.apply_batch(window)
        scalar.apply_batch(list(window))
    assert interned.to_edge_set() == scalar.to_edge_set()
    assert set(interned.vertices()) == set(scalar.vertices())
