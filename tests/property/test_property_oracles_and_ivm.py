"""Property-based tests for the warm-up oracle, the layered counter, and IVM."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.layered import LayeredFourCycleCounter
from repro.core.oracles import PhaseThreePathOracle
from repro.core.warmup import WarmupThreePathOracle
from repro.db.ivm import CyclicJoinCountView, TupleUpdate

FAST_SETTINGS = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])

pair = st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5))


@given(
    a_edges=st.sets(pair, max_size=12),
    c_edges=st.sets(pair, max_size=12),
    b_toggles=st.lists(pair, max_size=40),
    chunk_size=st.integers(min_value=1, max_value=9),
)
@FAST_SETTINGS
def test_warmup_oracle_matches_naive_for_any_chunking(a_edges, c_edges, b_toggles, chunk_size):
    """For any fixed A and C, any B toggle sequence and any chunk size, the
    warm-up oracle's answer equals direct enumeration, for every query pair."""
    oracle = WarmupThreePathOracle(a_edges, c_edges, chunk_size=chunk_size, high_threshold=3)
    live: set[tuple[int, int]] = set()
    for left, right in b_toggles:
        if (left, right) in live:
            live.discard((left, right))
            oracle.delete(2, left, right)
        else:
            live.add((left, right))
            oracle.insert(2, left, right)
    for u in range(6):
        for v in range(6):
            assert oracle.count_three_paths(u, v) == oracle.count_three_paths_naive(u, v)


layered_toggle = st.tuples(st.sampled_from("ABCD"), pair)


@given(toggles=st.lists(layered_toggle, max_size=45))
@FAST_SETTINGS
def test_layered_counter_matches_recount(toggles):
    """The layered counter equals a from-scratch recount after any toggle
    sequence over all four relations."""
    counter = LayeredFourCycleCounter(
        oracle_factory=lambda: PhaseThreePathOracle(phase_length=7)
    )
    live = {relation: set() for relation in "ABCD"}
    for relation, (left, right) in toggles:
        if (left, right) in live[relation]:
            live[relation].discard((left, right))
            counter.delete(relation, left, right)
        else:
            live[relation].add((left, right))
            counter.insert(relation, left, right)
    assert counter.is_consistent()
    assert counter.count >= 0


@given(toggles=st.lists(layered_toggle, max_size=45))
@FAST_SETTINGS
def test_ivm_view_matches_recomputation(toggles):
    """The maintained join count equals a from-scratch join after any
    consistent tuple toggle sequence."""
    view = CyclicJoinCountView()
    live = {relation: set() for relation in "ABCD"}
    for relation, (left, right) in toggles:
        if (left, right) in live[relation]:
            live[relation].discard((left, right))
            view.apply(TupleUpdate.delete(relation, left, right))
        else:
            live[relation].add((left, right))
            view.apply(TupleUpdate.insert(relation, left, right))
    assert view.is_consistent()


@given(toggles=st.lists(layered_toggle, max_size=40))
@FAST_SETTINGS
def test_layered_count_is_monotone_under_single_relation_growth(toggles):
    """Adding a tuple never decreases the layered 4-cycle count, and deleting
    never increases it (monotonicity of the join under set inclusion)."""
    counter = LayeredFourCycleCounter()
    live = {relation: set() for relation in "ABCD"}
    previous = 0
    for relation, (left, right) in toggles:
        if (left, right) in live[relation]:
            live[relation].discard((left, right))
            current = counter.delete(relation, left, right)
            assert current <= previous
        else:
            live[relation].add((left, right))
            current = counter.insert(relation, left, right)
            assert current >= previous
        previous = current
