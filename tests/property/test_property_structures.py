"""Property-based tests for the core data structures (CountMatrix, graphs,
oracles, and the theory solver)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.oracles import NaiveThreePathOracle, PhaseThreePathOracle
from repro.graph.dynamic_graph import DynamicGraph
from repro.matmul.engine import CountMatrix, DenseBackend, SparseBackend
from repro.theory.constraints import main_constraint_system
from repro.theory.parameters import solve_main_parameters

FAST_SETTINGS = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])

entries_strategy = st.dictionaries(
    keys=st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5)),
    values=st.integers(min_value=-3, max_value=3).filter(lambda value: value != 0),
    max_size=20,
)


@given(entries=entries_strategy)
@FAST_SETTINGS
def test_count_matrix_add_matrix_roundtrip(entries):
    """M + (-M) is the zero matrix (the negative-edge cancellation property)."""
    matrix = CountMatrix(entries)
    negated = CountMatrix({key: -value for key, value in entries.items()})
    matrix.add_matrix(negated)
    assert matrix.nnz == 0


@given(entries=entries_strategy)
@FAST_SETTINGS
def test_count_matrix_transpose_involution(entries):
    matrix = CountMatrix(entries)
    assert matrix.transpose().transpose() == matrix


@given(left=entries_strategy, right=entries_strategy)
@FAST_SETTINGS
def test_sparse_and_dense_backends_agree(left, right):
    left_matrix = CountMatrix(left)
    right_matrix = CountMatrix(right)
    sparse_result, _ = SparseBackend().multiply(left_matrix, right_matrix)
    dense_result, _ = DenseBackend().multiply(left_matrix, right_matrix)
    assert sparse_result == dense_result


@given(
    edges=st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
        max_size=25,
    )
)
@FAST_SETTINGS
def test_degree_sum_equals_twice_edges(edges):
    graph = DynamicGraph()
    for u, v in edges:
        if u != v and not graph.has_edge(u, v):
            graph.insert_edge(u, v)
    assert sum(graph.degree(v) for v in graph.vertices()) == 2 * graph.num_edges


@given(
    updates=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=4),
        ),
        max_size=40,
    ),
    phase_length=st.integers(min_value=1, max_value=10),
)
@FAST_SETTINGS
def test_phase_oracle_always_matches_naive(updates, phase_length):
    """The phase decomposition equals the naive 3-path count at every point."""
    phase = PhaseThreePathOracle(phase_length=phase_length)
    naive = NaiveThreePathOracle()
    for position, left, right in updates:
        present = phase.relation(position).has(left, right)
        sign = -1 if present else +1
        phase.update(position, left, right, sign)
        naive.update(position, left, right, sign)
        for u in range(5):
            for v in range(5):
                assert phase.count_three_paths(u, v) == naive.count_three_paths(u, v)


@given(omega=st.floats(min_value=2.0, max_value=3.0, allow_nan=False))
@FAST_SETTINGS
def test_solved_parameters_always_feasible(omega):
    """Whenever an improvement exists (omega < 2.5) the solved (eps, delta)
    satisfies the whole constraint system; otherwise the solver reports
    eps = 0 (no improvement over [HHH22])."""
    parameters = solve_main_parameters(omega, validate=False)
    assert 0.0 <= parameters.eps <= 1.0 / 6.0
    assert parameters.update_time_exponent <= 2.0 / 3.0
    if parameters.improves_over_previous_work:
        system = main_constraint_system(omega)
        assert system.all_satisfied(parameters.as_dict(), tolerance=1e-9)
    else:
        assert parameters.eps == 0.0 and parameters.delta == 0.0
