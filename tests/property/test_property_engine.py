"""Property tests for the engine facade's semantics.

Two invariants, checked for every registered counter:

* **facade transparency** — driving a stream through a
  :class:`~repro.api.FourCycleEngine` at batch sizes 1/7/64 yields exactly the
  raw counter's per-update count trajectory, sampled at the batch boundaries
  (the facade adds orchestration, never arithmetic);
* **checkpoint equivalence** — checkpointing mid-stream, restoring (through a
  JSON file round-trip), and continuing produces bit-identical counts to an
  engine that never checkpointed, update for update.
"""

from __future__ import annotations

import pytest

from repro.api import EngineConfig, FourCycleEngine, counter_spec

from tests.conftest import random_dynamic_stream

BUILTIN_COUNTERS = ("assadi-shah", "brute-force", "hhh22", "phase-fmm", "wedge")
STREAM_LENGTH = 160
BATCH_SIZES = (1, 7, 64)


def boundary_indices(total: int, batch_size: int) -> list[int]:
    return [min(start + batch_size, total) - 1 for start in range(0, total, batch_size)]


@pytest.mark.parametrize("name", BUILTIN_COUNTERS)
def test_engine_matches_raw_counter_trajectory(name):
    stream = random_dynamic_stream(
        num_vertices=14, num_updates=STREAM_LENGTH, seed=23, delete_fraction=0.35
    )
    raw = counter_spec(name).create()
    trajectory = [raw.apply(update) for update in stream]
    for batch_size in BATCH_SIZES:
        engine = FourCycleEngine(EngineConfig(counter=name, batch_size=batch_size))
        counts = list(engine.stream(stream))
        expected = [trajectory[index] for index in boundary_indices(len(stream), batch_size)]
        assert counts == expected, f"{name} diverged at batch size {batch_size}"
        assert engine.count == trajectory[-1]
        assert engine.is_consistent()


@pytest.mark.parametrize("name", BUILTIN_COUNTERS)
def test_checkpoint_restore_continue_equivalence(name, tmp_path):
    stream = random_dynamic_stream(
        num_vertices=14, num_updates=STREAM_LENGTH, seed=31, delete_fraction=0.35
    )
    half = len(stream) // 2
    prefix, suffix = stream[:half], stream[half:]

    baseline = FourCycleEngine(EngineConfig(counter=name))
    baseline.run(prefix)

    path = tmp_path / f"{name}.json"
    snapshot = baseline.checkpoint(path)
    restored = FourCycleEngine.restore(path)

    # Bit-identical state immediately after the round-trip.
    assert restored.count == snapshot.count == baseline.count
    assert restored.num_edges == baseline.num_edges
    assert restored.updates_processed == baseline.updates_processed

    # Identical trajectories under continued updates.
    continued = [baseline.apply(update) for update in suffix]
    resumed = [restored.apply(update) for update in suffix]
    assert resumed == continued, f"{name} trajectory diverged after restore"
    assert restored.is_consistent()
