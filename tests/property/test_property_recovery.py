"""Property tests for crash recovery: kill at a random write, recover, resume.

The central invariant: for **any** counter, **any** batching regime and **any**
seed-drawn crash point, recovering from the write-ahead log yields an engine
whose count equals the reference trajectory at the durable prefix, and which
then reproduces the remainder of the trajectory bit-identically, update by
update.  The crash point is drawn by the fault injector from the seed
(``at=None``), so the suite sweeps crash-before-write, crash-after-write and
torn final records across window interiors and window boundaries alike.
"""

from __future__ import annotations

import pytest

from repro.api import EngineConfig, FourCycleEngine, available_counter_names
from repro.durability import recover
from repro.exceptions import InjectedCrashError
from repro.faults import (
    ACTION_CRASH,
    ACTION_TORN_WRITE,
    SITE_WAL_APPEND,
    Fault,
    FaultInjector,
)
from tests.conftest import random_dynamic_stream

STREAM_LENGTH = 90
BATCH_SIZES = (1, 7, 64)

FAULTS = {
    "crash": [Fault(SITE_WAL_APPEND, ACTION_CRASH, at=None, horizon=80)],
    "crash-after-write": [
        Fault(SITE_WAL_APPEND, ACTION_CRASH, at=None, horizon=80, payload={"when": "after"})
    ],
    "torn-write": [Fault(SITE_WAL_APPEND, ACTION_TORN_WRITE, at=None, horizon=80)],
}


def windows(updates, batch_size):
    for start in range(0, len(updates), batch_size):
        yield updates[start : start + batch_size]


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("fault_name", sorted(FAULTS))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("counter", sorted(available_counter_names()))
def test_kill_recover_resume_is_bit_identical(counter, batch_size, fault_name, seed, tmp_path):
    updates = list(
        random_dynamic_stream(num_vertices=10, num_updates=STREAM_LENGTH, seed=seed)
    )
    reference = FourCycleEngine(counter)
    trajectory = [reference.apply(update) for update in updates]

    injector = FaultInjector(FAULTS[fault_name], seed=seed)
    wal = tmp_path / "property.wal"
    engine = FourCycleEngine(
        EngineConfig(counter=counter, wal_path=str(wal), snapshot_every=25),
        fault_injector=injector,
    )
    crashed = False
    try:
        for window in windows(updates, batch_size):
            engine.apply_batch(window)
    except InjectedCrashError:
        crashed = True
    assert crashed, "the seed-drawn crash point must fall inside the stream"

    recovered, report = recover(wal)
    durable = report.last_seq + 1
    assert 0 <= durable <= len(updates)
    expected = trajectory[durable - 1] if durable else 0
    assert recovered.count == expected, (
        f"{counter} diverged at the durable prefix "
        f"(batch={batch_size}, fault={fault_name}, seed={seed}, durable={durable})"
    )
    for index in range(durable, len(updates)):
        assert recovered.apply(updates[index]) == trajectory[index], (
            f"{counter} post-recovery trajectory diverged at update {index} "
            f"(batch={batch_size}, fault={fault_name}, seed={seed})"
        )
    assert recovered.count == trajectory[-1]
    assert recovered.is_consistent()
    recovered.close()
