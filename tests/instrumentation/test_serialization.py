"""Tests for stream/metrics persistence."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.graph.reduction import expand_general_update
from repro.graph.updates import EdgeUpdate, UpdateStream
from repro.api import EngineConfig, counter_spec
from repro.instrumentation.harness import run_config
from repro.io import (
    edge_update_from_dict,
    edge_update_to_dict,
    layered_update_from_dict,
    layered_update_to_dict,
    load_layered_updates,
    load_metrics_csv,
    load_stream,
    load_summary_json,
    save_layered_updates,
    save_metrics_csv,
    save_stream,
    save_summary_json,
)
from repro.workloads.generators import erdos_renyi_stream


class TestUpdateDicts:
    def test_edge_update_round_trip(self):
        update = EdgeUpdate.delete("a", "b")
        assert edge_update_from_dict(edge_update_to_dict(update)) == update

    def test_layered_update_round_trip(self):
        updates = expand_general_update(EdgeUpdate.insert(1, 2))
        for update in updates:
            assert layered_update_from_dict(layered_update_to_dict(update)) == update

    def test_malformed_payloads(self):
        with pytest.raises(ConfigurationError):
            edge_update_from_dict({"u": 1, "v": 2, "kind": "replace"})
        with pytest.raises(ConfigurationError):
            layered_update_from_dict({"relation": "A", "left": 1})


class TestStreamFiles:
    def test_stream_round_trip(self, tmp_path):
        stream = erdos_renyi_stream(12, 80, seed=1)
        path = tmp_path / "stream.jsonl"
        save_stream(stream, path)
        loaded = load_stream(path)
        assert loaded == stream

    def test_layered_round_trip(self, tmp_path):
        updates = expand_general_update(EdgeUpdate.insert("x", "y"))
        path = tmp_path / "layered.jsonl"
        save_layered_updates(updates, path)
        assert load_layered_updates(path) == updates

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_stream(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(
            json.dumps(edge_update_to_dict(EdgeUpdate.insert(1, 2))) + "\n\n", encoding="utf-8"
        )
        assert len(load_stream(path)) == 1

    def test_replaying_saved_stream_gives_same_count(self, tmp_path):
        stream = erdos_renyi_stream(14, 100, seed=2)
        path = tmp_path / "stream.jsonl"
        save_stream(stream, path)
        first = counter_spec("wedge").create()
        second = counter_spec("wedge").create()
        first.apply_all(stream)
        second.apply_all(load_stream(path))
        assert first.count == second.count


class TestMetricsFiles:
    def test_metrics_round_trip(self, tmp_path):
        stream = UpdateStream.from_edges([(1, 2), (2, 3), (3, 4), (4, 1)])
        result = run_config(EngineConfig(counter="hhh22"), stream)
        path = tmp_path / "metrics.csv"
        save_metrics_csv(result.metrics, path)
        loaded = load_metrics_csv(path)
        assert len(loaded) == len(result.metrics)
        assert loaded.summary().total_operations == result.metrics.summary().total_operations

    def test_metrics_header_validation(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_metrics_csv(path)

    def test_summary_json_round_trip(self, tmp_path):
        rows = [{"counter": "wedge", "final_count": 3}]
        path = tmp_path / "summary.json"
        save_summary_json(rows, path)
        assert load_summary_json(path) == rows

    def test_summary_json_must_be_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_summary_json(path)


class TestEngineSnapshotFiles:
    def test_save_rejects_incomplete_snapshot(self, tmp_path):
        from repro.io.serialization import save_engine_snapshot

        with pytest.raises(ConfigurationError, match="missing key"):
            save_engine_snapshot({"count": 1}, tmp_path / "snap.json")

    def test_load_rejects_bad_version_and_bad_json(self, tmp_path):
        from repro.io.serialization import load_engine_snapshot, save_engine_snapshot

        path = tmp_path / "snap.json"
        save_engine_snapshot(
            {
                "config": {"counter": "wedge"},
                "count": 0,
                "updates_processed": 0,
                "vertices": [],
                "edges": [],
            },
            path,
        )
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="version"):
            load_engine_snapshot(path)
        path.write_text("not json")
        with pytest.raises(ConfigurationError):
            load_engine_snapshot(path)

    def test_load_converts_edges_to_tuples(self, tmp_path):
        from repro.io.serialization import load_engine_snapshot, save_engine_snapshot

        path = tmp_path / "snap.json"
        save_engine_snapshot(
            {
                "config": {"counter": "wedge"},
                "count": 0,
                "updates_processed": 2,
                "vertices": [1, 2],
                "edges": [(1, 2)],
            },
            path,
        )
        loaded = load_engine_snapshot(path)
        assert loaded["edges"] == [(1, 2)]
