"""Tests for per-update metrics and summary statistics."""

from __future__ import annotations

import pytest

from repro.instrumentation.metrics import (
    UpdateMetrics,
    UpdateRecord,
    fit_power_law,
    percentile,
)


def make_record(index: int, operations: int, edge_count: int = 10) -> UpdateRecord:
    return UpdateRecord(
        index=index,
        operations=operations,
        seconds=operations * 0.001,
        edge_count=edge_count,
        is_insert=True,
    )


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7], 0.99) == 7.0

    def test_median_and_extremes(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 1.0) == 5.0

    def test_interpolation(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestUpdateMetrics:
    def test_summary(self):
        metrics = UpdateMetrics()
        for index, operations in enumerate([1, 2, 3, 4, 100]):
            metrics.record(make_record(index, operations, edge_count=index + 1))
        summary = metrics.summary()
        assert summary.updates == 5
        assert summary.total_operations == 110
        assert summary.max_operations == 100
        assert summary.median_operations == 3
        assert summary.final_edge_count == 5
        assert summary.mean_operations == pytest.approx(22.0)
        assert summary.as_dict()["p99_operations"] >= summary.median_operations

    def test_worst_case_vs_amortized(self):
        metrics = UpdateMetrics()
        for index in range(10):
            metrics.record(make_record(index, 1000 if index == 5 else 1))
        assert metrics.worst_case_operations() == 1000
        assert metrics.amortized_operations() == pytest.approx((9 + 1000) / 10)

    def test_empty_metrics(self):
        metrics = UpdateMetrics()
        assert metrics.worst_case_operations() == 0
        assert metrics.amortized_operations() == 0.0
        assert metrics.summary().updates == 0

    def test_bucketed_by_edge_count(self):
        metrics = UpdateMetrics()
        for index in range(20):
            metrics.record(make_record(index, operations=index, edge_count=index))
        buckets = metrics.bucketed_by_edge_count(bucket_width=10)
        assert set(buckets) == {0, 1}
        assert buckets[0] == pytest.approx(4.5)
        with pytest.raises(ValueError):
            metrics.bucketed_by_edge_count(0)


class TestPowerLawFit:
    def test_recovers_exponent(self):
        edge_counts = [10, 100, 1000, 10_000]
        costs = [m ** 0.66 for m in edge_counts]
        assert fit_power_law(edge_counts, costs) == pytest.approx(0.66, abs=1e-9)

    def test_linear_growth(self):
        edge_counts = [10, 100, 1000]
        costs = [5.0 * m for m in edge_counts]
        assert fit_power_law(edge_counts, costs) == pytest.approx(1.0, abs=1e-9)

    def test_insufficient_points(self):
        assert fit_power_law([10], [3.0]) is None
        assert fit_power_law([], []) is None
        assert fit_power_law([10, 10], [1.0, 2.0]) is None
