"""Tests for the experiment harness."""

from __future__ import annotations

import pytest

from repro.api import EngineConfig, FourCycleEngine
from repro.exceptions import CounterStateError
from repro.instrumentation.harness import (
    compare_counters,
    format_table,
    run_config,
    run_counter,
    run_engine,
    run_validated,
    summary_table,
)
from repro.graph.updates import UpdateStream

from tests.conftest import k4_edges, random_dynamic_stream


class TestRunCounter:
    def test_run_records_metrics_and_counts(self):
        stream = UpdateStream.from_edges(k4_edges())
        result = run_config(EngineConfig(counter="wedge"), stream)
        assert result.final_count == 3
        assert result.stream_length == 6
        assert len(result.counts) == 6
        assert result.metrics is not None and len(result.metrics) == 6
        assert result.summary().updates == 6

    def test_run_without_counts(self):
        stream = UpdateStream.from_edges(k4_edges())
        result = run_config(EngineConfig(counter="wedge"), stream, record_counts=False)
        assert result.counts == []


class TestRunValidated:
    def test_passes_for_correct_counter(self, small_stream):
        result = run_validated(FourCycleEngine("hhh22"), small_stream)
        assert result.validated

    def test_detects_divergence(self):
        class BrokenCounter:
            name = "broken"

            def __init__(self):
                self.inner = FourCycleEngine("wedge").counter
                self.cost = self.inner.cost

            def apply(self, update):
                value = self.inner.apply(update)
                return value + 1  # always wrong

            @property
            def num_edges(self):
                return self.inner.num_edges

            @property
            def count(self):
                return self.inner.count + 1

        stream = UpdateStream.from_edges(k4_edges())
        with pytest.raises(CounterStateError):
            run_validated(BrokenCounter(), stream)

    def test_check_every_validation(self, small_stream):
        result = run_validated(FourCycleEngine("wedge"), small_stream, check_every=5)
        assert result.validated
        with pytest.raises(ValueError):
            run_validated(FourCycleEngine("wedge"), small_stream, check_every=0)


class TestCompareCounters:
    def test_all_counters_agree(self):
        stream = random_dynamic_stream(num_vertices=10, num_updates=60, seed=77)
        results = compare_counters(["brute-force", "wedge", "hhh22"], stream)
        finals = {result.final_count for result in results.values()}
        assert len(finals) == 1

    def test_counter_kwargs(self):
        stream = random_dynamic_stream(num_vertices=8, num_updates=40, seed=78)
        results = compare_counters(
            ["phase-fmm"], stream, counter_kwargs={"phase-fmm": {"phase_length": 5}}
        )
        assert results["phase-fmm"].final_count >= 0

    def test_tables(self):
        stream = random_dynamic_stream(num_vertices=8, num_updates=40, seed=79)
        results = compare_counters(["brute-force", "wedge"], stream)
        rows = summary_table(results)
        assert len(rows) == 2
        rendered = format_table(rows)
        assert "brute-force" in rendered and "wedge" in rendered
        assert format_table([]) == "(no rows)"


class TestBatchedRun:
    def test_batched_run_matches_unbatched_final_state(self):
        stream = random_dynamic_stream(num_vertices=12, num_updates=96, seed=21)
        unbatched = run_config(EngineConfig(counter="wedge"), stream)
        batched = run_config(EngineConfig(counter="wedge", batch_size=16), stream)
        assert batched.final_count == unbatched.final_count
        assert batched.final_edge_count == unbatched.final_edge_count
        assert batched.stream_length == len(stream)
        # One metrics record and one count per window.
        assert len(batched.metrics) == 6
        assert len(batched.counts) == 6
        assert batched.counts[-1] == unbatched.counts[-1]

    def test_batched_counts_are_boundary_counts(self):
        stream = random_dynamic_stream(num_vertices=10, num_updates=60, seed=3)
        unbatched = run_config(EngineConfig(counter="brute-force"), stream)
        batched = run_config(EngineConfig(counter="brute-force", batch_size=20), stream)
        assert batched.counts == unbatched.counts[19::20]

    def test_compare_counters_batched(self):
        stream = random_dynamic_stream(num_vertices=10, num_updates=64, seed=5)
        results = compare_counters(["brute-force", "wedge"], stream, batch_size=32)
        finals = {result.final_count for result in results.values()}
        assert len(finals) == 1


class TestRunEngine:
    def test_engine_batch_size_comes_from_config(self):
        stream = random_dynamic_stream(num_vertices=10, num_updates=60, seed=9)
        engine = FourCycleEngine(EngineConfig(counter="wedge", batch_size=20))
        result = run_engine(engine, stream)
        assert len(result.counts) == 3  # one boundary count per window
        assert result.final_count == engine.count

    def test_explicit_batch_size_overrides_config(self):
        stream = random_dynamic_stream(num_vertices=10, num_updates=60, seed=9)
        engine = FourCycleEngine(EngineConfig(counter="wedge", batch_size=20))
        result = run_engine(engine, stream, batch_size=1)
        assert len(result.counts) == len(stream)


class TestDeprecatedShims:
    def test_run_counter_warns_and_still_works(self):
        stream = UpdateStream.from_edges(k4_edges())
        counter = FourCycleEngine("wedge").counter
        with pytest.warns(DeprecationWarning, match="run_counter"):
            result = run_counter(counter, stream)
        assert result.final_count == 3
