"""Tests for the operation-count cost model."""

from __future__ import annotations

from repro.instrumentation.cost_model import STANDARD_CATEGORIES, CostModel


class TestCostModel:
    def test_charge_and_total(self):
        cost = CostModel()
        cost.charge("adjacency_probe")
        cost.charge("adjacency_probe", 4)
        cost.charge("matmul_ops", 10)
        assert cost.get("adjacency_probe") == 5
        assert cost.total() == 15

    def test_charge_zero_is_noop(self):
        cost = CostModel()
        cost.charge("x", 0)
        assert cost.total() == 0
        assert cost.as_dict() == {}

    def test_reset(self):
        cost = CostModel()
        cost.charge("x", 3)
        cost.reset()
        assert cost.total() == 0

    def test_merge(self):
        first = CostModel()
        second = CostModel()
        first.charge("a", 1)
        second.charge("a", 2)
        second.charge("b", 3)
        first.merge(second)
        assert first.get("a") == 3
        assert first.get("b") == 3

    def test_standard_categories_exposed(self):
        assert "matmul_ops" in STANDARD_CATEGORIES
        assert "neighborhood_scan" in STANDARD_CATEGORIES


class TestSnapshots:
    def test_snapshot_is_frozen_copy(self):
        cost = CostModel()
        cost.charge("a", 1)
        snapshot = cost.snapshot()
        cost.charge("a", 5)
        assert snapshot.get("a") == 1
        assert snapshot.total == 1

    def test_diff(self):
        cost = CostModel()
        cost.charge("a", 2)
        before = cost.snapshot()
        cost.charge("a", 3)
        cost.charge("b", 1)
        delta = cost.snapshot().diff(before)
        assert delta.get("a") == 3
        assert delta.get("b") == 1
        assert delta.total == 4

    def test_snapshot_iteration(self):
        cost = CostModel()
        cost.charge("a", 2)
        assert dict(cost.snapshot()) == {"a": 2}
