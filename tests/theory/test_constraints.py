"""Tests for the constraint systems of Sections 3.4 and 4."""

from __future__ import annotations

import pytest

from repro.exceptions import ConstraintError
from repro.matmul.omega import best_omega_model, current_omega_model
from repro.theory.constraints import (
    Constraint,
    main_constraint_system,
    warmup_constraint_system,
)


class TestConstraintObjects:
    def test_evaluation_and_slack(self):
        constraint = Constraint(
            name="toy",
            description="x <= 1",
            lhs=lambda params: params["x"],
            rhs=lambda params: 1.0,
        )
        ok = constraint.evaluate({"x": 0.5})
        assert ok.satisfied and ok.slack == pytest.approx(0.5)
        bad = constraint.evaluate({"x": 2.0})
        assert not bad.satisfied and bad.slack == pytest.approx(-1.0)

    def test_tolerance(self):
        constraint = Constraint("tight", "", lambda p: 1.0 + 1e-12, lambda p: 1.0)
        assert constraint.evaluate({}, tolerance=1e-9).satisfied


class TestMainSystem:
    def test_published_current_parameters_satisfy_all(self):
        system = main_constraint_system(2.371339)
        assert system.all_satisfied({"eps": 0.0098109, "delta": 0.0294327}, tolerance=1e-6)

    def test_published_best_parameters_satisfy_all(self):
        system = main_constraint_system(2.0)
        assert system.all_satisfied({"eps": 1 / 24, "delta": 1 / 8})

    def test_eps_too_large_violates_phase_constraint(self):
        system = main_constraint_system(2.371339)
        evaluations = system.evaluate({"eps": 0.05, "delta": 0.15})
        phase = next(e for e in evaluations if "Eq(9)" in e.name)
        assert not phase.satisfied

    def test_delta_below_three_eps_violates(self):
        system = main_constraint_system(2.0)
        evaluations = system.evaluate({"eps": 0.04, "delta": 0.05})
        pair = next(e for e in evaluations if "Eq(10)" in e.name)
        assert not pair.satisfied

    def test_require_raises_with_details(self):
        system = main_constraint_system(2.371339)
        with pytest.raises(ConstraintError):
            system.require({"eps": 0.2, "delta": 0.0})

    def test_omega_three_has_no_positive_eps(self):
        """With omega = 3 even eps slightly above zero breaks Eq. (9)."""
        system = main_constraint_system(3.0)
        assert not system.all_satisfied({"eps": 0.001, "delta": 0.003})
        assert system.all_satisfied({"eps": 0.0, "delta": 0.0}) is False  # (omega-1)*2/3 > 1
