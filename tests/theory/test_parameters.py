"""Tests for parameter solving: reproduces the Theorem 1/2 constants."""

from __future__ import annotations

import pytest

from repro.exceptions import ConstraintError
from repro.matmul.omega import best_omega_model, current_omega_model, naive_omega_model
from repro.theory.constraints import warmup_constraint_system
from repro.theory.parameters import (
    published_parameters,
    solve_main_parameters,
    solve_warmup_parameters,
    sweep_omega,
    verify_published_parameters,
)


class TestMainParameters:
    def test_current_omega_reproduces_published_eps(self):
        """Theorem 1: omega = 2.371339 gives eps = 0.009811."""
        parameters = solve_main_parameters(2.371339)
        assert parameters.eps == pytest.approx(0.0098109, abs=1e-6)
        assert parameters.delta == pytest.approx(0.0294327, abs=1e-6)
        assert parameters.update_time_exponent == pytest.approx(2 / 3 - 0.0098109, abs=1e-6)
        assert parameters.improves_over_previous_work

    def test_best_omega_reproduces_one_twentyfourth(self):
        """Theorem 1: omega = 2 gives eps = 1/24 and delta = 1/8."""
        parameters = solve_main_parameters(2.0)
        assert parameters.eps == pytest.approx(1 / 24)
        assert parameters.delta == pytest.approx(1 / 8)
        assert parameters.update_time_exponent == pytest.approx(0.625)

    def test_update_exponent_value_from_abstract(self):
        """The abstract: the update time improves from m^0.66 to m^0.65686."""
        parameters = solve_main_parameters(2.371339)
        assert parameters.update_time_exponent == pytest.approx(0.65686, abs=1e-5)

    def test_no_improvement_at_or_above_2_5(self):
        """Above omega = 2.5 the phase approach is infeasible and the solver
        falls back to eps = 0 (i.e. the [HHH22] bound)."""
        assert solve_main_parameters(2.5).eps == 0.0
        assert solve_main_parameters(2.8).eps == 0.0
        assert solve_main_parameters(3.0).eps == 0.0
        assert not solve_main_parameters(2.6).improves_over_previous_work

    def test_strassen_not_sufficient(self):
        """Any bound better than 3 (like Strassen's 2.807) is not sufficient."""
        import math

        parameters = solve_main_parameters(math.log2(7))
        assert parameters.eps == 0.0
        assert not parameters.improves_over_previous_work

    def test_invalid_omega(self):
        with pytest.raises(ConstraintError):
            solve_main_parameters(1.9)
        with pytest.raises(ConstraintError):
            solve_main_parameters(3.1)

    def test_phase_length_exponent(self):
        parameters = solve_main_parameters(2.0)
        assert parameters.phase_length_exponent == pytest.approx(7 / 8)


class TestWarmupParameters:
    def test_best_possible_reproduces_published(self):
        """Section 3.4: with the best possible rectangular exponent,
        eps1 = 1/24 and eps2 = 5/24 (for eps = 1/24)."""
        parameters = solve_warmup_parameters(eps=1 / 24, model=best_omega_model())
        assert parameters.eps1 == pytest.approx(1 / 24, abs=1e-6)
        assert parameters.eps2 == pytest.approx(5 / 24, abs=1e-6)

    def test_solution_satisfies_all_constraints(self):
        model = current_omega_model()
        eps = solve_main_parameters().eps
        parameters = solve_warmup_parameters(eps=eps, model=model)
        system = warmup_constraint_system(model, eps)
        assert system.all_satisfied(parameters.as_dict(), tolerance=1e-6)
        assert parameters.eps1 > 0

    def test_eps2_relation(self):
        parameters = solve_warmup_parameters(eps=0.01, model=best_omega_model())
        assert parameters.eps2 == pytest.approx(3 * parameters.eps1 + 2 * 0.01)

    def test_warmup_exponent_at_least_main(self):
        """The paper needs eps1 >= eps so the subroutine fits the main budget."""
        main = solve_main_parameters(2.371339)
        warmup = solve_warmup_parameters(eps=main.eps, model=current_omega_model())
        assert warmup.eps1 >= main.eps

    def test_naive_model_still_feasible_at_zero(self):
        parameters = solve_warmup_parameters(eps=0.0, model=naive_omega_model())
        assert parameters.eps1 >= 0.0

    def test_negative_eps_rejected(self):
        with pytest.raises(ConstraintError):
            solve_warmup_parameters(eps=-0.1)

    def test_chunk_exponents(self):
        parameters = solve_warmup_parameters(eps=1 / 24, model=best_omega_model())
        assert parameters.chunk_size_exponent == pytest.approx(2 / 3 - parameters.eps1)
        assert parameters.chunk_dense_threshold_exponent == pytest.approx(1 / 3 - parameters.eps2)


class TestPublishedParameters:
    def test_published_values(self):
        current = published_parameters("current")
        assert current.main.eps == pytest.approx(0.0098109)
        assert current.warmup.eps1 == pytest.approx(0.04201965)
        assert current.warmup.eps2 == pytest.approx(0.14568075)
        best = published_parameters("best")
        assert best.main.eps == pytest.approx(1 / 24)
        assert best.warmup.eps2 == pytest.approx(5 / 24)

    def test_unknown_set_rejected(self):
        with pytest.raises(ConstraintError):
            published_parameters("other")

    @pytest.mark.parametrize("which", ["current", "best"])
    def test_appendix_b_verification(self, which):
        """Appendix B: the published constants satisfy every constraint."""
        report = verify_published_parameters(which)
        assert report.all_satisfied
        assert len(report.main_evaluations) == 3
        assert len(report.warmup_evaluations) == 5

    def test_solver_matches_published_within_rounding(self):
        solved = solve_main_parameters(2.371339)
        published = published_parameters("current")
        assert solved.eps == pytest.approx(published.main.eps, abs=1e-6)


class TestSweep:
    def test_sweep_monotone_in_omega(self):
        rows = sweep_omega([2.0, 2.2, 2.371339, 2.5, 2.8])
        eps_values = [row.eps for row in rows]
        assert eps_values == sorted(eps_values, reverse=True)
        assert eps_values[-1] == 0.0
        assert eps_values[0] == pytest.approx(1 / 24)
