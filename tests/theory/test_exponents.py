"""Tests for the exponent comparison tables."""

from __future__ import annotations

import pytest

from repro.theory.exponents import (
    HHH22_EXPONENT,
    LOWER_BOUND_EXPONENT,
    comparison_table,
    improvement_margin,
    improvement_threshold,
    omega_sweep,
    predicted_speedup,
    update_time_exponent,
)


class TestHeadlineNumbers:
    def test_update_time_exponent_current(self):
        assert update_time_exponent(2.371339) == pytest.approx(0.65686, abs=1e-5)

    def test_update_time_exponent_best(self):
        assert update_time_exponent(2.0) == pytest.approx(0.625)

    def test_improvement_margin(self):
        assert improvement_margin(2.371339) == pytest.approx(0.0098109, abs=1e-6)
        assert improvement_margin(2.9) == 0.0

    def test_threshold(self):
        assert improvement_threshold() == 2.5


class TestComparisonTable:
    def test_ordering_of_bounds(self):
        rows = {row.algorithm: row.exponent for row in comparison_table()}
        lower = rows["OMv conditional lower bound"]
        previous = rows["HHH22 (previous best upper bound)"]
        new_current = next(v for k, v in rows.items() if "2.371339" in k or "2.37134" in k)
        new_best = rows["This paper (omega = 2)"]
        assert lower == LOWER_BOUND_EXPONENT
        assert previous == HHH22_EXPONENT
        # The headline claim: lower bound < new (best) < new (current) < previous.
        assert lower < new_best < new_current < previous

    def test_predicted_cost(self):
        rows = comparison_table()
        for row in rows:
            assert row.predicted_cost(10_000) == pytest.approx(10_000 ** row.exponent)


class TestOmegaSweep:
    def test_sweep_shape(self):
        rows = omega_sweep([2.0, 2.25, 2.5, 2.75, 3.0])
        assert [row.improves for row in rows] == [True, True, False, False, False]
        exponents = [row.update_time_exponent for row in rows]
        assert exponents == sorted(exponents)
        assert exponents[-1] == pytest.approx(2 / 3)

    def test_predicted_speedup_grows_with_m(self):
        assert predicted_speedup(10 ** 6) > predicted_speedup(10 ** 3) > 1.0
