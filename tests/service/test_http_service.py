"""End-to-end HTTP tests: real sockets against a running service.

Every test drives a :class:`~repro.service.app.ServiceRunner` (the service on
its own event-loop thread) from synchronous client code — stdlib
``http.client`` for keep-alive request sequences, a raw socket for the SSE
stream — so the full parse/route/respond path is exercised exactly the way an
external client sees it.
"""

from __future__ import annotations

import http.client
import json
import socket

import pytest

from repro.service import ServiceRunner


@pytest.fixture()
def service():
    with ServiceRunner() as runner:
        yield runner


def request(runner, method, path, payload=None):
    """One request over one fresh connection; returns (status, decoded body)."""
    host, port = runner.address
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        connection.close()


def make_engine(runner, name, config=None):
    status, body = request(
        runner, "POST", "/engines", {"name": name, "config": config or {"counter": "wedge"}}
    )
    assert status == 201, body
    return body


K4_CYCLE = [
    {"u": 1, "v": 2, "kind": "insert"},
    {"u": 2, "v": 3, "kind": "insert"},
    {"u": 3, "v": 4, "kind": "insert"},
    {"u": 4, "v": 1, "kind": "insert"},
]


class TestLifecycle:
    def test_health_and_engine_roundtrip(self, service):
        assert request(service, "GET", "/health") == (
            200,
            {"status": "ok", "engines": 0, "names": []},
        )
        created = make_engine(service, "alpha")
        assert created["engine"] == "alpha" and created["counter"] == "wedge"
        status, listing = request(service, "GET", "/engines")
        assert status == 200
        assert [engine["engine"] for engine in listing["engines"]] == ["alpha"]
        status, summary = request(service, "GET", "/engines/alpha")
        assert status == 200 and summary["count"] == 0
        status, deleted = request(service, "DELETE", "/engines/alpha")
        assert status == 200 and deleted["deleted"] == "alpha"
        assert request(service, "GET", "/health")[1]["engines"] == 0

    def test_ingest_counts_vertices_consistency(self, service):
        make_engine(service, "alpha")
        status, applied = request(
            service, "POST", "/engines/alpha/updates", {"updates": K4_CYCLE}
        )
        assert status == 200
        assert applied["applied"] == 4 and applied["count"] == 1
        status, counts = request(service, "GET", "/engines/alpha/counts")
        assert status == 200
        assert counts["count"] == 1 and counts["num_edges"] == 4
        status, vertices = request(service, "GET", "/engines/alpha/vertices?top=2")
        assert status == 200
        assert len(vertices["top"]) == 2
        assert all(entry["degree"] == 2 for entry in vertices["top"])
        status, vertex = request(service, "GET", "/engines/alpha/vertices/3")
        assert status == 200 and vertex["degree"] == 2
        status, verdict = request(service, "GET", "/engines/alpha/consistency")
        assert status == 200 and verdict["consistent"] is True

    def test_tuple_ingestion(self, service):
        make_engine(service, "joins")
        tuples = [
            {"relation": relation, "left": 1, "right": 1, "kind": "insert"}
            for relation in "ABCD"
        ]
        status, applied = request(
            service, "POST", "/engines/joins/updates", {"tuples": tuples}
        )
        assert status == 200
        # One tuple per relation with matching keys closes one 4-cycle.
        assert applied["count"] == 1

    def test_durable_engine_compact(self, service, tmp_path):
        make_engine(
            service,
            "durable",
            {"counter": "wedge", "wal_path": str(tmp_path / "run.wal")},
        )
        status, applied = request(
            service, "POST", "/engines/durable/updates", {"updates": K4_CYCLE}
        )
        assert status == 200 and applied["last_durable_seq"] == 3
        status, compacted = request(service, "POST", "/engines/durable/compact")
        assert status == 200 and compacted["remaining_records"] == 0

    def test_keep_alive_connection_reuse(self, service):
        make_engine(service, "alpha")
        host, port = service.address
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for index in range(5):
                connection.request(
                    "POST",
                    "/engines/alpha/updates",
                    body=json.dumps(
                        {"updates": [{"u": index, "v": index + 50, "kind": "insert"}]}
                    ),
                )
                response = connection.getresponse()
                body = json.loads(response.read())
                assert response.status == 200
                assert body["updates_processed"] == index + 1
        finally:
            connection.close()


class TestProtocolErrors:
    def test_unknown_engine_404(self, service):
        status, body = request(service, "GET", "/engines/ghost/counts")
        assert status == 404 and body["type"] == "UnknownEngineError"

    def test_unknown_route_404(self, service):
        assert request(service, "GET", "/nope")[0] == 404
        make_engine(service, "alpha")
        assert request(service, "GET", "/engines/alpha/nope")[0] == 404

    def test_method_mismatch_405(self, service):
        make_engine(service, "alpha")
        assert request(service, "DELETE", "/health")[0] == 405
        assert request(service, "GET", "/engines/alpha/compact")[0] == 405
        assert request(service, "POST", "/engines/alpha/counts")[0] == 405

    def test_duplicate_engine_409(self, service):
        make_engine(service, "alpha")
        status, body = request(
            service, "POST", "/engines", {"name": "alpha", "config": {"counter": "wedge"}}
        )
        assert status == 409 and body["type"] == "DuplicateEngineError"

    def test_malformed_bodies_400(self, service):
        make_engine(service, "alpha")
        host, port = service.address
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("POST", "/engines", body="{not json")
            assert connection.getresponse().status == 400
        finally:
            connection.close()
        # Exactly one of updates/tuples, and the batch must be non-empty.
        for body in (
            {},
            {"updates": [], "tuples": []},
            {"updates": [{"u": 1, "v": 2, "kind": "insert"}], "tuples": []},
            {"updates": []},
            {"updates": [{"u": 1, "v": 2, "kind": "warp"}]},
        ):
            status, answer = request(service, "POST", "/engines/alpha/updates", body)
            assert status == 400, answer

    def test_invalid_config_400(self, service):
        status, body = request(
            service, "POST", "/engines", {"name": "bad", "config": {"counter": "nope"}}
        )
        assert status == 400 and body["type"] == "ConfigurationError"

    def test_rejected_update_leaves_engine_healthy(self, service):
        make_engine(service, "alpha")
        status, body = request(
            service,
            "POST",
            "/engines/alpha/updates",
            {"updates": [{"u": 7, "v": 8, "kind": "delete"}]},
        )
        assert status == 400
        status, summary = request(service, "GET", "/engines/alpha")
        assert status == 200 and summary["failed"] is None
        status, applied = request(
            service, "POST", "/engines/alpha/updates", {"updates": K4_CYCLE}
        )
        assert status == 200 and applied["count"] == 1

    def test_unknown_event_kind_400(self, service):
        make_engine(service, "alpha")
        status, body = request(service, "GET", "/engines/alpha/events?kinds=warp")
        assert status == 400 and "unknown event kind" in body["error"]


class TestEventStream:
    def read_sse_frames(self, service, path, poke):
        """Open an SSE stream, run ``poke`` to generate traffic, return frames."""
        host, port = service.address
        sock = socket.create_connection((host, port), timeout=30)
        try:
            sock.sendall(
                f"GET {path} HTTP/1.1\r\nhost: {host}\r\n\r\n".encode("latin-1")
            )
            # Wait for the preamble before generating events, so the
            # subscription provably precedes the traffic it observes.
            preamble = b""
            while b"\r\n\r\n" not in preamble:
                preamble += sock.recv(4096)
            assert b"text/event-stream" in preamble
            poke()
            blob = preamble.split(b"\r\n\r\n", 1)[1]
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                blob += chunk
        finally:
            sock.close()
        frames = []
        for frame in blob.decode("utf-8").strip().split("\n\n"):
            lines = frame.split("\n")
            kind = lines[0].removeprefix("event: ")
            payload = json.loads(lines[1].removeprefix("data: "))
            frames.append((kind, payload))
        return frames

    def test_stream_delivers_filtered_events(self, service):
        make_engine(service, "alpha")

        def poke():
            for index in range(3):
                status, _ = request(
                    service,
                    "POST",
                    "/engines/alpha/updates",
                    {
                        "updates": [
                            {"u": index, "v": index + 10, "kind": "insert"},
                            {"u": index, "v": index + 20, "kind": "insert"},
                        ]
                    },
                )
                assert status == 200

        frames = self.read_sse_frames(
            service, "/engines/alpha/events?kinds=batch-applied&limit=3", poke
        )
        assert [kind for kind, _ in frames] == ["batch-applied"] * 3
        assert [payload["updates_processed"] for _, payload in frames] == [2, 4, 6]
        assert all(payload["engine"] == "alpha" for _, payload in frames)

    def test_stream_ends_with_engine_closed(self, service):
        make_engine(service, "alpha")

        def poke():
            assert request(service, "DELETE", "/engines/alpha")[0] == 200

        frames = self.read_sse_frames(service, "/engines/alpha/events", poke)
        assert frames[-1][0] == "engine-closed"

    def test_stream_for_unknown_engine_404(self, service):
        host, port = service.address
        sock = socket.create_connection((host, port), timeout=30)
        try:
            sock.sendall(b"GET /engines/ghost/events HTTP/1.1\r\nhost: x\r\n\r\n")
            blob = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                blob += chunk
        finally:
            sock.close()
        assert blob.startswith(b"HTTP/1.1 404")
