"""Service crash/restart: a served engine dies mid-batch and recovers.

The scenario the always-on layer exists for: a durable tenant fail-stops in
the middle of an ingestion batch (injected WAL-append crash), the service
answers 503 for that tenant from then on, and a *restarted* service re-creates
the tenant from its write-ahead log with bit-identical counts — everything the
service acknowledged before the crash survives, nothing from the doomed batch
leaks in.
"""

from __future__ import annotations

import http.client
import json

from repro.api import EngineConfig, FourCycleEngine
from repro.faults import ACTION_CRASH, SITE_WAL_APPEND, Fault, FaultInjector
from repro.graph.updates import EdgeUpdate
from repro.service import ServiceRunner

from tests.conftest import random_dynamic_stream


def request(runner, method, path, payload=None):
    host, port = runner.address
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        connection.close()


def to_payload(batch):
    return {"updates": [{"u": u.u, "v": u.v, "kind": u.kind.value} for u in batch]}


class TestServedEngineRecovery:
    def test_crash_mid_batch_then_restart_recovers_bit_identical(self, tmp_path):
        wal_path = str(tmp_path / "served.wal")
        config = {"counter": "wedge", "wal_path": wal_path, "track_costs": False}
        updates = list(random_dynamic_stream(num_vertices=10, num_updates=60, seed=33))
        batch_size = 5
        batches = [
            updates[i : i + batch_size] for i in range(0, len(updates), batch_size)
        ]
        # Crash while appending the 18th record: mid-batch 4 (records 15-19),
        # so batches 1-3 are acknowledged history and batch 4 must vanish.
        crash_record = 17

        acknowledged = []
        with ServiceRunner() as runner:
            runner.run(
                runner.service.registry.create(
                    "served",
                    config,
                    fault_injector=FaultInjector(
                        [Fault(SITE_WAL_APPEND, ACTION_CRASH, at=crash_record)]
                    ),
                )
            )
            crashed_at = None
            for index, batch in enumerate(batches):
                status, body = request(
                    runner, "POST", "/engines/served/updates", to_payload(batch)
                )
                if status != 200:
                    assert status == 503, body
                    crashed_at = index
                    break
                acknowledged.append(body)
            assert crashed_at is not None, "the injected crash never fired"
            assert crashed_at == crash_record // batch_size
            # From now on the tenant is fail-stopped: 503 with recovery advice.
            status, body = request(
                runner, "POST", "/engines/served/updates", to_payload(batches[0])
            )
            assert status == 503 and body["type"] == "EngineFailedError"
            assert "recover" in body["error"]
            status, summary = request(runner, "GET", "/engines/served")
            assert status == 200 and summary["failed"] is not None

        last_good = acknowledged[-1]
        assert last_good["updates_processed"] == crashed_at * batch_size

        # Restart: a fresh service process re-creates the tenant from its log.
        with ServiceRunner() as runner:
            status, summary = request(
                runner,
                "POST",
                "/engines",
                {"name": "served", "config": config, "recover": "always"},
            )
            assert status == 201, summary
            assert summary["recovered"] is True
            # Every acknowledged update survived the crash; the doomed batch
            # died mid-append, so at most a durable *prefix* of it can appear
            # in the log (the 503 told the client the batch is indeterminate).
            recovered = summary["updates_processed"]
            assert last_good["updates_processed"] <= recovered
            assert recovered < (crashed_at + 1) * batch_size
            assert summary["last_durable_seq"] == recovered - 1
            # Bit-identical to an engine that replayed exactly the durable
            # prefix of the stream and never crashed at all.
            reference = FourCycleEngine(EngineConfig(counter="wedge"))
            for update in updates[:recovered]:
                reference.apply(update)
            assert summary["count"] == reference.count
            status, verdict = request(runner, "GET", "/engines/served/consistency")
            assert status == 200 and verdict["consistent"] is True

            # The recovered tenant ingests the rest of the doomed batch and
            # carries on exactly where the durable prefix left off.
            remainder = updates[recovered : (crashed_at + 1) * batch_size]
            reference.apply_batch(remainder)
            status, body = request(
                runner, "POST", "/engines/served/updates", to_payload(remainder)
            )
            assert status == 200 and body["count"] == reference.count
            assert body["updates_processed"] == (crashed_at + 1) * batch_size

    def test_restart_with_auto_recovery_resumes_quietly(self, tmp_path):
        """``recover="auto"`` (the default) picks up an existing log without
        the caller having to know whether the tenant is new or returning."""
        config = {"counter": "wedge", "wal_path": str(tmp_path / "quiet.wal")}
        with ServiceRunner() as runner:
            assert request(
                runner, "POST", "/engines", {"name": "quiet", "config": config}
            )[0] == 201
            status, body = request(
                runner,
                "POST",
                "/engines/quiet/updates",
                {
                    "updates": [
                        {"u": a, "v": b, "kind": "insert"}
                        for a, b in ((1, 2), (2, 3), (3, 4), (4, 1))
                    ]
                },
            )
            assert status == 200 and body["count"] == 1
            # A graceful stop closes the engine cleanly; the log remains.

        with ServiceRunner() as runner:
            status, summary = request(
                runner, "POST", "/engines", {"name": "quiet", "config": config}
            )
            assert status == 201 and summary["recovered"] is True
            assert summary["count"] == 1 and summary["updates_processed"] == 4

    def test_fresh_durable_tenant_does_not_recover(self, tmp_path):
        config = {"counter": "wedge", "wal_path": str(tmp_path / "fresh.wal")}
        with ServiceRunner() as runner:
            status, summary = request(
                runner, "POST", "/engines", {"name": "fresh", "config": config}
            )
            assert status == 201 and summary["recovered"] is False


class TestInjectedCrashOverRegistryApi:
    def test_failed_tenant_can_be_replaced_in_place(self, tmp_path):
        """Delete-then-recreate recovers a fail-stopped tenant inside one
        service lifetime (no restart needed): the WAL survives the delete
        because the failed engine's log handle was already released."""
        wal_path = str(tmp_path / "replace.wal")
        config = {"counter": "wedge", "wal_path": wal_path, "track_costs": False}
        with ServiceRunner() as runner:
            runner.run(
                runner.service.registry.create(
                    "phoenix",
                    config,
                    fault_injector=FaultInjector(
                        [Fault(SITE_WAL_APPEND, ACTION_CRASH, at=3)]
                    ),
                )
            )
            good = [EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 3), EdgeUpdate.insert(3, 4)]
            status, body = request(
                runner, "POST", "/engines/phoenix/updates", to_payload(good)
            )
            assert status == 200 and body["updates_processed"] == 3
            status, body = request(
                runner,
                "POST",
                "/engines/phoenix/updates",
                to_payload([EdgeUpdate.insert(4, 1)]),
            )
            assert status == 503
            assert request(runner, "DELETE", "/engines/phoenix")[0] == 200
            status, summary = request(
                runner,
                "POST",
                "/engines",
                {"name": "phoenix", "config": config, "recover": "always"},
            )
            assert status == 201 and summary["recovered"] is True
            assert summary["updates_processed"] == 3
            status, body = request(
                runner,
                "POST",
                "/engines/phoenix/updates",
                to_payload([EdgeUpdate.insert(4, 1)]),
            )
            assert status == 200 and body["count"] == 1
