"""The engine registry: tenancy CRUD, the writer/view model, fail-stop."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import EngineConfig, FourCycleEngine
from repro.exceptions import (
    ConfigurationError,
    InjectedCrashError,
    MissingEdgeError,
)
from repro.faults import ACTION_CRASH, SITE_WAL_APPEND, Fault, FaultInjector
from repro.graph.updates import EdgeUpdate
from repro.service import (
    DuplicateEngineError,
    EngineFailedError,
    EngineRegistry,
    UnknownEngineError,
)

from tests.conftest import random_dynamic_stream


def drive(coroutine_function):
    """Run one async registry scenario on a fresh event loop."""
    return asyncio.run(coroutine_function())


class TestTenancy:
    def test_create_get_delete_roundtrip(self):
        async def scenario():
            registry = EngineRegistry()
            managed = await registry.create("alpha", {"counter": "wedge"})
            assert registry.get("alpha") is managed
            assert registry.names() == ["alpha"]
            assert len(registry) == 1
            summary = await registry.delete("alpha")
            assert summary["engine"] == "alpha"
            assert registry.names() == []
            with pytest.raises(UnknownEngineError, match="alpha"):
                registry.get("alpha")

        drive(scenario)

    def test_create_accepts_config_object_and_dict(self):
        async def scenario():
            registry = EngineRegistry()
            from_object = await registry.create(
                "obj", EngineConfig(counter="brute-force")
            )
            from_dict = await registry.create("dict", {"counter": "brute-force"})
            assert from_object.engine.config == from_dict.engine.config
            await registry.close()

        drive(scenario)

    def test_duplicate_name_conflicts(self):
        async def scenario():
            registry = EngineRegistry()
            await registry.create("alpha", {"counter": "wedge"})
            with pytest.raises(DuplicateEngineError, match="alpha"):
                await registry.create("alpha", {"counter": "wedge"})
            await registry.close()

        drive(scenario)

    @pytest.mark.parametrize("name", ["", ".hidden", "spaces in name", "a" * 65, 7])
    def test_invalid_names_rejected(self, name):
        async def scenario():
            registry = EngineRegistry()
            with pytest.raises(ConfigurationError, match="name"):
                await registry.create(name, {"counter": "wedge"})

        drive(scenario)

    def test_recover_always_demands_history(self, tmp_path):
        async def scenario():
            registry = EngineRegistry()
            with pytest.raises(ConfigurationError, match="always"):
                await registry.create(
                    "durable",
                    {"counter": "wedge", "wal_path": str(tmp_path / "fresh.wal")},
                    recover="always",
                )
            with pytest.raises(ConfigurationError, match="recover"):
                await registry.create(
                    "durable", {"counter": "wedge"}, recover="sometimes"
                )

        drive(scenario)

    def test_close_shuts_every_tenant(self):
        async def scenario():
            registry = EngineRegistry()
            first = await registry.create("one", {"counter": "wedge"})
            second = await registry.create("two", {"counter": "wedge"})
            await registry.close()
            assert len(registry) == 0
            assert first.closed and second.closed
            with pytest.raises(UnknownEngineError):
                await first.apply_updates([EdgeUpdate.insert(1, 2)])

        drive(scenario)


class TestWriterModel:
    def test_apply_updates_resolves_at_batch_boundary(self):
        async def scenario():
            registry = EngineRegistry()
            managed = await registry.create("alpha", {"counter": "wedge"})
            result = await managed.apply_updates(
                [EdgeUpdate.insert(a, b) for a, b in ((1, 2), (2, 3), (3, 4), (4, 1))]
            )
            assert result == {
                "engine": "alpha",
                "applied": 4,
                "count": 1,
                "updates_processed": 4,
                "last_durable_seq": -1,
            }
            assert managed.view.counts_payload()["count"] == 1
            await registry.close()

        drive(scenario)

    def test_rejected_update_fails_request_not_tenant(self):
        async def scenario():
            registry = EngineRegistry()
            managed = await registry.create("alpha", {"counter": "wedge"})
            await managed.apply_updates([EdgeUpdate.insert(1, 2)])
            with pytest.raises(MissingEdgeError):
                await managed.apply_updates([EdgeUpdate.delete(8, 9)])
            # Validation precedes mutation on the non-durable path, so the
            # tenant stays healthy and keeps accepting work.
            assert managed.failed is None
            result = await managed.apply_updates([EdgeUpdate.insert(2, 3)])
            assert result["updates_processed"] == 2
            await registry.close()

        drive(scenario)

    def test_empty_batch_rejected(self):
        async def scenario():
            registry = EngineRegistry()
            managed = await registry.create("alpha", {"counter": "wedge"})
            with pytest.raises(ConfigurationError, match="empty"):
                await managed.apply_updates([])
            await registry.close()

        drive(scenario)

    def test_consistency_and_compact_commands(self, tmp_path):
        async def scenario():
            registry = EngineRegistry()
            managed = await registry.create(
                "durable",
                {"counter": "wedge", "wal_path": str(tmp_path / "run.wal")},
            )
            await managed.apply_updates(
                [EdgeUpdate.insert(a, b) for a, b in ((1, 2), (2, 3), (3, 4), (4, 1))]
            )
            verdict = await managed.check_consistency()
            assert verdict["consistent"] is True and verdict["count"] == 1
            compacted = await managed.compact()
            assert compacted["remaining_records"] == 0
            assert compacted["last_durable_seq"] == 3
            await registry.close()

        drive(scenario)

    def test_concurrent_readers_never_observe_torn_state(self):
        """The snapshot-isolation contract: while one writer applies batches,
        every concurrently sampled read view is exact at some batch boundary —
        its (updates_processed, count) pair matches the reference replay at
        that boundary — and is never a torn mid-batch state."""

        async def scenario():
            registry = EngineRegistry()
            managed = await registry.create(
                "alpha", {"counter": "wedge", "track_costs": False}
            )
            updates = list(random_dynamic_stream(num_vertices=12, num_updates=240, seed=21))
            batch_size = 16
            batches = [
                updates[i : i + batch_size] for i in range(0, len(updates), batch_size)
            ]
            reference = FourCycleEngine(EngineConfig(counter="wedge"))
            expected = {0: 0}
            for batch in batches:
                reference.apply_batch(batch)
                expected[reference.updates_processed] = reference.count

            samples = []
            writer_done = asyncio.Event()

            async def reader():
                while not writer_done.is_set():
                    view = managed.view
                    samples.append((view.updates_processed, view.count))
                    await asyncio.sleep(0)

            async def writer():
                for batch in batches:
                    await managed.apply_updates(batch)
                writer_done.set()

            await asyncio.gather(writer(), *(reader() for _ in range(4)))
            assert samples, "readers never ran against the active writer"
            for processed, count in samples:
                assert processed in expected, (
                    f"torn read: {processed} updates is not a batch boundary"
                )
                assert count == expected[processed], (
                    f"read at boundary {processed} saw count {count}, "
                    f"reference says {expected[processed]}"
                )
            # The readers genuinely interleaved with the writer: they saw
            # more than just the initial and final states.
            assert len({processed for processed, _ in samples}) > 2
            assert managed.view.updates_processed == len(updates)
            await registry.close()

        drive(scenario)


class TestFailStop:
    def test_crash_fails_tenant_and_releases_wal(self, tmp_path):
        async def scenario():
            registry = EngineRegistry()
            injector = FaultInjector([Fault(SITE_WAL_APPEND, ACTION_CRASH, at=2)])
            managed = await registry.create(
                "fragile",
                {"counter": "wedge", "wal_path": str(tmp_path / "fragile.wal")},
                fault_injector=injector,
            )
            healthy = await registry.create("healthy", {"counter": "wedge"})
            await managed.apply_updates([EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 3)])
            with pytest.raises(InjectedCrashError):
                await managed.apply_updates([EdgeUpdate.insert(3, 4)])
            assert managed.failed is not None
            # The WAL fd was released at fail-stop, so recovery (here or in a
            # fresh process) can reopen the log.
            assert managed.engine.wal is None or managed.engine.wal.closed
            with pytest.raises(EngineFailedError, match="fail-stopped"):
                await managed.apply_updates([EdgeUpdate.insert(4, 5)])
            # The failure is the tenant's alone: other tenants keep serving.
            result = await healthy.apply_updates([EdgeUpdate.insert(1, 2)])
            assert result["updates_processed"] == 1
            assert registry.get("fragile").summary()["failed"] is not None
            await registry.close()

        drive(scenario)

    def test_buggy_operation_fails_tenant(self):
        async def scenario():
            registry = EngineRegistry()
            managed = await registry.create("alpha", {"counter": "wedge"})
            with pytest.raises(RuntimeError, match="operation bug"):
                await managed._submit(lambda engine: (_ for _ in ()).throw(
                    RuntimeError("operation bug")
                ))
            assert managed.failed is not None
            await registry.close()

        drive(scenario)


class TestEventBridge:
    def test_subscriber_queue_receives_batch_events(self):
        async def scenario():
            registry = EngineRegistry()
            managed = await registry.create("alpha", {"counter": "wedge"})
            queue = managed.subscribe_queue()
            await managed.apply_updates([EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 3)])
            event = await asyncio.wait_for(queue.get(), timeout=5)
            assert event["engine"] == "alpha"
            assert event["kind"] == "batch-applied"
            assert event["updates_processed"] == 2
            managed.unsubscribe_queue(queue)
            await registry.close()

        drive(scenario)

    def test_close_sends_stream_sentinel(self):
        async def scenario():
            registry = EngineRegistry()
            managed = await registry.create("alpha", {"counter": "wedge"})
            queue = managed.subscribe_queue()
            await registry.delete("alpha")
            closed_event = await asyncio.wait_for(queue.get(), timeout=5)
            assert closed_event["kind"] == "engine-closed"
            assert await asyncio.wait_for(queue.get(), timeout=5) is None

        drive(scenario)

    def test_slow_subscriber_drops_oldest(self):
        async def scenario():
            registry = EngineRegistry()
            managed = await registry.create("alpha", {"counter": "wedge"})
            queue = managed.subscribe_queue(maxsize=2)
            for index in range(4):
                await managed.apply_updates([EdgeUpdate.insert(index, index + 100)])
            # Each committed command emits its apply event plus the checkpoint
            # that republished the read view; a never-drained subscriber keeps
            # only the newest two events (here: the final command's pair).
            assert queue.qsize() == 2
            newest = [queue.get_nowait(), queue.get_nowait()]
            assert [event["kind"] for event in newest] == ["update-applied", "checkpoint"]
            assert all(event["updates_processed"] == 4 for event in newest)
            await registry.close()

        drive(scenario)
