"""Tests for the Section 3 warm-up oracle (A and C fixed, chunked B)."""

from __future__ import annotations

import random

import pytest

from repro.core.warmup import WarmupThreePathOracle
from repro.exceptions import ConfigurationError, InvalidUpdateError


def fixed_relations(seed: int, n: int = 9, density: float = 0.35):
    rng = random.Random(seed)
    a = [(i, j) for i in range(n) for j in range(n) if rng.random() < density]
    c = [(j, k) for j in range(n) for k in range(n) if rng.random() < density]
    return a, c


def drive_b_updates(oracle: WarmupThreePathOracle, seed: int, steps: int, domain: int = 9) -> None:
    rng = random.Random(seed)
    live = set()
    for step in range(steps):
        if live and rng.random() < 0.35:
            x, y = rng.choice(sorted(live))
            live.discard((x, y))
            oracle.delete(2, x, y)
        else:
            x, y = rng.randrange(domain), rng.randrange(domain)
            if (x, y) in live:
                continue
            live.add((x, y))
            oracle.insert(2, x, y)
        u, v = rng.randrange(domain), rng.randrange(domain)
        assert oracle.count_three_paths(u, v) == oracle.count_three_paths_naive(u, v), (
            f"divergence at step {step}"
        )


class TestConstruction:
    def test_fixed_relations_loaded(self):
        a, c = fixed_relations(0)
        oracle = WarmupThreePathOracle(a, c, chunk_size=5)
        assert oracle.relation(1).size == len(a)
        assert oracle.relation(3).size == len(c)
        assert oracle.chunk_size == 5

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            WarmupThreePathOracle([], [], chunk_size=0)

    def test_default_chunk_size_from_m(self):
        a, c = fixed_relations(1)
        oracle = WarmupThreePathOracle(a, c)
        assert oracle.chunk_size >= 4

    def test_high_classes_fixed(self):
        a = [("hub", f"x{i}") for i in range(40)] + [("small", "x0")]
        c = [(f"x{i}", "sink") for i in range(40)]
        oracle = WarmupThreePathOracle(a, c, chunk_size=5, high_threshold=10)
        assert oracle.is_high_left("hub")
        assert not oracle.is_high_left("small")
        assert oracle.is_high_right("sink")


class TestAssumptionThree:
    def test_updates_outside_b_rejected(self):
        oracle = WarmupThreePathOracle([], [], chunk_size=4)
        with pytest.raises(InvalidUpdateError):
            oracle.insert(1, "u", "x")
        with pytest.raises(InvalidUpdateError):
            oracle.insert(3, "y", "v")


class TestExactness:
    @pytest.mark.parametrize("chunk_size", [1, 3, 8, 1000])
    def test_exact_for_any_chunk_size(self, chunk_size):
        a, c = fixed_relations(2)
        oracle = WarmupThreePathOracle(a, c, chunk_size=chunk_size)
        drive_b_updates(oracle, seed=chunk_size, steps=220)

    def test_exact_with_high_degree_endpoints(self):
        """Force the P_HH (high/high) query path."""
        a = [("hub", f"x{i}") for i in range(12)]
        c = [(f"y{i}", "sink") for i in range(12)]
        oracle = WarmupThreePathOracle(a, c, chunk_size=4, high_threshold=5)
        rng = random.Random(9)
        live = set()
        for step in range(150):
            x = f"x{rng.randrange(12)}"
            y = f"y{rng.randrange(12)}"
            if (x, y) in live:
                live.discard((x, y))
                oracle.delete(2, x, y)
            else:
                live.add((x, y))
                oracle.insert(2, x, y)
            assert oracle.count_three_paths("hub", "sink") == oracle.count_three_paths_naive(
                "hub", "sink"
            )
        assert oracle.chunks_sealed > 0

    def test_negative_edge_across_chunks(self):
        """Insert in one chunk, delete in a later one: contributions cancel
        (the Section 3.3 remark)."""
        a = [("u", "x")]
        c = [("y", "v")]
        oracle = WarmupThreePathOracle(a, c, chunk_size=2)
        oracle.insert(2, "x", "y")
        # Pad out the chunk so the insertion is folded into the aggregates.
        oracle.insert(2, "p1", "q1")
        oracle.insert(2, "p2", "q2")
        oracle.insert(2, "p3", "q3")
        oracle.insert(2, "p4", "q4")
        assert oracle.count_three_paths("u", "v") == 1
        oracle.delete(2, "x", "y")
        assert oracle.count_three_paths("u", "v") == 0
        for index in range(6):
            oracle.insert(2, f"r{index}", f"s{index}")
        assert oracle.count_three_paths("u", "v") == 0

    def test_chunks_sealed_counter(self):
        a, c = fixed_relations(3)
        oracle = WarmupThreePathOracle(a, c, chunk_size=3)
        for index in range(10):
            oracle.insert(2, f"x{index}", f"y{index}")
        assert oracle.chunks_sealed == 3
